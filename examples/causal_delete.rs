//! Causal deletes: why deleting in a multi-version store needs the same
//! causal contexts as writing — and how DVV tombstones solve Dynamo's
//! famous "deleted item reappears in the cart" problem.
//!
//! Run with `cargo run --example causal_delete`.

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::{StampedValue, WriteId};
use simnet::Duration;

fn main() {
    // ------------------------------------------------------------------
    // Act 1: the mechanism-level story.
    // ------------------------------------------------------------------
    let mech = DvvMechanism;
    let mut cart = Default::default();
    let server = ReplicaId(0);

    // Alice puts a book in the cart.
    mech.write(
        &mut cart,
        WriteOrigin::new(server, ClientId(1)),
        &VersionVector::new(),
        StampedValue::new(WriteId::new(ClientId(1), 1), b"book".to_vec()),
    );
    let (_, ctx_after_book) = mech.read(&cart);

    // Alice deletes the cart (tombstone with HER context)…
    mech.write(
        &mut cart,
        WriteOrigin::new(server, ClientId(1)),
        &ctx_after_book,
        StampedValue::tombstone(WriteId::new(ClientId(1), 2)),
    );
    // …while Bob, who also saw only the book, concurrently adds a pen:
    mech.write(
        &mut cart,
        WriteOrigin::new(server, ClientId(2)),
        &ctx_after_book,
        StampedValue::new(WriteId::new(ClientId(2), 1), b"pen".to_vec()),
    );

    let (values, _) = mech.read(&cart);
    println!("cart siblings after concurrent delete + add:");
    for v in &values {
        println!("  {v}");
    }
    let live: Vec<_> = values.iter().filter(|v| v.is_live()).collect();
    assert_eq!(live.len(), 1, "Bob's pen must survive Alice's delete");
    assert_eq!(live[0].payload, b"pen");
    println!("-> the delete removed only what Alice saw; Bob's concurrent");
    println!("   addition survives as a sibling. No resurrection, no loss.\n");

    // ------------------------------------------------------------------
    // Act 2: the same guarantee end-to-end, at store scale, with GC.
    // ------------------------------------------------------------------
    let config = ClusterConfig {
        servers: 3,
        clients: 6,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 4,
            delete_fraction: 0.5,
            think_time: Duration::from_micros(300),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(31, DvvMechanism, config);
    cluster.run();
    cluster.converge();

    let report = cluster.anomaly_report();
    println!("store audit with 50% deletes: {report:?}");
    assert!(report.is_clean());

    let keys = cluster.oracle().keys();
    let before: usize = cluster.server(0).data().len();
    let reclaimed = cluster.collect_garbage();
    println!(
        "garbage collection: {} of {} keys were fully deleted and reclaimed",
        reclaimed[0], before
    );
    for key in &keys {
        let live = cluster.live_values_at(0, key);
        let total = cluster.surviving_at(0, key).len();
        println!(
            "  {:?}: {} live value(s), {} tombstone(s)",
            String::from_utf8_lossy(key),
            live.len(),
            total - live.len()
        );
    }
    println!("\ndeletes are writes: same contexts, same causality, zero anomalies.");
}
