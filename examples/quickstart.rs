//! Quickstart: the dotted-version-vector API in five minutes.
//!
//! Run with `cargo run --example quickstart`.

use dvv::server::{context, sync, update, Tagged};
use dvv::{CausalOrder, Dot, Dvv, VersionVector};

fn main() {
    // ---------------------------------------------------------------
    // 1. A DVV is a version identifier (dot) plus a causal past (VV).
    // ---------------------------------------------------------------
    let v1 = Dvv::new(Dot::new("A", 1), VersionVector::new());
    println!("first write at server A:        {v1}");

    let mut past = VersionVector::new();
    past.set("A", 1);
    let v2 = Dvv::new(Dot::new("A", 2), past.clone());
    println!("overwrite that saw v1:          {v2}");

    // O(1) causality check: is v1's dot inside v2's past?
    assert_eq!(v1.causal_cmp(&v2), CausalOrder::Before);
    println!("v1 {} v2  (one map lookup)", v1.causal_cmp(&v2));

    // A write that also saw only v1 is concurrent with v2 — and the
    // history {{A1, A3}} is not expressible as a plain version vector:
    let v3 = Dvv::new(Dot::new("A", 3), past);
    assert_eq!(v2.causal_cmp(&v3), CausalOrder::Concurrent);
    println!("v2 {} v3  (the paper's Figure 1c)", v2.causal_cmp(&v3));

    // ---------------------------------------------------------------
    // 2. The storage protocol: sibling sets, contexts, update, sync.
    // ---------------------------------------------------------------
    let mut server_a: Vec<Tagged<&str, &str>> = Vec::new();
    let mut server_b: Vec<Tagged<&str, &str>> = Vec::new();

    // A client writes having read nothing:
    update(&mut server_a, &VersionVector::new(), "A", "cart:{beer}");
    // Another client reads (getting the context)…
    let ctx = context(&server_a);
    println!("\nread context after 1 write:     {ctx}");
    // …two clients write *concurrently* with that same context:
    update(&mut server_a, &ctx, "A", "cart:{beer,chips}");
    update(&mut server_a, &ctx, "A", "cart:{beer,wine}");
    println!("server A now has {} siblings:", server_a.len());
    for s in &server_a {
        println!("  {s}");
    }

    // Replication merges sibling sets; nothing true is lost:
    server_b = sync(&server_b, &server_a);
    assert_eq!(server_b.len(), 2);

    // A reader that saw both siblings resolves the conflict:
    let ctx_all = context(&server_b);
    update(&mut server_b, &ctx_all, "B", "cart:{beer,chips,wine}");
    println!("\nafter a resolving write at B:");
    for s in &server_b {
        println!("  {s}");
    }
    assert_eq!(server_b.len(), 1);

    // And replicating back to A collapses its siblings too:
    let merged = sync(&server_a, &server_b);
    assert_eq!(merged.len(), 1);
    println!("\nconverged value everywhere:     {}", merged[0]);
}
