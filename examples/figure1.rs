//! Replays the paper's Figure 1 — the two-server, three-client execution
//! — under all three representations: (a) causal histories, (b) version
//! vectors with one entry per server, (c) dotted version vectors.
//!
//! The printed traces are asserted verbatim in `tests/figure1.rs`; run
//! with `cargo run --example figure1`.

use dvv::mechanisms::{
    CausalHistoryMechanism, DvvMechanism, Mechanism, VvServerMechanism, WriteOrigin,
};
use dvv::{ClientId, ReplicaId};

/// The fixed script of Figure 1. Server A is `s0`, server B is `s1`;
/// Peter/Mary-style clients are `c1`, `c2`, `c3`.
///
/// 1. `c1` writes v1 at A (blind write).
/// 2. `c1` reads v1 at A, writes v2 at A.
/// 3. `c2`, who had read v1 earlier, writes v3 at A → v2 ∥ v3.
/// 4. A replicates to B.
/// 5. `c3` reads everything at B, writes v4 at A (seen in 1c's last row).
fn replay<M: Mechanism<&'static str>>(mech: M) -> Vec<String>
where
    M::Context: Clone,
{
    let mut log = Vec::new();
    let a = ReplicaId(0);
    let mut server_a = M::State::default();
    let mut server_b = M::State::default();

    let origin = |c: u64| WriteOrigin::new(a, ClientId(c));

    // 1. c1 blind-writes v1 at A
    let empty_ctx = M::Context::default();
    mech.write(&mut server_a, origin(1), &empty_ctx, "v1");
    log.push(format!("A after v1: {}", render(&mech, &server_a)));

    // c1 and c2 both read {v1} now
    let (_, ctx_v1) = mech.read(&server_a);

    // 2. c1 writes v2 having read v1
    mech.write(&mut server_a, origin(1), &ctx_v1, "v2");
    log.push(format!("A after v2: {}", render(&mech, &server_a)));

    // 3. c2 writes v3 with the same (now stale) context
    mech.write(&mut server_a, origin(2), &ctx_v1, "v3");
    log.push(format!("A after v3: {}", render(&mech, &server_a)));

    // 4. replicate A → B
    mech.merge(&mut server_b, &server_a);
    log.push(format!("B after sync: {}", render(&mech, &server_b)));

    // 5. c3 reads everything at B, then writes v4 at A
    let (_, ctx_all) = mech.read(&server_b);
    mech.write(&mut server_a, origin(3), &ctx_all, "v4");
    mech.merge(&mut server_b, &server_a);
    log.push(format!("A after v4: {}", render(&mech, &server_a)));
    log
}

fn render<M: Mechanism<&'static str>>(mech: &M, state: &M::State) -> String {
    let (values, _) = mech.read(state);
    format!("{} sibling(s) {:?}", mech.sibling_count(state), values)
}

fn main() {
    println!("== Figure 1a: causal histories (ground truth) ==");
    for line in replay(CausalHistoryMechanism) {
        println!("  {line}");
    }
    println!("\n== Figure 1b: version vectors, one entry per server ==");
    for line in replay(VvServerMechanism) {
        println!("  {line}");
    }
    println!("  ^ note: v2 was silently destroyed by v3 ([A:2] < [A:3])");
    println!("\n== Figure 1c: dotted version vectors ==");
    for line in replay(DvvMechanism) {
        println!("  {line}");
    }
    println!("  ^ v2 ∥ v3 correctly kept as siblings; v4 resolves them");

    // The quantitative checks mirrored in tests/figure1.rs:
    let ch = replay(CausalHistoryMechanism);
    let vv = replay(VvServerMechanism);
    let dvv = replay(DvvMechanism);
    assert!(
        ch[2].starts_with("A after v3: 2"),
        "ground truth keeps both"
    );
    assert!(vv[2].starts_with("A after v3: 1"), "per-server VV loses v2");
    assert!(dvv[2].starts_with("A after v3: 2"), "DVV keeps both");
    assert!(
        dvv[4].starts_with("A after v4: 1"),
        "v4 resolves the conflict"
    );
    println!("\nAll Figure 1 shape assertions hold.");
}
