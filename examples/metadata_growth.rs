//! Claim 3 in action: per-version clock size as the client population
//! grows — DVV stays bounded by the replica count, per-client VVs grow,
//! pruning stays small but corrupts causality.
//!
//! Run with `cargo run --release --example metadata_growth`.

use dvv::mechanisms::{DvvMechanism, DvvSetMechanism, Mechanism, VvClientMechanism};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::StampedValue;
use simnet::Duration;

fn run_one<M: Mechanism<StampedValue>>(mech: M, clients: usize) -> (f64, u64, u64) {
    let config = ClusterConfig {
        servers: 3,
        clients,
        cycles_per_client: 6,
        client: ClientConfig {
            key_count: 1,
            think_time: Duration::from_micros(200),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(7, mech, config);
    cluster.run();
    cluster.converge();
    let meta = cluster.metadata_report();
    let report = cluster.anomaly_report();
    let per_version = meta.mean_bytes_per_key / meta.mean_siblings.max(1.0);
    (per_version, report.lost_updates, report.false_concurrency)
}

fn main() {
    println!("per-version causal metadata (bytes) vs number of clients");
    println!("3 replica servers, 1 hot key, read-modify-write sessions\n");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>16}",
        "clients", "dvv", "dvvset", "vv-client", "vv-pruned(4)"
    );
    for clients in [2usize, 4, 8, 16, 32, 64] {
        let (dvv, l1, f1) = run_one(DvvMechanism, clients);
        let (dvvset, l2, f2) = run_one(DvvSetMechanism, clients);
        let (vvc, l3, f3) = run_one(VvClientMechanism::unbounded(), clients);
        let (vvp, l4, f4) = run_one(VvClientMechanism::pruned(4), clients);
        assert_eq!(
            (l1, f1, l2, f2, l3, f3),
            (0, 0, 0, 0, 0, 0),
            "correct mechanisms stay clean"
        );
        let anomaly_tag = if l4 + f4 > 0 {
            format!("{vvp:.1} (UNSAFE: {} anomalies)", l4 + f4)
        } else {
            format!("{vvp:.1}")
        };
        println!("{clients:>8} {dvv:>10.1} {dvvset:>10.1} {vvc:>12.1} {anomaly_tag:>16}");
    }
    println!("\nDVV/DVVSet columns stay flat (bounded by 3 replicas);");
    println!("the per-client column grows linearly; the pruned column is");
    println!("bounded *only by sacrificing correctness*.");
}
