//! Every causality-tracking design from the paper (contribution,
//! baselines, related work) run side by side on the same adversarial
//! scenario, printing what each keeps, loses, and pays.
//!
//! Run with `cargo run --example related_work`.

use dvv::mechanisms::{
    CausalHistoryMechanism, DvvMechanism, DvvSetMechanism, LamportMechanism, Mechanism,
    OrderedVvMechanism, VvClientMechanism, VvServerMechanism, VveMechanism, WriteOrigin,
};
use dvv::{ClientId, ReplicaId};
use kvstore::{StampedValue, WriteId};

/// The adversarial scenario: a burst of pairwise-concurrent writes from
/// `k` clients through one server, each having read the same snapshot —
/// the situation that separates the designs.
fn burst<M: Mechanism<StampedValue>>(mech: &M, k: u64) -> (usize, usize, usize) {
    let server = ReplicaId(0);
    let mut st = M::State::default();
    // a seed write everyone reads
    mech.write(
        &mut st,
        WriteOrigin::new(server, ClientId(0)),
        &M::Context::default(),
        StampedValue::new(WriteId::new(ClientId(0), 1), vec![0]),
    );
    let (_, snapshot) = mech.read(&st);
    for c in 1..=k {
        mech.write(
            &mut st,
            WriteOrigin::new(server, ClientId(c)),
            &snapshot,
            StampedValue::new(WriteId::new(ClientId(c), 1), vec![c as u8]),
        );
    }
    let kept = mech.sibling_count(&st);
    let metadata = mech.metadata_size(&st);
    let (_, ctx) = mech.read(&st);
    (kept, metadata, mech.context_size(&ctx))
}

fn main() {
    const K: u64 = 8;
    println!(
        "{} concurrent client writes through one server, all having",
        K
    );
    println!("read the same snapshot. A correct tracker keeps all {K}.\n");
    println!(
        "{:>22} {:>10} {:>14} {:>12}",
        "mechanism", "kept", "metadata B", "context B"
    );

    fn row<M: Mechanism<StampedValue>>(mech: M) {
        let (kept, meta, ctx) = burst(&mech, 8);
        let verdict = if kept == 8 { "" } else { "  ← LOSES DATA" };
        println!(
            "{:>22} {:>10} {:>14} {:>12}{verdict}",
            mech.name(),
            kept,
            meta,
            ctx
        );
    }

    row(CausalHistoryMechanism); // exact, huge
    row(DvvMechanism); // the paper
    row(DvvSetMechanism); // the compact extension
    row(VveMechanism); // WinFS
    row(VvClientMechanism::unbounded()); // classic Riak
    row(VvClientMechanism::pruned(3)); // unsafe practice
    row(VvServerMechanism); // Coda/Ficus — Figure 1b
    row(OrderedVvMechanism); // Wang & Amza
    row(LamportMechanism); // LWW strawman

    println!();
    println!("reading guide:");
    println!("  · causal histories are exact but metadata grows with every event");
    println!("  · dvv keeps everything at one vector entry per *server*");
    println!("  · dvvset shares one clock across the whole sibling set");
    println!("  · vve is exact like dvv, paying extra only for gapped histories");
    println!("  · vv-client is exact but entries grow with every *client*");
    println!("  · pruning keeps vv-client small by sacrificing correctness");
    println!("  · vv-server/ordered-vv destroy concurrent siblings (Figure 1b)");
    println!("  · lamport keeps exactly one winner, silently");
}
