//! Elastic membership in action: while a workload runs, a spare node
//! joins the ring (streaming its newly-owned key ranges from current
//! owners) and then an original member leaves (draining its ranges to
//! successors). Each change is announced to its *subject only* — every
//! other process converges onto the new ring view through gossip
//! (periodic digests, AAE piggybacks, eager pushes, request epochs),
//! with the harness force-sync disabled. The oracle confirms that not a
//! single acknowledged write is lost across either membership change,
//! and a final audit shows no server holds keys outside its preference
//! list.
//!
//! Run with `cargo run --example elastic_cluster`.

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use ring::HashRing;
use simnet::Duration;

fn main() {
    let config = ClusterConfig {
        servers: 3,
        spare_servers: 1,
        clients: 4,
        cycles_per_client: 30,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(80),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 8,
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(1_000),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(2026, DvvMechanism, config);

    println!("phase 1: 3-node cluster serving traffic (spare s3 dormant)");
    cluster.run_for(Duration::from_millis(40));
    println!(
        "  t={} members={:?} epoch={}",
        cluster.sim().now(),
        cluster.member_slots(),
        cluster.ring_epoch()
    );

    println!("\nphase 2: s3 joins live — the announce goes to s3 alone; gossip");
    println!("  spreads the view and owners stream s3's ranges over the wire");
    let joined = cluster.add_node_live(3);
    let joiner = cluster.server(3);
    println!(
        "  settled={} epoch={} transfers_in={} keys_at_joiner={}",
        joined,
        cluster.ring_epoch(),
        joiner.stats().transfers_in,
        joiner.data().len()
    );
    assert!(joined, "join transfers must settle");
    for i in cluster.member_slots() {
        let s = cluster.server(i);
        println!(
            "  s{i}: epoch={} gossip_rounds={} (converged with no force-sync)",
            s.ring_epoch(),
            s.stats().gossip_rounds
        );
        assert_eq!(s.ring_epoch(), cluster.ring_epoch());
    }
    let new_ring = HashRing::with_vnodes((0..4u32).map(ReplicaId), 32);
    let owned_here = joiner
        .data()
        .keys()
        .filter(|k| new_ring.preference_list(k, 2).contains(&ReplicaId(3)))
        .count();
    println!("  of which in s3's own ranges: {owned_here}");

    println!("\nphase 3: s0 leaves live — it drains every range before retiring");
    let held = cluster.server(0).data().len();
    let left = cluster.remove_node_live(0);
    println!(
        "  settled={} members={:?} keys_drained={} leaver_empty={}",
        left,
        cluster.member_slots(),
        held,
        cluster.server(0).data().is_empty()
    );
    assert!(left, "leave drain must settle");

    println!("\nphase 4: sessions finish on the reshaped cluster");
    assert!(cluster.run(), "all sessions finish");

    println!("\nphase 5: residual-copy audit — after a quiescent period (and");
    println!("  before the harness converge), no server may hold a key");
    println!("  outside its preference list");
    cluster.run_for(Duration::from_secs(3));
    let residuals = cluster.residual_copies();
    println!("  residual copies: {}", residuals.len());
    assert!(
        residuals.is_empty(),
        "unretired residual copies: {residuals:?}"
    );

    cluster.converge();
    let report = cluster.anomaly_report();
    println!(
        "  writes={} acked={} lost_updates={} false_concurrency={}",
        report.total_writes, report.acked_writes, report.lost_updates, report.false_concurrency
    );
    assert!(report.is_clean(), "elastic membership must lose nothing");
    println!("\nno acknowledged write was lost across join + leave ✓");
}
