//! Elastic membership in action: while a workload runs, a spare node
//! joins the ring (streaming its newly-owned key ranges from current
//! owners) and an original member leaves (draining its ranges to
//! successors) — **concurrently**. Each change is announced to its
//! *subject only*, as a fresh `(incarnation, status)` entry in a
//! mergeable ring view; every other process converges onto the *merge*
//! of both announcements through gossip (periodic digests, AAE
//! piggybacks, eager pushes, request digests), with the harness
//! force-sync disabled. The oracle confirms that not a single
//! acknowledged write is lost across the overlapping changes, and a
//! final audit shows no server holds keys outside its preference list.
//!
//! Run with `cargo run --example elastic_cluster`.

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use ring::HashRing;
use simnet::Duration;

fn main() {
    let config = ClusterConfig {
        servers: 3,
        spare_servers: 1,
        clients: 4,
        cycles_per_client: 30,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(80),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 8,
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(1_000),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(2026, DvvMechanism, config);

    println!("phase 1: 3-node cluster serving traffic (spare s3 dormant)");
    cluster.run_for(Duration::from_millis(40));
    println!(
        "  t={} members={:?} view_version={}",
        cluster.sim().now(),
        cluster.member_slots(),
        cluster.ring_epoch()
    );

    println!("\nphase 2: s3 joins and s0 leaves — both announced before either");
    println!("  settles. The announcements are per-member versioned entries in a");
    println!("  mergeable view, so the two concurrent changes merge instead of");
    println!("  racing; gossip spreads the merged view and owners stream ranges");
    let held_by_leaver = cluster.server(0).data().len();
    cluster.begin_join(3);
    cluster.begin_leave(0);
    let settled = cluster.await_membership();
    println!(
        "  settled={} members={:?} view_version={}",
        settled,
        cluster.member_slots(),
        cluster.ring_epoch()
    );
    assert!(settled, "overlapping join + leave must settle");
    let joiner = cluster.server(3);
    println!(
        "  joiner s3: transfers_in={} keys={} status={:?}",
        joiner.stats().transfers_in,
        joiner.data().len(),
        cluster.view().status(&ReplicaId(3))
    );
    println!(
        "  leaver s0: keys_drained={} store_empty={} status={:?}",
        held_by_leaver,
        cluster.server(0).data().is_empty(),
        cluster.view().status(&ReplicaId(0))
    );
    assert!(
        cluster.server(0).data().is_empty(),
        "the leaver fully drained"
    );
    for i in cluster.member_slots() {
        let s = cluster.server(i);
        println!(
            "  s{i}: view_digest={:016x} gossip_rounds={} (no force-sync)",
            s.view_digest(),
            s.stats().gossip_rounds
        );
        assert_eq!(s.view_digest(), cluster.view_digest());
    }
    let new_ring = HashRing::with_vnodes([1u32, 2, 3].map(ReplicaId), 32);
    let owned_here = cluster
        .server(3)
        .data()
        .keys()
        .filter(|k| new_ring.preference_list(k, 2).contains(&ReplicaId(3)))
        .count();
    println!("  of the joiner's keys, in its own ranges: {owned_here}");

    println!("\nphase 3: sessions finish on the reshaped cluster");
    assert!(cluster.run(), "all sessions finish");

    println!("\nphase 4: residual-copy audit — after a quiescent period (and");
    println!("  before the harness converge), no server may hold a key");
    println!("  outside its preference list");
    cluster.run_for(Duration::from_secs(3));
    let residuals = cluster.residual_copies();
    println!("  residual copies: {}", residuals.len());
    assert!(
        residuals.is_empty(),
        "unretired residual copies: {residuals:?}"
    );

    cluster.converge();
    let report = cluster.anomaly_report();
    println!(
        "  writes={} acked={} lost_updates={} false_concurrency={}",
        report.total_writes, report.acked_writes, report.lost_updates, report.false_concurrency
    );
    assert!(report.is_clean(), "elastic membership must lose nothing");
    println!("\nno acknowledged write was lost across the overlapping join + leave ✓");
}
