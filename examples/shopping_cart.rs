//! The Dynamo shopping cart on the full simulated store: concurrent
//! shoppers on one cart key, DVV causality, sibling resolution.
//!
//! Run with `cargo run --example shopping_cart`.

use dvv::mechanisms::DvvMechanism;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use simnet::Duration;

fn main() {
    // One hot cart key, four shoppers hammering it concurrently.
    let config = ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 1,
            value_size: 48,
            think_time: Duration::from_micros(300),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(2024, DvvMechanism, config);

    println!("running 4 shoppers × 10 read-modify-write cycles on one cart…");
    assert!(cluster.run());
    println!("finished at virtual {}", cluster.sim().now());

    let lat = cluster.latency_report();
    println!("\nGET latency: {}", lat.get);
    println!("PUT latency: {}", lat.put);

    // Before convergence: replicas may disagree; after: identical.
    cluster.converge();
    let report = cluster.anomaly_report();
    println!("\naudit after convergence: {report:?}");
    assert!(
        report.is_clean(),
        "DVV must not lose or falsely-conflict writes"
    );

    let meta = cluster.metadata_report();
    println!(
        "cart metadata: mean {:.1} B/key, max {} B, {:.1} siblings on average (max {})",
        meta.mean_bytes_per_key, meta.max_bytes_per_key, meta.mean_siblings, meta.max_siblings
    );

    // Show the final sibling set: the concurrent "cart versions" a reader
    // would merge in the application (Dynamo's add-wins union).
    let key = cluster.oracle().keys().remove(0);
    let survivors = cluster.surviving_at(0, &key);
    println!("\nfinal concurrent cart versions ({}):", survivors.len());
    for id in &survivors {
        println!("  written by {id}");
    }
    println!("\na reader now merges these versions and writes back with the");
    println!("combined context — exactly the Dynamo checkout flow.");
}
