//! A network partition splits the cluster; writes continue on both
//! sides; healing + anti-entropy converges every replica without losing
//! a single update.
//!
//! Run with `cargo run --example partition_healing`.

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use simnet::{Duration, NodeId};

fn main() {
    let config = ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 12,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(40),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 2,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(99, DvvMechanism, config);

    println!("phase 1: healthy cluster");
    cluster.run_for(Duration::from_millis(25));
    println!(
        "  t={} deliveries={}",
        cluster.sim().now(),
        cluster.sim().network().stats().delivered
    );

    println!("\nphase 2: server s2 partitioned away (failure detector notices)");
    let majority: Vec<NodeId> = [0u32, 1, 3, 4, 5, 6].into_iter().map(NodeId).collect();
    cluster
        .sim_mut()
        .network_mut()
        .partition_two(majority, [NodeId(2)]);
    cluster.set_replica_status(ReplicaId(2), false);
    cluster.run_for(Duration::from_millis(120));
    let lost_so_far = cluster.sim().network().stats().unreachable;
    println!("  messages refused by the partition so far: {lost_so_far}");

    println!("\nphase 3: heal; sessions finish; anti-entropy repairs s2");
    cluster.sim_mut().network_mut().heal();
    cluster.set_replica_status(ReplicaId(2), true);
    assert!(cluster.run(), "all sessions complete");
    cluster.run_for(Duration::from_millis(2_000)); // let AAE converge

    // verify convergence through the protocol (no harness merging!)
    let keys = cluster.oracle().keys();
    let mut converged = true;
    for key in &keys {
        let s0 = cluster.surviving_at(0, key);
        for i in 1..3 {
            if cluster.surviving_at(i, key) != s0 {
                converged = false;
            }
        }
    }
    println!(
        "  all {} keys identical on all 3 replicas: {converged}",
        keys.len()
    );
    assert!(converged);

    let aae: u64 = (0..3).map(|i| cluster.server(i).stats().aae_rounds).sum();
    println!("  anti-entropy exchanges initiated: {aae}");

    cluster.converge(); // no-op; makes the audit explicit
    let report = cluster.anomaly_report();
    println!("\naudit: {report:?}");
    assert!(report.is_clean(), "no update lost across the partition");
    println!("no lost updates, no false concurrency — through a partition.");
}
