#!/usr/bin/env bash
# Diffs fresh BENCH_*.json files (produced by the bench-baseline lane)
# against the committed baselines in bench-baselines/, printing a
# per-bench mean delta. Warn-only: hardware differs across machines and
# hosted runners, so a regression never fails the lane — the point is a
# visible, comparable perf trajectory from PR to PR.
#
#   scripts/bench_compare.sh                      # all BENCH_*.json in cwd/repo root
#   scripts/bench_compare.sh BENCH_aae.json ...   # specific files
#   BENCH_COMPARE_THRESHOLD=40 scripts/bench_compare.sh   # custom warn %
set -euo pipefail
cd "$(dirname "$0")/.."

threshold="${BENCH_COMPARE_THRESHOLD:-25}"
files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    shopt -s nullglob
    files=(BENCH_*.json)
    shopt -u nullglob
fi
if [ ${#files[@]} -eq 0 ]; then
    echo "[bench-compare] no BENCH_*.json files found — run the bench lane first" >&2
    exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
    echo "[bench-compare] python3 unavailable, skipping comparison" >&2
    exit 0
fi

python3 - "$threshold" "${files[@]}" <<'PYEOF'
import json
import os
import sys

threshold = float(sys.argv[1])
warned = 0
for fresh_path in sys.argv[2:]:
    base_path = os.path.join("bench-baselines", os.path.basename(fresh_path))
    if not os.path.exists(fresh_path):
        print(f"[bench-compare] {fresh_path}: missing, skipped")
        continue
    if not os.path.exists(base_path):
        print(f"[bench-compare] {fresh_path}: no committed baseline "
              f"({base_path}), skipped")
        continue
    with open(fresh_path) as f:
        fresh = {r["id"]: r["mean_ns"] for r in json.load(f)}
    with open(base_path) as f:
        base = {r["id"]: r["mean_ns"] for r in json.load(f)}
    print(f"[bench-compare] {fresh_path} vs {base_path}")
    for bid in sorted(fresh):
        mean = fresh[bid]
        if bid not in base:
            print(f"  NEW  {bid}: {mean:,.0f} ns")
            continue
        ref = base[bid]
        delta = (mean - ref) / ref * 100.0 if ref else 0.0
        flag = "WARN" if delta > threshold else "ok  "
        if delta > threshold:
            warned += 1
        print(f"  {flag} {bid}: {ref:,.0f} -> {mean:,.0f} ns ({delta:+.1f}%)")
    for bid in sorted(set(base) - set(fresh)):
        print(f"  GONE {bid} (in baseline, not in fresh run)")
if warned:
    print(f"[bench-compare] {warned} bench(es) regressed past "
          f"{threshold:.0f}% (warn-only)")
PYEOF
echo "[bench-compare] done (warn-only; threshold ${threshold}%)"
