#!/usr/bin/env bash
# Runs every example in examples/ end-to-end. Used by CI (and handy
# locally) so doc-level entry points cannot rot: `cargo test` only
# compiles examples, it never executes them.
set -euo pipefail
cd "$(dirname "$0")/.."

# The elastic-membership example is load-bearing for CI's example-smoke
# job: fail loudly if it ever disappears instead of silently shrinking
# coverage (the glob below would not notice).
if [ ! -f examples/elastic_cluster.rs ]; then
    echo "examples/elastic_cluster.rs is missing" >&2
    exit 1
fi

status=0
for f in examples/*.rs; do
    name="$(basename "$f" .rs)"
    echo "── example: $name"
    if ! cargo run -q --release --example "$name"; then
        echo "✗ example $name FAILED" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "one or more examples failed" >&2
fi
exit "$status"
