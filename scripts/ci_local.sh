#!/usr/bin/env bash
# Mirrors every CI lane offline so a red lane can be reproduced without
# waiting on (or having access to) the hosted runners.
#
#   scripts/ci_local.sh              # the PR gate: build-test, elastic,
#                                    #   examples, runtime, socket, storage,
#                                    #   bench lanes
#   scripts/ci_local.sh --soak       # additionally the nightly soak lane
#                                    #   (PROPTEST_CASES=1024 + extra
#                                    #   churn seeds)
#   scripts/ci_local.sh --lane elastic   # just one lane
#
# Lanes: build-test, elastic, examples, runtime, socket, storage, faults,
# bench, soak.
set -euo pipefail
cd "$(dirname "$0")/.."

want_soak=0
only_lane=""
while [ $# -gt 0 ]; do
    case "$1" in
        --soak) want_soak=1 ;;
        --lane)
            shift
            only_lane="${1:-}"
            [ -n "$only_lane" ] || { echo "--lane needs an argument" >&2; exit 2; }
            ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

runs_lane() {
    if [ -n "$only_lane" ]; then
        [ "$only_lane" = "$1" ]
    elif [ "$1" = soak ]; then
        [ "$want_soak" -eq 1 ]
    else
        return 0
    fi
}

banner() {
    echo
    echo "━━━ lane: $1 ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━"
}

# The PR gate runs the suites with a cheap case count, exactly like CI;
# export PROPTEST_CASES yourself to override.
export PROPTEST_CASES="${PROPTEST_CASES:-64}"

if runs_lane build-test; then
    banner "build-test"
    cargo build --release
    cargo test -q
    cargo bench --no-run
    cargo clippy --all-targets -- -D warnings
    cargo fmt --all --check
fi

if runs_lane elastic; then
    banner "elastic"
    cargo test -p kvstore --test elastic -- --nocapture
    cargo test -p kvstore --test gossip -- --nocapture
    cargo test -p kvstore --test overlap -- --nocapture
    cargo test -p ring --test view_merge -- --nocapture
fi

if runs_lane examples; then
    banner "examples"
    ./scripts/smoke_examples.sh
    cargo run -q --release --bin figures
fi

if runs_lane runtime; then
    banner "runtime"
    cargo test -p runtime --test timer_order -- --nocapture
    cargo test -p runtime --test watchdog -- --nocapture
    cargo test -p runtime --test conformance -- --nocapture
fi

if runs_lane socket; then
    banner "socket"
    cargo test -p transport --test frame_robustness -- --nocapture
    cargo test -p transport --test charge_parity -- --nocapture
    cargo test -p transport --test conformance -- --nocapture
    cargo test -p transport --test lifecycle -- --nocapture
fi

if runs_lane storage; then
    banner "storage"
    cargo test -p storage -- --nocapture
    cargo test -p kvstore --test recovery -- --nocapture
    cargo test -p runtime --test recovery -- --nocapture
fi

if runs_lane faults; then
    banner "faults"
    # Adversarial network faults composed with crashes: the
    # crash-mid-burst dot-uniqueness suites on both drivers (including
    # the committed guard-disabled regression), the reservation codec
    # properties, the hello-authentication lifecycle suite, and the
    # churn suites re-run with every link duplicating / reordering /
    # stale-replaying (NET_FAULTS=hostile).
    cargo test -p kvstore --test crash_burst -- --nocapture
    cargo test -p runtime --test crash_burst -- --nocapture
    cargo test -p storage --test meta_record -- --nocapture
    cargo test -p transport --test lifecycle -- --nocapture
    NET_FAULTS=hostile cargo test -p kvstore --test elastic -- --nocapture
    NET_FAULTS=hostile cargo test -p kvstore --test gossip -- --nocapture
    NET_FAULTS=hostile cargo test -p kvstore --test overlap -- --nocapture
fi

if runs_lane bench; then
    banner "bench-baseline"
    CRITERION_JSON_OUT="$PWD/BENCH_membership.json" \
        cargo bench --bench membership -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_store.json" \
        cargo bench --bench store -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_aae.json" \
        cargo bench --bench aae -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_wire.json" \
        cargo bench --bench wire -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_runtime.json" \
        cargo bench --bench runtime -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_socket.json" \
        cargo bench --bench socket -- --quick
    CRITERION_JSON_OUT="$PWD/BENCH_storage.json" \
        cargo bench --bench storage -- --quick
    echo "baselines written to BENCH_membership.json / BENCH_store.json /" \
         "BENCH_aae.json / BENCH_wire.json / BENCH_runtime.json /" \
         "BENCH_socket.json / BENCH_storage.json"
    ./scripts/bench_compare.sh
fi

if runs_lane soak; then
    banner "soak"
    PROPTEST_CASES="${SOAK_PROPTEST_CASES:-1024}" \
    EXTRA_CHURN_SEEDS="${EXTRA_CHURN_SEEDS:-59,83,127,211,349}" \
    bash -c '
        set -euo pipefail
        cargo test -p ring --test view_merge -- --nocapture
        cargo test -p ring --test properties -- --nocapture
        cargo test -p kvstore --test elastic -- --nocapture
        cargo test -p kvstore --test gossip -- --nocapture
        cargo test -p kvstore --test overlap -- --nocapture
        cargo test -p kvstore --test aae_oracle -- --nocapture
        cargo test -p kvstore --test wire -- --nocapture
        cargo test -p kvstore --test recovery -- --nocapture
        cargo test -p storage -- --nocapture
        cargo test -p kvstore --test crash_burst -- --nocapture
        cargo test -p runtime --test crash_burst -- --nocapture
        cargo test -p storage --test meta_record -- --nocapture
        NET_FAULTS=hostile cargo test -p kvstore --test elastic -- --nocapture
        NET_FAULTS=hostile cargo test -p kvstore --test gossip -- --nocapture
        NET_FAULTS=hostile cargo test -p kvstore --test overlap -- --nocapture
    '
    # the same churn suites again with the delta protocols forced on:
    # the equivalence oracle must stay green when every reconciliation
    # travels as summaries/deltas instead of full pushes
    PROPTEST_CASES="${SOAK_PROPTEST_CASES:-1024}" \
    EXTRA_CHURN_SEEDS="${EXTRA_CHURN_SEEDS:-59,83,127,211,349}" \
    DELTA_PROTOCOLS=force \
    bash -c '
        set -euo pipefail
        cargo test -p kvstore --test elastic -- --nocapture
        cargo test -p kvstore --test gossip -- --nocapture
        cargo test -p kvstore --test overlap -- --nocapture
        cargo test -p kvstore --test aae_oracle -- --nocapture
    '
    # cross-backend conformance at soak breadth: several seeds so rare
    # thread interleavings get real coverage
    RUNTIME_CONFORMANCE_SEEDS="${RUNTIME_CONFORMANCE_SEEDS:-8}" \
        cargo test -p runtime --test conformance -- --nocapture
    SOCKET_CONFORMANCE_SEEDS="${SOCKET_CONFORMANCE_SEEDS:-8}" \
        cargo test -p transport --test conformance -- --nocapture
fi

echo
echo "all requested lanes green ✓"
