//! The [`Strategy`] trait and combinators: ranges, tuples, `prop_map`,
//! boxing, and uniform unions (behind [`prop_oneof!`]).
//!
//! [`prop_oneof!`]: crate::prop_oneof

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a pure function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values satisfying `f`, retrying up to a fixed bound.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice among boxed strategies ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

/// Integer types usable as range strategies.
pub trait RangeValue: Copy {
    /// Uniform draw from `[lo, hi)` mapped through the RNG.
    fn draw(rng: &mut TestRng, lo: Self, hi_exclusive: Self) -> Self;
}

macro_rules! impl_range_value_uint {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_range_value_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_value_int {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_value_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl RangeValue for f64 {
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn new_value(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if hi == u64::MAX && lo == 0 {
            rng.next_u64()
        } else {
            lo + rng.below(hi - lo + 1)
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Strategy producing values via [`crate::arbitrary::Arbitrary`];
/// returned by [`crate::arbitrary::any`].
pub struct ArbitraryStrategy<T> {
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
