//! [`Arbitrary`] for primitives and the [`any`] entry point.

use crate::strategy::ArbitraryStrategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy {
        _marker: PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // finite values only: garbage-input tests want valid floats
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}
