//! Collection strategies: `vec`, `btree_set`, `btree_map`, `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::hash::Hash;
use core::ops::Range;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Size specification for collection strategies (a `usize` range).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi_exclusive, "empty collection size range");
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the set
/// may be smaller than the drawn size (matching upstream behaviour).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Output of [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n)
            .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
            .collect()
    }
}

/// Strategy for `HashSet<S::Value>`.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
