//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate re-implements the pieces the test suites import:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple /
//! [`collection`] strategies, [`arbitrary::any`], the `prop_assert*` /
//! [`prop_assume!`] / [`prop_oneof!`] macros, [`ProptestConfig`] and
//! [`TestCaseError`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` and the seed, but does not minimise them.
//! * **Deterministic seeding.** Case seeds derive from the test name and
//!   case index, so failures reproduce exactly on re-run. Set
//!   `PROPTEST_RNG_SEED` to an integer to explore a different stream.
//! * **`PROPTEST_CASES`** overrides the case count, like upstream.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Everything the tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Alias mirroring upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        @impl [$cfg:expr]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cases.saturating_mul(10).max(cases);
                while accepted < cases && attempts < max_attempts {
                    let seed = $crate::test_runner::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    attempts += 1;
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    // Catch panics (a mid-case unwrap, an index out of
                    // bounds…) so they report generated inputs exactly
                    // like prop_assert failures do.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body Ok(())
                            },
                        ),
                    );
                    let failure: ::std::option::Option<String> = match outcome {
                        Ok(Ok(())) => {
                            accepted += 1;
                            None
                        }
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => None,
                        Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => Some(msg),
                        Err(payload) => {
                            Some($crate::test_runner::panic_message(payload.as_ref()))
                        }
                    };
                    if let Some(msg) = failure {
                        // Strategies are pure functions of the RNG stream,
                        // so replaying the case seed reproduces the failing
                        // inputs; the passing path pays no formatting cost.
                        let mut replay = $crate::test_runner::TestRng::new(seed);
                        let mut inputs = String::new();
                        $(
                            inputs.push_str(stringify!($arg));
                            inputs.push_str(" = ");
                            inputs.push_str(&format!(
                                "{:?}",
                                $crate::strategy::Strategy::new_value(&($strat), &mut replay)
                            ));
                            inputs.push('\n');
                        )+
                        panic!(
                            "proptest case failed: {}\n(case {}/{}; seeds are a pure \
                             function of the test name, so a plain re-run reproduces \
                             this failure)\ninputs:\n{}",
                            msg, accepted + 1, cases, inputs
                        );
                    }
                }
                assert!(
                    accepted >= cases,
                    "proptest: too many rejected cases ({} accepted of {} attempts, {} required)",
                    accepted, attempts, cases
                );
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl [$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl [$crate::test_runner::ProptestConfig::default()]
            $($rest)*
        );
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal, reporting both on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)
                );
            }
        }
    };
}

/// Asserts two expressions are unequal, reporting both on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                    stringify!($left), stringify!($right), l, format!($($fmt)+)
                );
            }
        }
    };
}

/// Rejects the current case (it is regenerated, not counted as a
/// failure) when a structural precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
