//! Case execution support: config, errors, the deterministic RNG, and
//! seed derivation. The actual per-test loop lives in the [`proptest!`]
//! macro expansion.
//!
//! [`proptest!`]: crate::proptest

use core::fmt;

/// Result type property bodies and helpers return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assert*` — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — regenerate, don't count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (only the fields this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` environment override, like upstream.
#[must_use]
pub fn case_count_override() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Resolves the effective case count for a property.
#[must_use]
pub fn resolve_cases(configured: u32) -> u32 {
    case_count_override().unwrap_or(configured).max(1)
}

/// Derives the seed for one case: a hash of the fully-qualified test
/// name and the attempt index, optionally mixed with
/// `PROPTEST_RNG_SEED`. Pure function — failures replay exactly.
#[must_use]
pub fn case_seed(test_path: &str, attempt: u32) -> u64 {
    let base: u64 = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in test_path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= u64::from(attempt);
    h = h.wrapping_mul(0x100_0000_01b3);
    splitmix(h)
}

/// Renders a caught panic payload for the failure report.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        String::from("panicked with a non-string payload")
    }
}

/// The generator handed to strategies: SplitMix64, 64 bits of state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x2545_f491_4f6c_dd1d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.state)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
