//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate provides the handful of items the sources import —
//! [`rngs::StdRng`], [`Rng`], [`RngCore`], [`SeedableRng`] and [`Error`]
//! — with the same signatures as `rand` 0.8. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64: deterministic,
//! high-quality for simulation purposes, and *not* the same stream as
//! upstream `rand` (nothing in this workspace depends on the exact
//! stream, only on seed-determinism).

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::Range;

/// Error type mirroring `rand::Error`.
///
/// The shimmed generators are infallible, so this is never constructed;
/// it exists so `try_fill_bytes` signatures line up with `rand` 0.8.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand shim error (infallible)")
    }
}

impl std::error::Error for Error {}

/// Core trait for random number generators, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes; infallible in this shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seeding trait, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion scheme upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // 128-bit widening multiply: unbiased enough for simulation
                // (bias < 2^-64 for any span representable here).
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                let x = rng.next_u64() as u128;
                let off = ((x * span as u128) >> 64) as $u;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Types with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Standard RNG implementations.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++.
    ///
    /// Deterministic per seed, `Clone`-able, and fast. Not a
    /// cryptographic generator (upstream `StdRng` is ChaCha12); this
    /// workspace only needs reproducible simulation streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
