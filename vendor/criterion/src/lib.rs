//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate implements a small but honest measurement harness
//! behind criterion's API shape: warm-up, timed batches, and a
//! mean/min/max report per benchmark printed to stdout. It has none of
//! upstream's statistical machinery (no outlier analysis, no HTML
//! reports, no comparison against saved baselines).
//!
//! Two additions over upstream's surface support CI baselines:
//!
//! * `--quick` (argument) switches to a fast profile (short warm-up and
//!   measurement windows, few samples) for smoke/baseline lanes;
//! * `CRITERION_JSON_OUT=<path>` (environment) additionally writes every
//!   completed benchmark as a machine-readable JSON array to `<path>`
//!   (rewritten after each benchmark, so the file is valid JSON even if
//!   the run is interrupted).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager: holds timing configuration and runs groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 50,
            filter: None,
            list_only: false,
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark warms up before measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how many timed samples are collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (`--bench` is implied by cargo;
    /// a positional argument filters benchmark names; `--list` lists).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => {}
                "--profile-time" => {
                    // takes a value we ignore
                    let _ = args.next();
                }
                "--list" => self.list_only = true,
                "--quick" => self.apply_quick_profile(),
                "--sample-size" => {
                    // same floor the programmatic setters assert
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = usize::max(v, 2);
                    }
                }
                s if !s.starts_with('-') && self.filter.is_none() => {
                    self.filter = Some(s.to_string());
                }
                _ => {}
            }
        }
        self
    }

    /// Fast mode for CI baseline lanes: enough samples to catch gross
    /// regressions, cheap enough to run on every push (`--quick`).
    fn apply_quick_profile(&mut self) {
        self.warm_up_time = Duration::from_millis(50);
        self.measurement_time = Duration::from_millis(150);
        self.sample_size = 10;
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.clone();
        run_one(&cfg, &id, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text());
        let cfg = self.group_config();
        run_one(&cfg, &full, |b| f(b, input));
        self
    }

    /// Runs an unparameterised benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().text());
        let cfg = self.group_config();
        run_one(&cfg, &full, |b| f(b));
        self
    }

    /// Ends the group (upstream requires this; here it is a no-op).
    pub fn finish(self) {}

    fn group_config(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            cfg.measurement_time = d;
        }
        cfg
    }
}

/// Identifies one benchmark: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/param"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut text = function_name.into();
        let _ = write!(text, "/{parameter}");
        BenchmarkId { text }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    fn text(&self) -> &str {
        &self.text
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` ergonomics.
pub trait IntoBenchmarkId {
    /// Converts self into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Drives the timed closure for one benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, called `iters_per_sample` times per recorded sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }

    /// Times `f` with per-iteration setup excluded is not supported;
    /// provided so `iter_with_large_drop` call sites compile.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

/// One completed benchmark, as recorded for `CRITERION_JSON_OUT`.
#[derive(Debug, Clone)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

fn json_records() -> &'static std::sync::Mutex<Vec<BenchRecord>> {
    static RECORDS: std::sync::OnceLock<std::sync::Mutex<Vec<BenchRecord>>> =
        std::sync::OnceLock::new();
    RECORDS.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"id\": \"{}\", \"mean_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}, \"samples\": {}, \"iters_per_sample\": {}}}",
            json_escape(&r.id),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Records a finished benchmark and, when `CRITERION_JSON_OUT` names a
/// path, rewrites the full JSON array there. Rewriting keeps the file
/// valid JSON at every point of the run.
fn record_result(record: BenchRecord) {
    let mut records = json_records().lock().expect("bench record lock");
    records.push(record);
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if !path.is_empty() {
            let body = render_json(&records);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, id: &str, mut f: F) {
    if let Some(filter) = &cfg.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if cfg.list_only {
        println!("{id}: benchmark");
        return;
    }

    // Warm-up: also estimates the per-iteration cost so each sample
    // runs enough iterations to be measurable.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut probe);
        probe.samples.clear();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let budget_ns = cfg.measurement_time.as_nanos() / cfg.sample_size.max(1) as u128;
    let iters_per_sample = (budget_ns / per_iter.max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::with_capacity(cfg.sample_size),
    };
    for _ in 0..cfg.sample_size {
        f(&mut bencher);
    }

    let per_sample: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters_per_sample as f64)
        .collect();
    let n = per_sample.len().max(1) as f64;
    let mean = per_sample.iter().sum::<f64>() / n;
    let min = per_sample.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_sample.iter().copied().fold(0.0_f64, f64::max);
    println!(
        "{id:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
    record_result(BenchRecord {
        id: id.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: per_sample.len(),
        iters_per_sample,
    });
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("op", 32).text(), "op/32");
        assert_eq!(BenchmarkId::from_parameter("x").text(), "x");
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            ran = true;
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn sample_size_must_be_sane() {
        let c = Criterion::default().sample_size(10);
        assert_eq!(c.sample_size, 10);
    }

    #[test]
    fn json_rendering_is_valid_and_escaped() {
        let records = vec![
            BenchRecord {
                id: "group/op \"x\"".to_string(),
                mean_ns: 12.5,
                min_ns: 10.0,
                max_ns: 20.0,
                samples: 3,
                iters_per_sample: 7,
            },
            BenchRecord {
                id: "plain".to_string(),
                mean_ns: 1.0,
                min_ns: 1.0,
                max_ns: 1.0,
                samples: 1,
                iters_per_sample: 1,
            },
        ];
        let body = render_json(&records);
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        assert!(body.contains("\"id\": \"group/op \\\"x\\\"\""));
        assert!(body.contains("\"mean_ns\": 12.50"));
        assert!(body.contains("\"iters_per_sample\": 7"));
        assert_eq!(body.matches('{').count(), 2);
        assert_eq!(json_escape("a\\b\nc"), "a\\\\b\\u000ac");
    }

    #[test]
    fn quick_profile_tightens_every_knob() {
        // configure_from_args reads real process args, so exercise the
        // profile the --quick flag applies directly
        let mut c = Criterion::default();
        c.apply_quick_profile();
        let default = Criterion::default();
        assert!(c.warm_up_time < default.warm_up_time);
        assert!(c.measurement_time < default.measurement_time);
        assert!(c.sample_size < default.sample_size);
    }
}
