//! E1–E3: the paper's Figure 1, asserted step by step in all three
//! representations. This is the reproduction's canonical correctness
//! artifact: every clock value below appears literally in the paper.

use dvv::mechanisms::{
    CausalHistoryMechanism, DvvMechanism, Mechanism, VvServerMechanism, WriteOrigin,
};
use dvv::server::{context, sync_into, update, Tagged};
use dvv::{CausalHistory, CausalOrder, ClientId, Dot, ReplicaId, VersionVector};

/// Figure 1c at the clock level, asserting the exact dots and vectors
/// the paper prints: `(A,1)[]`, `(A,2)[A:1]`, `(A,3)[A:1]` with
/// `(A,2) ∥ (A,3)`, and the resolving `(A,4)` covering `[A:3, B:1]`.
#[test]
fn figure_1c_exact_clocks() {
    let mut a: Vec<Tagged<&str, &str>> = Vec::new();
    let mut b: Vec<Tagged<&str, &str>> = Vec::new();

    // v1 by client 1, blind:
    let c1 = update(&mut a, &VersionVector::new(), "A", "v1");
    assert_eq!(c1.to_string(), "(A,1)[]");

    let ctx_v1 = context(&a);

    // v2 by client 1 after reading v1:
    let c2 = update(&mut a, &ctx_v1, "A", "v2");
    assert_eq!(c2.to_string(), "(A,2)[A:1]");

    // v3 by client 2 with the same stale context:
    let c3 = update(&mut a, &ctx_v1, "A", "v3");
    assert_eq!(c3.to_string(), "(A,3)[A:1]");
    assert_eq!(
        c2.causal_cmp(&c3),
        CausalOrder::Concurrent,
        "the paper's headline: (A,2)[A:1] || (A,3)[A:1]"
    );
    assert_eq!(a.len(), 2);

    // replicate to B, client 3 reads all and writes v4 back at A
    sync_into(&mut b, &a);
    assert_eq!(b.len(), 2);
    let ctx_all = context(&b);
    assert_eq!(ctx_all.get(&"A"), 3);
    let c4 = update(&mut a, &ctx_all, "A", "v4");
    assert_eq!(c4.dot(), &Dot::new("A", 4));
    assert!(c2.precedes(&c4) && c3.precedes(&c4));
    assert_eq!(a.len(), 1, "v4 resolves both siblings");
}

/// Figure 1a: the same execution in explicit causal histories:
/// `{A1}`, `{A1,A2}`, `{A1,A3}` with `{A1,A2} ∥ {A1,A3}`, resolved by
/// `{A1,A2,A3,A4}`.
#[test]
fn figure_1a_exact_histories() {
    let h1: CausalHistory<&str> = [Dot::new("A", 1)].into_iter().collect();
    let h2: CausalHistory<&str> = [Dot::new("A", 1), Dot::new("A", 2)].into_iter().collect();
    let h3: CausalHistory<&str> = [Dot::new("A", 1), Dot::new("A", 3)].into_iter().collect();
    assert_eq!(h1.to_string(), "{A1}");
    assert_eq!(h2.to_string(), "{A1,A2}");
    assert_eq!(h3.to_string(), "{A1,A3}");
    assert_eq!(h1.causal_cmp(&h2), CausalOrder::Before);
    assert_eq!(h2.causal_cmp(&h3), CausalOrder::Concurrent);
    let h4: CausalHistory<&str> = (1..=4).map(|n| Dot::new("A", n)).collect();
    assert_eq!(h4.to_string(), "{A1,A2,A3,A4}");
    assert_eq!(h2.causal_cmp(&h4), CausalOrder::Before);
    assert_eq!(h3.causal_cmp(&h4), CausalOrder::Before);
}

/// Figure 1b: per-server version vectors on the same script produce
/// `[A:2] < [A:3]` for the truly-concurrent pair — and destroy v2.
#[test]
fn figure_1b_anomaly() {
    let v2: VersionVector<&str> = [("A", 2u64)].into_iter().collect();
    let v3: VersionVector<&str> = [("A", 3u64)].into_iter().collect();
    assert_eq!(
        v2.causal_cmp(&v3),
        CausalOrder::Before,
        "[2,0] < [3,0] — the paper's problematic case"
    );
}

/// The full mechanism-level replay: sibling counts per step must match
/// the figure (2 siblings after v3 in 1a/1c, 1 sibling in 1b).
#[test]
fn figure_1_mechanism_traces_match() {
    fn trace<M: Mechanism<&'static str>>(mech: M) -> Vec<usize> {
        let a = ReplicaId(0);
        let origin = |c: u64| WriteOrigin::new(a, ClientId(c));
        let mut server_a = M::State::default();
        let mut server_b = M::State::default();
        let mut counts = Vec::new();
        mech.write(&mut server_a, origin(1), &M::Context::default(), "v1");
        counts.push(mech.sibling_count(&server_a));
        let (_, ctx_v1) = mech.read(&server_a);
        mech.write(&mut server_a, origin(1), &ctx_v1, "v2");
        counts.push(mech.sibling_count(&server_a));
        mech.write(&mut server_a, origin(2), &ctx_v1, "v3");
        counts.push(mech.sibling_count(&server_a));
        mech.merge(&mut server_b, &server_a);
        counts.push(mech.sibling_count(&server_b));
        let (_, ctx_all) = mech.read(&server_b);
        mech.write(&mut server_a, origin(3), &ctx_all, "v4");
        counts.push(mech.sibling_count(&server_a));
        counts
    }
    assert_eq!(
        trace(CausalHistoryMechanism),
        vec![1, 1, 2, 2, 1],
        "Figure 1a"
    );
    assert_eq!(
        trace(VvServerMechanism),
        vec![1, 1, 1, 1, 1],
        "Figure 1b: v2 destroyed"
    );
    assert_eq!(trace(DvvMechanism), vec![1, 1, 2, 2, 1], "Figure 1c");
}

/// The same figure regenerated through the bench harness used by
/// EXPERIMENTS.md.
#[test]
fn figure_1_bench_harness_agrees() {
    let table = dvv_bench::e1_e3_figure1();
    let rendered = table.render();
    assert!(rendered.contains("v3"));
    // row "v3@A": 2 siblings in 1a and 1c, 1 sibling in 1b
    let v3_row = rendered
        .lines()
        .find(|l| l.trim_start().starts_with("v3@A"))
        .expect("v3 row");
    assert!(v3_row.matches("2 sibling(s)").count() == 2, "{v3_row}");
    assert!(v3_row.matches("1 sibling(s)").count() == 1, "{v3_row}");
}
