//! Each quantitative claim of the paper, asserted as a cross-crate
//! integration test (operation-count and byte-level shapes; the timing
//! shapes live in the Criterion benches and EXPERIMENTS.md).

use dvv::encode::Encode;
use dvv::mechanisms::{DvvMechanism, Mechanism, VvClientMechanism, VvServerMechanism};
use dvv::server::{context, update, Tagged};
use dvv::{CausalOrder, ClientId, Dot, Dvv, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use simnet::Duration;

/// Claim 2 (O(1) verification): a DVV comparison touches one map entry
/// regardless of the number of actors — byte-for-byte, the comparison
/// result must not depend on how many entries pad the vectors.
#[test]
fn dvv_comparison_independent_of_vector_width() {
    for n in [1u32, 10, 1000] {
        let past: VersionVector<ReplicaId> = (0..n).map(|i| (ReplicaId(i), 5u64)).collect();
        let a = Dvv::new(Dot::new(ReplicaId(0), 6), past.clone());
        let mut past_b = past.clone();
        past_b.record(Dot::new(ReplicaId(0), 6));
        let b = Dvv::new(Dot::new(ReplicaId(1), 6), past_b);
        assert_eq!(a.causal_cmp(&b), CausalOrder::Before);
        assert_eq!(b.causal_cmp(&a), CausalOrder::After);
        // and the verdict is reached via a single containment check:
        assert!(b.past().contains(a.dot()));
    }
}

/// Claim 3 (metadata bounded by replication degree): DVV clock entries
/// never exceed the number of replica servers, no matter how many
/// clients write.
#[test]
fn dvv_entries_bounded_by_replicas() {
    let mech = DvvMechanism;
    let servers = [ReplicaId(0), ReplicaId(1), ReplicaId(2)];
    let mut state: Vec<Tagged<ReplicaId, u64>> = Vec::new();
    for c in 0..200u64 {
        let (_, ctx) = mech.read(&state);
        let server = servers[(c % 3) as usize];
        mech.write(
            &mut state,
            dvv::mechanisms::WriteOrigin::new(server, ClientId(c)),
            &ctx,
            c,
        );
    }
    for t in &state {
        assert!(t.clock.past().len() <= 3, "past wider than replica count");
    }
    let (_, ctx) = mech.read(&state);
    assert!(ctx.len() <= 3, "context wider than replica count");
}

/// Claim 3 converse: per-client vectors grow with the client population.
#[test]
fn per_client_vectors_grow_with_clients() {
    let mech = VvClientMechanism::unbounded();
    let mut state: Vec<(VersionVector<ClientId>, u64)> = Vec::new();
    for c in 0..50u64 {
        let (_, ctx) = mech.read(&state);
        mech.write(
            &mut state,
            dvv::mechanisms::WriteOrigin::new(ReplicaId(0), ClientId(c)),
            &ctx,
            c,
        );
    }
    let (_, ctx) = mech.read(&state);
    assert_eq!(ctx.len(), 50, "one entry per client ever seen");
    // and the encoded size reflects it
    assert!(ctx.encoded_len() > 50);
}

/// Claim 4a (Figure 1b): per-server VVs silently destroy a concurrent
/// client write; DVVs never do. (Store-level version in the kvstore
/// integration tests; this is the minimal two-write witness.)
#[test]
fn vv_server_loses_what_dvv_keeps() {
    fn run<M: Mechanism<&'static str>>(mech: M) -> usize {
        let origin = |c: u64| dvv::mechanisms::WriteOrigin::new(ReplicaId(0), ClientId(c));
        let mut st = M::State::default();
        mech.write(&mut st, origin(1), &M::Context::default(), "v1");
        let (_, ctx) = mech.read(&st);
        mech.write(&mut st, origin(1), &ctx, "v2");
        mech.write(&mut st, origin(2), &ctx, "v3");
        mech.sibling_count(&st)
    }
    assert_eq!(run(VvServerMechanism), 1, "v2 destroyed");
    assert_eq!(run(DvvMechanism), 2, "v2 ∥ v3 kept");
}

/// Claim 4b (pruning unsafety): in the full store, pruned per-client
/// vectors produce anomalies that the unpruned and DVV stores never do.
#[test]
fn pruning_anomalies_at_store_level() {
    let config = || ClusterConfig {
        servers: 3,
        clients: 16,
        cycles_per_client: 8,
        client: ClientConfig {
            key_count: 2,
            think_time: Duration::from_micros(200),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut pruned_anomalies = 0;
    for seed in 0..5 {
        let mut c = Cluster::new(seed, VvClientMechanism::pruned(2), config());
        c.run();
        c.converge();
        let r = c.anomaly_report();
        pruned_anomalies += r.lost_updates + r.false_concurrency;
    }
    assert!(pruned_anomalies > 0, "pruning must corrupt causality");

    for seed in 0..3 {
        let mut c = Cluster::new(seed, DvvMechanism, config());
        c.run();
        c.converge();
        assert!(c.anomaly_report().is_clean());
    }
}

/// Claim 5 (metadata/latency): on the same workload the converged DVV
/// store carries less causal metadata than the per-client-VV store once
/// clients outnumber replicas.
#[test]
fn dvv_store_metadata_smaller_with_many_clients() {
    let config = ClusterConfig {
        servers: 3,
        clients: 24,
        cycles_per_client: 6,
        client: ClientConfig {
            key_count: 1,
            think_time: Duration::from_micros(200),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut dvv = Cluster::new(9, DvvMechanism, config.clone());
    dvv.run();
    dvv.converge();
    let mut vvc = Cluster::new(9, VvClientMechanism::unbounded(), config);
    vvc.run();
    vvc.converge();
    let d = dvv.metadata_report();
    let v = vvc.metadata_report();
    assert!(
        d.total_bytes * 2 < v.total_bytes,
        "dvv {}B should be far below vv-client {}B",
        d.total_bytes,
        v.total_bytes
    );
}

/// The facade crate re-exports everything the examples need.
#[test]
fn facade_reexports_work() {
    let _vv: dvv_repro::dvv::VersionVector<&str> = dvv_repro::dvv::VersionVector::new();
    let _ring: dvv_repro::ring::HashRing<u32> = dvv_repro::ring::HashRing::new(0..3);
    let _z = dvv_repro::workloads::Zipf::new(10, 1.0);
    let t = dvv_repro::simnet::SimTime::ZERO;
    assert_eq!(t.as_micros(), 0);
}

/// Server-side update/context round-trip across the public API surface.
#[test]
fn public_api_smoke() {
    let mut siblings: Vec<Tagged<&str, &str>> = Vec::new();
    update(&mut siblings, &VersionVector::new(), "A", "x");
    let ctx = context(&siblings);
    assert_eq!(ctx.get(&"A"), 1);
    let clock = update(&mut siblings, &ctx, "B", "y");
    assert_eq!(clock.dot(), &Dot::new("B", 1));
    assert_eq!(siblings.len(), 1);
}
