//! # dvv-repro — facade crate for the DVV reproduction workspace
//!
//! Reproduction of *“Brief Announcement: Efficient Causality Tracking in
//! Distributed Storage Systems With Dotted Version Vectors”* (PODC 2012).
//!
//! This crate re-exports the workspace members so the examples and
//! integration tests at the repository root can reach everything through
//! one dependency:
//!
//! * [`dvv`] — the clocks: dots, version vectors, causal histories, DVVs,
//!   DVVSets, and the pluggable store mechanisms.
//! * [`simnet`] — the deterministic discrete-event network simulator.
//! * [`ring`] — consistent hashing and preference lists.
//! * [`kvstore`] — the Dynamo/Riak-style multi-version store.
//! * [`workloads`] — workload generators and statistics.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-versus-
//! measured record.

pub use dvv;
pub use kvstore;
pub use ring;
pub use simnet;
pub use workloads;
