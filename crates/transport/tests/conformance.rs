//! Cross-driver conformance over real sockets: the same seeded
//! workload shape, run once on the deterministic simulator and once on
//! the TCP [`SocketFleet`], must leave both fleets in AAE-equivalent,
//! oracle-clean, anomaly-free end states — audited through the one
//! driver-agnostic surface all three drivers implement
//! ([`kvstore::harness::FleetHarness`]).
//!
//! On top of the shared audit stack, the socket run asserts the
//! transport's byte-ledger identity: every byte the protocol charged to
//! a node's wire ledger is a byte the fabric either wrote to a socket,
//! dropped at a full queue, lost to a dead connection, or delivered
//! locally (self-sends) — no modeled bytes, no unaccounted bytes.
//!
//! Three seeds by default; `SOCKET_CONFORMANCE_SEEDS` widens the sweep.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::{audit_fleet, FleetHarness};
use simnet::Duration;
use transport::{SocketConfig, SocketFleet, HEADER_BYTES};

const SERVERS: usize = 4;
const CLIENTS: usize = 12;
const CYCLES: u32 = 6;

fn store_config() -> StoreConfig {
    StoreConfig {
        anti_entropy_interval: Duration::from_millis(25),
        gossip_interval: Duration::from_millis(25),
        handoff_interval: Duration::from_millis(30),
        ..StoreConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        key_count: 16,
        think_time: Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

fn socket_config() -> SocketConfig {
    SocketConfig {
        servers: SERVERS,
        clients: CLIENTS,
        cycles_per_client: CYCLES,
        store: store_config(),
        client: client_config(),
        stall_budget: StdDuration::from_secs(10),
        run_budget: StdDuration::from_secs(60),
        quiesce: StdDuration::from_secs(12),
        settle_window: StdDuration::from_millis(600),
        ..SocketConfig::default()
    }
}

/// Seeds to sweep: three by default (the acceptance gate),
/// `SOCKET_CONFORMANCE_SEEDS` overrides for soak lanes.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("SOCKET_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    (0..n).map(|i| 0x50C7 + i * 131).collect()
}

/// Runs the seeded workload over real TCP and applies the full audit
/// stack plus the transport byte-ledger identity.
fn audit_socket(seed: u64) {
    let mut fleet = SocketFleet::new(seed, DvvMechanism, socket_config());
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("seed {seed}: socket fleet stalled:\n{stall}"),
    };
    assert!(report.all_done, "seed {seed}: clients left unfinished");
    assert_eq!(
        report.ops_ok,
        fleet.latency_report().get.count() + fleet.latency_report().put.count(),
        "seed {seed}: live op counter diverged from client histograms"
    );

    // Honest accounting: the fleet runs with the frame codec's real
    // header size, not the modeled default.
    assert_eq!(fleet.server(0).config().header_bytes, HEADER_BYTES);

    // Ledger identity: bytes charged by the protocol == bytes the
    // fabric enqueued for sockets + dropped at full queues + delivered
    // locally. Exact, fleet-wide, to the byte.
    let fabric = fleet.fabric_report();
    let charged = FleetHarness::wire_report(&fleet).total_bytes();
    assert_eq!(
        charged,
        fabric.enqueued_bytes + fabric.dropped_bytes + fabric.self_bytes,
        "seed {seed}: wire ledger diverged from fabric accounting\n{fabric:#?}"
    );
    // The socket side of the ledger is conserved too: what was written
    // is what was enqueued minus queue-resident/io-lost frames, and the
    // readers never counted more than the writers produced.
    assert!(
        fabric.written_bytes <= fabric.enqueued_bytes,
        "seed {seed}: wrote more than enqueued\n{fabric:#?}"
    );
    assert!(
        fabric.recv_bytes <= fabric.written_bytes,
        "seed {seed}: received more than written\n{fabric:#?}"
    );
    assert!(
        fabric.connects > 0,
        "seed {seed}: no TCP connection was ever dialed"
    );

    audit_fleet(&mut fleet, &format!("seed {seed} (socket)"));
}

/// Runs the same seeded workload shape on the simulator — the baseline
/// the socket driver must match.
fn audit_sim(seed: u64) {
    let mut cluster = Cluster::new(
        seed,
        DvvMechanism,
        ClusterConfig {
            servers: SERVERS,
            clients: CLIENTS,
            cycles_per_client: CYCLES,
            store: store_config(),
            client: client_config(),
            ..ClusterConfig::default()
        },
    );
    cluster.run();
    cluster.run_for(Duration::from_millis(1500));
    audit_fleet(&mut cluster, &format!("seed {seed} (simulator)"));
}

#[test]
fn socket_fleet_matches_simulator_audits() {
    for seed in seeds() {
        audit_sim(seed);
        audit_socket(seed);
    }
}
