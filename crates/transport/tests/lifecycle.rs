//! Connection-lifecycle faults: sever every TCP connection touching a
//! server mid-burst. Frames in flight become wire loss (a failure class
//! the protocol already absorbs), dialers reconnect with jittered
//! backoff, and anti-entropy repairs the damage — the run must finish
//! and audit exactly as clean as an unfaulted one, with no operator
//! intervention.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::audit_fleet;
use runtime::Progress;
use simnet::{Duration, SimRng};
use transport::{hello_body, write_frame, ConnKill, Fabric, SocketConfig, SocketFleet};

#[test]
fn severed_connections_reconnect_and_converge() {
    let config = SocketConfig {
        servers: 4,
        clients: 12,
        cycles_per_client: 8,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(25),
            gossip_interval: Duration::from_millis(25),
            handoff_interval: Duration::from_millis(30),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 16,
            think_time: Duration::from_millis(1),
            ..ClientConfig::default()
        },
        stall_budget: StdDuration::from_secs(10),
        run_budget: StdDuration::from_secs(60),
        quiesce: StdDuration::from_secs(12),
        settle_window: StdDuration::from_millis(600),
        // Cut server 1's links twice while clients are mid-burst, and
        // server 2's once for good measure.
        conn_kills: vec![
            ConnKill {
                after: StdDuration::from_millis(30),
                node: 1,
            },
            ConnKill {
                after: StdDuration::from_millis(60),
                node: 2,
            },
            ConnKill {
                after: StdDuration::from_millis(90),
                node: 1,
            },
        ],
        ..SocketConfig::default()
    };
    let mut fleet = SocketFleet::new(0x51CC, DvvMechanism, config);
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("socket fleet stalled under connection kills:\n{stall}"),
    };
    assert!(report.all_done, "clients left unfinished");

    let fabric = fleet.fabric_report();
    assert!(
        fabric.reconnects > 0,
        "kills never forced a reconnect — fault did not land\n{fabric:#?}"
    );

    // The full cross-driver audit stack: one view, AAE-equivalent
    // replicas, no residual copies, oracle-clean converge.
    audit_fleet(&mut fleet, "socket fleet with connection kills");

    // Every reconnect re-ran the authenticated hello with the shared
    // secret — none may have been rejected.
    assert_eq!(
        fabric.hello_rejects, 0,
        "legitimate reconnects must pass the hello challenge"
    );
}

/// Spins up a bare two-node fabric and pokes its handshake directly:
/// a dialer that cannot answer the keyed hello challenge — wrong
/// secret, malformed body, or out-of-range node id — is terminally
/// rejected (socket closed, nothing attributed, nothing delivered),
/// while a dialer holding the secret gets past the hello and is
/// attributed as the peer it claimed.
#[test]
fn bad_hello_is_terminally_rejected() {
    const SECRET: u64 = 0x7357_5EC2_E7AB_CDEF;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx0, rx0) = mpsc::sync_channel(64);
    let (tx1, _rx1) = mpsc::sync_channel(64);
    let fabric = Fabric::<DvvMechanism>::start(
        DvvMechanism,
        2,
        vec![tx0, tx1],
        Arc::new(Progress::new(2)),
        Arc::clone(&shutdown),
        SimRng::new(0xBAD_4E110),
        16,
        1 << 20,
        SECRET,
    )
    .expect("bind loopback listeners");

    // Reads until the peer closes; returns the bytes it sent us.
    // A rejected connection yields EOF (or reset) without traffic.
    let drain = |s: &mut TcpStream| {
        s.set_read_timeout(Some(StdDuration::from_secs(5))).unwrap();
        let mut sunk = Vec::new();
        let _ = s.read_to_end(&mut sunk);
        sunk.len()
    };

    // Wrong secret: correct id, tag keyed under a different secret.
    let mut rogue = TcpStream::connect(fabric.addr(0)).expect("dial");
    write_frame(&mut rogue, &hello_body(1, SECRET ^ 1)).expect("send hello");
    assert_eq!(drain(&mut rogue), 0, "rejected conn must carry no data");

    // Malformed hello: right length class is enforced, not just tags.
    let mut rogue = TcpStream::connect(fabric.addr(0)).expect("dial");
    write_frame(&mut rogue, b"hi").expect("send hello");
    drain(&mut rogue);

    // Out-of-range node id, correctly tagged: still no entry.
    let mut rogue = TcpStream::connect(fabric.addr(0)).expect("dial");
    write_frame(&mut rogue, &hello_body(7, SECRET)).expect("send hello");
    drain(&mut rogue);

    // The fabric counted every reject and attributed no frame.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    while fabric.stats().hello_rejects < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let stats = fabric.stats();
    assert_eq!(stats.hello_rejects, 3, "three rejects: {stats:#?}");
    assert_eq!(stats.recv_frames, 0, "no frame may pass a failed hello");

    // A dialer holding the secret gets through: its hello is accepted
    // and its next frame reaches the message path (it decodes as
    // garbage, which kills the connection *after* attribution — the
    // decode_errors counter moving proves the hello was accepted).
    let mut member = TcpStream::connect(fabric.addr(0)).expect("dial");
    write_frame(&mut member, &hello_body(1, SECRET)).expect("send hello");
    write_frame(&mut member, b"not a message").expect("send body");
    let deadline = std::time::Instant::now() + StdDuration::from_secs(5);
    while fabric.stats().decode_errors == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let stats = fabric.stats();
    assert_eq!(stats.hello_rejects, 3, "good hello must not be rejected");
    assert_eq!(stats.recv_frames, 1, "authenticated frame must be read");
    assert_eq!(stats.decode_errors, 1, "garbage body dies after auth");

    shutdown.store(true, Ordering::Relaxed);
    fabric.stop();
    drop(rx0);
}
