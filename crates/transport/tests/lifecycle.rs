//! Connection-lifecycle faults: sever every TCP connection touching a
//! server mid-burst. Frames in flight become wire loss (a failure class
//! the protocol already absorbs), dialers reconnect with jittered
//! backoff, and anti-entropy repairs the damage — the run must finish
//! and audit exactly as clean as an unfaulted one, with no operator
//! intervention.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::audit_fleet;
use simnet::Duration;
use transport::{ConnKill, SocketConfig, SocketFleet};

#[test]
fn severed_connections_reconnect_and_converge() {
    let config = SocketConfig {
        servers: 4,
        clients: 12,
        cycles_per_client: 8,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(25),
            gossip_interval: Duration::from_millis(25),
            handoff_interval: Duration::from_millis(30),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 16,
            think_time: Duration::from_millis(1),
            ..ClientConfig::default()
        },
        stall_budget: StdDuration::from_secs(10),
        run_budget: StdDuration::from_secs(60),
        quiesce: StdDuration::from_secs(12),
        settle_window: StdDuration::from_millis(600),
        // Cut server 1's links twice while clients are mid-burst, and
        // server 2's once for good measure.
        conn_kills: vec![
            ConnKill {
                after: StdDuration::from_millis(30),
                node: 1,
            },
            ConnKill {
                after: StdDuration::from_millis(60),
                node: 2,
            },
            ConnKill {
                after: StdDuration::from_millis(90),
                node: 1,
            },
        ],
        ..SocketConfig::default()
    };
    let mut fleet = SocketFleet::new(0x51CC, DvvMechanism, config);
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("socket fleet stalled under connection kills:\n{stall}"),
    };
    assert!(report.all_done, "clients left unfinished");

    let fabric = fleet.fabric_report();
    assert!(
        fabric.reconnects > 0,
        "kills never forced a reconnect — fault did not land\n{fabric:#?}"
    );

    // The full cross-driver audit stack: one view, AAE-equivalent
    // replicas, no residual copies, oracle-clean converge.
    audit_fleet(&mut fleet, "socket fleet with connection kills");
}
