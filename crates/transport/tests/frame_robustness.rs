//! Property coverage for the socket frame decoder: whatever the stream
//! does — arrives one byte at a time, tears mid-frame, announces an
//! absurd length, or flips a bit anywhere — the decoder never panics
//! and never silently desynchronises. Valid prefixes decode exactly;
//! the first corruption is a terminal, *detected* error (the connection
//! layer responds by dropping the connection, which the protocol
//! already tolerates as wire loss).

use std::io::Read;

use proptest::collection::vec;
use proptest::prelude::*;
use transport::{read_frame, write_frame, FrameError, HEADER_BYTES};

const MAX_FRAME: usize = 1 << 16;

/// A reader that hands out at most `chunk` bytes per call — models TCP
/// delivering partial segments. `read_frame` must reassemble
/// transparently.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn arb_bodies() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 0..200), 1..6)
}

fn encode_stream(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for b in bodies {
        write_frame(&mut out, b).unwrap();
    }
    out
}

proptest! {
    /// Partial reads never corrupt reassembly: any chunk size yields
    /// the identical frame sequence and a clean close.
    #[test]
    fn chunked_reads_reassemble_exactly(bodies in arb_bodies(), chunk in 1usize..17) {
        let stream = encode_stream(&bodies);
        let mut r = Chunked { data: &stream, pos: 0, chunk };
        for body in &bodies {
            let got = read_frame(&mut r, MAX_FRAME).unwrap().expect("frame");
            prop_assert_eq!(&got, body);
        }
        prop_assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());
    }

    /// A stream cut at an arbitrary byte: every fully-contained frame
    /// decodes exactly; the cut frame surfaces as a detected error
    /// (torn i/o) or, if the cut lands on a frame boundary, a clean
    /// close. Never a panic, never a wrong frame.
    #[test]
    fn torn_streams_fail_detectably(bodies in arb_bodies(), cut_seed in any::<u64>()) {
        let stream = encode_stream(&bodies);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut r = &stream[..cut];
        let mut offset = 0usize;
        for body in &bodies {
            let end = offset + HEADER_BYTES + body.len();
            if end <= cut {
                // Fully inside the kept prefix: must decode exactly.
                let got = read_frame(&mut r, MAX_FRAME).unwrap().expect("frame");
                prop_assert_eq!(&got, body);
                offset = end;
            } else {
                // The torn frame: boundary cut reads as clean close,
                // anything else is a detected i/o tear.
                match read_frame(&mut r, MAX_FRAME) {
                    Ok(None) => prop_assert_eq!(cut, offset, "clean close off-boundary"),
                    Ok(Some(_)) => prop_assert!(false, "decoded a torn frame"),
                    Err(FrameError::Io(_)) => {}
                    Err(e) => prop_assert!(false, "unexpected error class: {e}"),
                }
                return Ok(());
            }
        }
        prop_assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());
    }

    /// A bit flipped anywhere in the stream: frames before the flip
    /// decode exactly; the flipped frame NEVER decodes to different
    /// bytes than were sent — it errors (checksum/oversize/tear), the
    /// flip lands in a don't-care... it doesn't: every byte is covered
    /// by length, checksum, or body, so the outcome is an error or an
    /// identical frame is impossible. Assert: no panic, no silent
    /// wrong-body success.
    #[test]
    fn bit_flips_never_yield_wrong_bytes(bodies in arb_bodies(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let mut stream = encode_stream(&bodies);
        let pos = (pos_seed as usize) % stream.len();
        stream[pos] ^= 1 << bit;
        let mut r = stream.as_slice();
        for body in &bodies {
            match read_frame(&mut r, MAX_FRAME) {
                Ok(Some(got)) => prop_assert_eq!(
                    &got, body,
                    "decoder returned bytes that were never sent"
                ),
                // Detected corruption: terminal for the connection.
                Ok(None) | Err(_) => return Ok(()),
            }
        }
        // Flip must have been detected somewhere (it can't be a no-op:
        // every stream byte is load-bearing).
        prop_assert!(false, "bit flip at {pos} went completely unnoticed");
    }

    /// An announced length beyond the cap is rejected before any
    /// allocation, whatever follows it.
    #[test]
    fn oversized_lengths_are_rejected(len in (MAX_FRAME as u32 + 1)..u32::MAX, tail in vec(any::<u8>(), 0..16)) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&len.to_le_bytes());
        stream.extend_from_slice(&0u32.to_le_bytes());
        stream.extend_from_slice(&tail);
        match read_frame(&mut stream.as_slice(), MAX_FRAME) {
            Err(FrameError::TooLarge { len: got, max }) => {
                prop_assert_eq!(got, len as usize);
                prop_assert_eq!(max, MAX_FRAME);
            }
            other => prop_assert!(false, "expected TooLarge, got {:?}", other.map(|_| ())),
        }
    }
}
