//! Charge parity on the wire: the bytes a sender's ledger is charged
//! for a message (`Msg::wire_size + HEADER_BYTES`) are exactly the
//! bytes that cross the socket for it — frame header plus the real
//! `encode_transport` serialisation, counted on both ends.
//!
//! This is the socket-transport mirror of the simulator's
//! `sim_ctx_derives_bytes_from_wire_size` probe: there the "network"
//! observes the charged byte count; here a real TCP connection does.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::messages::Msg;
use kvstore::value::{StampedValue, WriteId};
use runtime::watchdog::Progress;
use simnet::SimRng;
use transport::fabric::Fabric;
use transport::{read_frame, write_frame, HEADER_BYTES};

type M = DvvMechanism;

/// A representative spread of protocol messages: tiny fixed-size acks,
/// keyed requests, and state-carrying replication traffic.
fn sample_msgs() -> Vec<Msg<M>> {
    let mech = DvvMechanism;
    let mut st = <M as Mechanism<StampedValue>>::State::default();
    mech.write(
        &mut st,
        WriteOrigin::new(ReplicaId(0), ClientId(1)),
        &VersionVector::new(),
        StampedValue::new(WriteId::new(ClientId(1), 1), vec![0xA5; 48]),
    );
    vec![
        Msg::RepPutAck { req: 7 },
        Msg::ClientGet {
            req: 1,
            key: b"parity-key".to_vec(),
            digest: 0xDEAD_BEEF,
        },
        Msg::RepGetResp {
            req: 2,
            key: b"parity-key".to_vec(),
            state: st.clone(),
        },
        Msg::RepPut {
            req: 3,
            key: b"another-key".to_vec(),
            state: st,
            hint: Some(ReplicaId(2)),
        },
    ]
}

/// Framing a message costs exactly what the ledger charges: body bytes
/// equal `wire_size`, the frame adds [`HEADER_BYTES`], nothing else.
#[test]
fn frame_bytes_equal_ledger_charge_per_message() {
    let mech = DvvMechanism;
    for msg in sample_msgs() {
        let body = msg.encode_transport(&mech);
        assert_eq!(
            body.len(),
            msg.wire_size(&mech),
            "encode/wire_size contract broken for {msg:?}"
        );
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        assert_eq!(framed.len(), msg.wire_size(&mech) + HEADER_BYTES);
        // And the receiver reads back the same body it was charged for.
        let back = read_frame(&mut framed.as_slice(), 1 << 20)
            .unwrap()
            .unwrap();
        assert_eq!(back, body);
    }
}

/// End-to-end over a real connection: a two-node fabric carries the
/// sample messages; the sender-side ledger (enqueued), the socket
/// writer (written), and the receiver (recv) all count the identical
/// byte total — Σ (wire_size + HEADER_BYTES).
#[test]
fn fabric_counts_match_ledger_on_both_ends() {
    let mech = DvvMechanism;
    let msgs = sample_msgs();
    let charged: u64 = msgs
        .iter()
        .map(|m| (m.wire_size(&mech) + HEADER_BYTES) as u64)
        .sum();

    let (tx0, _rx0) = mpsc::sync_channel(64);
    let (tx1, rx1) = mpsc::sync_channel(64);
    let progress = Arc::new(Progress::new(2));
    let shutdown = Arc::new(AtomicBool::new(false));
    let fabric = Fabric::start(
        mech,
        2,
        vec![tx0, tx1],
        Arc::clone(&progress),
        Arc::clone(&shutdown),
        SimRng::new(42),
        64,
        1 << 20,
        0x0073_575E_C2E7,
    )
    .unwrap();

    let mech = DvvMechanism;
    for msg in &msgs {
        fabric.send_bytes(0, 1, msg.encode_transport(&mech));
    }

    // Every message arrives intact, in order, from node 0.
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < msgs.len() {
        assert!(Instant::now() < deadline, "messages never arrived");
        if let Ok((from, msg)) = rx1.recv_timeout(Duration::from_millis(100)) {
            assert_eq!(from.0, 0);
            got.push(msg);
        }
    }
    for (sent, received) in msgs.iter().zip(&got) {
        assert_eq!(
            sent.encode_transport(&DvvMechanism),
            received.encode_transport(&DvvMechanism),
            "message mutated in transit"
        );
    }

    shutdown.store(true, Ordering::Relaxed);
    fabric.stop();
    let stats = fabric.stats();
    assert_eq!(stats.enqueued_bytes, charged, "sender ledger\n{stats:#?}");
    assert_eq!(stats.written_bytes, charged, "socket writer\n{stats:#?}");
    assert_eq!(stats.recv_bytes, charged, "receiver\n{stats:#?}");
    assert_eq!(stats.dropped_bytes + stats.io_lost_frames, 0);
    assert_eq!(stats.connects, 1, "exactly one dialed link");
}
