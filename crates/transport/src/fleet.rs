//! [`SocketFleet`]: the kvstore protocol over real TCP sockets.
//!
//! The third driver. Layout matches the simulator's `Cluster` and the
//! threaded `RuntimeFleet` — node ids `0..servers` are replica servers,
//! `servers..servers + clients` are closed-loop clients — but every
//! inter-node message is *actually serialised*
//! ([`Msg::encode_transport`]), framed ([`crate::frame`]) and sent
//! through a loopback TCP connection managed by the
//! [`Fabric`](crate::fabric::Fabric). Each node runs its own event-loop
//! thread and dispatches the same generic
//! `on_start`/`on_message`/`on_timer` protocol code the other two
//! drivers host, through the runtime's [`RtCtx`] adapter; self-sends
//! are delivered locally (a node does not dial itself), every other
//! message takes the wire.
//!
//! `StoreConfig::header_bytes` is forced to the frame codec's real
//! [`HEADER_BYTES`](crate::frame::HEADER_BYTES), so the per-class wire
//! ledgers charge exactly the bytes written to the sockets — the
//! accounting the paper's evaluation models is measured here, not
//! assumed. The conformance suite asserts the identity to the byte.
//!
//! Post-run, the fleet implements [`kvstore::harness::FleetHarness`],
//! so the same `audit_fleet` stack (one view, AAE equivalence, residual
//! audit, oracle-clean converge) that gates the other drivers gates
//! this one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use dvv::mechanisms::WireMechanism;
use dvv::{ClientId, ReplicaId};
use kvstore::client::ClientNode;
use kvstore::cluster::StoreProc;
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::FleetHarness;
use kvstore::messages::Msg;
use kvstore::node::StoreNode;
use kvstore::value::StampedValue;
use ring::RingView;
use runtime::watchdog::{self, Progress, StallReport};
use runtime::{NodeSnapshot, RtCtx, RunReport, TimerWheel};
use simnet::{NodeId, SimRng, SimTime, TimerId};

use crate::fabric::{Fabric, FabricStats, InPacket};
use crate::frame;

/// Clean AAE rounds every server must initiate, after the last observed
/// repair activity, before the quiesce may end early (same rule as the
/// threaded runtime).
const SETTLE_CLEAN_ROUNDS: u64 = 8;

/// A scheduled connection fault: at `after` (wall clock from run
/// start), every live TCP connection touching `node` is severed. The
/// frames in flight are wire loss; dialers reconnect with backoff and
/// anti-entropy repairs whatever the outage cost — the run must still
/// audit clean.
#[derive(Clone, Copy, Debug)]
pub struct ConnKill {
    /// Wall clock from run start to the cut.
    pub after: StdDuration,
    /// Node whose connections are severed (both directions).
    pub node: usize,
}

/// Complete configuration of a [`SocketFleet`] run.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Number of replica servers (one event-loop thread each).
    pub servers: usize,
    /// Number of closed-loop client sessions (one thread each).
    pub clients: usize,
    /// Read-modify-write cycles per client.
    pub cycles_per_client: u32,
    /// Store protocol parameters. `header_bytes` is overridden with the
    /// frame codec's real header size at build time.
    pub store: StoreConfig,
    /// Client session parameters (`cycles` overridden by
    /// `cycles_per_client`).
    pub client: ClientConfig,
    /// Inbox slots per node; a full inbox drops (wire loss).
    pub inbox_capacity: usize,
    /// Outbound frames queued per link; a full queue drops (wire loss).
    pub queue_capacity: usize,
    /// Frame body cap; an announced length beyond this kills the
    /// connection.
    pub max_frame: usize,
    /// The watchdog declares a stall after this long without a client
    /// op completing.
    pub stall_budget: StdDuration,
    /// Watchdog polling interval.
    pub watchdog_poll: StdDuration,
    /// Hard wall-clock stop for the whole run.
    pub run_budget: StdDuration,
    /// Settling budget after the last client finishes (exits early once
    /// repairs sit still for [`settle_window`](Self::settle_window)).
    pub quiesce: StdDuration,
    /// How long the repair counters must sit still before the quiesce
    /// is settled.
    pub settle_window: StdDuration,
    /// Scheduled connection faults (see [`ConnKill`]).
    pub conn_kills: Vec<ConnKill>,
    /// Shared cluster secret keying the hello challenge every inbound
    /// connection must answer (see [`crate::fabric::hello_body`]). All
    /// nodes of one fleet must agree on it; a dialer with the wrong
    /// secret is terminally rejected at the handshake.
    pub cluster_secret: u64,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            servers: 3,
            clients: 8,
            cycles_per_client: 20,
            store: StoreConfig::default(),
            client: ClientConfig::default(),
            inbox_capacity: 1024,
            queue_capacity: 256,
            max_frame: frame::DEFAULT_MAX_FRAME,
            stall_budget: StdDuration::from_secs(10),
            watchdog_poll: StdDuration::from_millis(25),
            run_budget: StdDuration::from_secs(120),
            quiesce: StdDuration::from_millis(500),
            settle_window: StdDuration::from_millis(400),
            conn_kills: Vec::new(),
            cluster_secret: 0xd077_edc1_0057_e2ab, // any agreed-upon value
        }
    }
}

/// One node hosted on its own event-loop thread.
#[derive(Debug)]
struct Hosted<M: WireMechanism<StampedValue>> {
    id: NodeId,
    proc_: StoreProc<M>,
    rng: SimRng,
    wheel: TimerWheel<TimerId>,
    next_timer: u64,
    was_done: bool,
    last_ops: u64,
}

/// An event to dispatch into a hosted node.
enum Ev<M: WireMechanism<StampedValue>> {
    Start,
    Message { from: NodeId, msg: Msg<M> },
    Timer(TimerId),
}

/// The socket-transport fleet. Build with [`SocketFleet::new`], run
/// with [`SocketFleet::run`], audit through
/// [`kvstore::harness::FleetHarness`] like any other driver.
#[derive(Debug)]
pub struct SocketFleet<M: WireMechanism<StampedValue>> {
    config: SocketConfig,
    mech: M,
    view: RingView<ReplicaId>,
    nodes: Vec<Hosted<M>>,
    snapshots: Arc<Vec<Mutex<NodeSnapshot>>>,
    progress: Arc<Progress>,
    net_root: SimRng,
    fabric_stats: Option<FabricStats>,
}

impl<M> SocketFleet<M>
where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    /// Builds a fleet. Protocol randomness derives from `seed` through
    /// the same `fork_indexed("node", i)` scheme the other drivers use;
    /// `store.header_bytes` is replaced with the frame codec's real
    /// header size so the wire ledgers account actual socket bytes.
    pub fn new(seed: u64, mech: M, mut config: SocketConfig) -> Self {
        assert!(config.servers > 0, "need at least one server");
        config.store.header_bytes = frame::HEADER_BYTES;
        config.store.validate();
        assert!(
            config.store.n <= config.servers,
            "replication factor exceeds server count"
        );
        for k in &config.conn_kills {
            assert!(
                k.node < config.servers + config.clients,
                "connection kill on unknown node {}",
                k.node
            );
        }
        let root = SimRng::new(seed);
        let replicas: Vec<ReplicaId> = (0..config.servers as u32).map(ReplicaId).collect();
        let view = RingView::from_members(replicas.iter().copied());
        let total = config.servers + config.clients;

        let mut nodes = Vec::with_capacity(total);
        for r in &replicas {
            nodes.push(Hosted {
                id: NodeId(r.0),
                proc_: StoreProc::Server(StoreNode::new(
                    *r,
                    mech.clone(),
                    config.store,
                    view.clone(),
                )),
                rng: root.fork_indexed("node", r.0 as u64),
                wheel: TimerWheel::new(),
                next_timer: 0,
                was_done: false,
                last_ops: 0,
            });
        }
        for j in 0..config.clients {
            let node_index = (config.servers + j) as u32;
            let mut client_cfg = config.client.clone();
            client_cfg.cycles = config.cycles_per_client;
            nodes.push(Hosted {
                id: NodeId(node_index),
                proc_: StoreProc::Client(ClientNode::new(
                    ClientId(j as u64),
                    node_index,
                    mech.clone(),
                    client_cfg,
                    config.store.n,
                    config.store.header_bytes,
                    view.clone(),
                    config.store.vnodes,
                )),
                rng: root.fork_indexed("node", node_index as u64),
                wheel: TimerWheel::new(),
                next_timer: 0,
                was_done: false,
                last_ops: 0,
            });
        }
        SocketFleet {
            config,
            mech,
            view,
            nodes,
            snapshots: Arc::new(
                (0..total)
                    .map(|_| Mutex::new(NodeSnapshot::default()))
                    .collect(),
            ),
            progress: Arc::new(Progress::new(total)),
            net_root: root.fork("socknet"),
            fabric_stats: None,
        }
    }

    /// The fabric's byte/frame ledger from the last completed run.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has not run yet.
    pub fn fabric_report(&self) -> FabricStats {
        self.fabric_stats.expect("fabric report requires a run")
    }

    /// Runs the fleet to completion over real sockets: binds one
    /// loopback listener per node, spawns per-node event threads plus
    /// the stall watchdog, waits for every client, quiesces until the
    /// repair ledger sits still, then tears the fabric down and
    /// reassembles the nodes for inspection.
    ///
    /// Returns `Err` with per-node diagnostics if the watchdog declares
    /// a stall or the run budget expires first.
    pub fn run(&mut self) -> Result<RunReport, StallReport> {
        let cfg = self.config.clone();
        let total = cfg.servers + cfg.clients;
        let shutdown = Arc::new(AtomicBool::new(false));
        let origin = Instant::now();

        // One bounded inbox per node; the fabric's readers feed them.
        let mut inbox_txs: Vec<SyncSender<InPacket<M>>> = Vec::with_capacity(total);
        let mut inbox_rxs: Vec<Option<Receiver<InPacket<M>>>> = Vec::with_capacity(total);
        for _ in 0..total {
            let (tx, rx) = mpsc::sync_channel(cfg.inbox_capacity);
            inbox_txs.push(tx);
            inbox_rxs.push(Some(rx));
        }

        let fabric = Fabric::start(
            self.mech.clone(),
            total,
            inbox_txs,
            Arc::clone(&self.progress),
            Arc::clone(&shutdown),
            self.net_root.fork("fabric"),
            cfg.queue_capacity,
            cfg.max_frame,
            cfg.cluster_secret,
        )
        .expect("bind loopback listeners");

        // Node event-loop threads.
        let nodes = std::mem::take(&mut self.nodes);
        let mut handles: Vec<JoinHandle<Hosted<M>>> = Vec::new();
        for h in nodes {
            let rx = inbox_rxs[h.id.0 as usize]
                .take()
                .expect("receiver taken once");
            let f = Arc::clone(&fabric);
            let snapshots = Arc::clone(&self.snapshots);
            let progress = Arc::clone(&self.progress);
            let sd = Arc::clone(&shutdown);
            handles.push(thread::spawn(move || {
                node_loop(h, rx, f, progress, snapshots, sd, origin)
            }));
        }

        // Stall watchdog.
        let report_slot: Arc<Mutex<Option<StallReport>>> = Arc::new(Mutex::new(None));
        let wd_handle = {
            let progress = Arc::clone(&self.progress);
            let wd_shutdown = Arc::clone(&shutdown);
            let slot = Arc::clone(&report_slot);
            let clients = cfg.clients as u64;
            let budget = cfg.stall_budget;
            let poll = cfg.watchdog_poll;
            thread::spawn(move || {
                watchdog::supervise(progress, wd_shutdown, slot, origin, clients, budget, poll)
            })
        };

        // Wait for completion, a stall, or the run budget, cutting
        // connections as the kill schedule comes due.
        let started = origin;
        let mut kills_fired = vec![false; cfg.conn_kills.len()];
        let mut elapsed = None;
        loop {
            drive_conn_kills(&cfg.conn_kills, &mut kills_fired, started, &fabric);
            if self.progress.stalled.load(Ordering::Relaxed) {
                break;
            }
            if self.progress.done_clients.load(Ordering::Relaxed) >= cfg.clients as u64 {
                elapsed = Some(started.elapsed());
                break;
            }
            if started.elapsed() > cfg.run_budget {
                break;
            }
            thread::sleep(StdDuration::from_millis(2));
        }

        let stalled = self.progress.stalled.load(Ordering::Relaxed);
        if elapsed.is_some() {
            // Quiesce: let reconnects, repairs and AAE land; exit early
            // once the repair ledger has been still for the window and
            // every server has initiated clean AAE rounds since.
            let settle_started = Instant::now();
            let (mut last_sig, mut rounds_floor) = self.settle_probe();
            let mut still_since = Instant::now();
            while settle_started.elapsed() < cfg.quiesce && started.elapsed() <= cfg.run_budget {
                thread::sleep(StdDuration::from_millis(50));
                drive_conn_kills(&cfg.conn_kills, &mut kills_fired, started, &fabric);
                let (sig, rounds) = self.settle_probe();
                if sig != last_sig {
                    last_sig = sig;
                    rounds_floor = rounds;
                    still_since = Instant::now();
                } else if kills_fired.iter().all(|f| *f)
                    && still_since.elapsed() >= cfg.settle_window
                    && rounds >= rounds_floor + SETTLE_CLEAN_ROUNDS
                {
                    break;
                }
            }
        }
        shutdown.store(true, Ordering::Relaxed);

        let mut returned: Vec<Hosted<M>> = Vec::with_capacity(total);
        for h in handles {
            returned.push(h.join().expect("node thread panicked"));
        }
        returned.sort_by_key(|h| h.id.0);
        self.nodes = returned;
        fabric.stop();
        self.fabric_stats = Some(fabric.stats());
        wd_handle.join().expect("watchdog thread panicked");

        if stalled {
            let report = report_slot
                .lock()
                .expect("watchdog slot")
                .take()
                .expect("stall implies report");
            return Err(report);
        }
        match elapsed {
            Some(elapsed) => Ok(RunReport {
                elapsed,
                ops_ok: self.progress.ops_ok.load(Ordering::Relaxed),
                all_done: true,
            }),
            None => Err(watchdog::diagnose(&self.progress, origin, cfg.run_budget)),
        }
    }

    /// Fold of the live repair counters plus the minimum per-server
    /// count of initiated AAE rounds (see the threaded runtime's settle
    /// loop, which this mirrors).
    fn settle_probe(&self) -> ((u64, u64, u64, u64), u64) {
        let mut sig = (0u64, 0u64, 0u64, 0u64);
        let mut min_rounds = u64::MAX;
        for i in 0..self.config.servers {
            let snap = self.snapshots[i].lock().expect("snapshot lock");
            if let Some(s) = snap.server {
                sig.0 += s.aae_divergent;
                sig.1 += s.read_repairs;
                sig.2 += s.handoffs;
                sig.3 += s.transfers_in + s.transfers_out;
                min_rounds = min_rounds.min(s.aae_rounds);
            }
        }
        (
            sig,
            if min_rounds == u64::MAX {
                0
            } else {
                min_rounds
            },
        )
    }

    // ---- post-run inspection ----

    /// Read access to server `i`'s store node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a server index.
    pub fn server(&self, i: usize) -> &StoreNode<M> {
        assert!(i < self.config.servers, "node {i} is not a server");
        match &self.nodes[i].proc_ {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => unreachable!("layout: servers first"),
        }
    }

    /// Mutable access to server `i`'s store node (harness convergence).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a server index.
    pub fn server_mut(&mut self, i: usize) -> &mut StoreNode<M> {
        assert!(i < self.config.servers, "node {i} is not a server");
        match &mut self.nodes[i].proc_ {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => unreachable!("layout: servers first"),
        }
    }

    /// Read access to client `j`'s session node.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not a client index.
    pub fn client(&self, j: usize) -> &ClientNode<M> {
        assert!(j < self.config.clients, "client {j} out of range");
        match &self.nodes[self.config.servers + j].proc_ {
            StoreProc::Client(c) => c,
            StoreProc::Server(_) => unreachable!("layout: clients after servers"),
        }
    }

    /// Number of replica servers.
    pub fn server_count(&self) -> usize {
        self.config.servers
    }
}

/// The measurement-and-audit surface comes from [`FleetHarness`]'s
/// provided methods — the same implementation the simulator's `Cluster`
/// and the threaded `RuntimeFleet` share.
impl<M> FleetHarness<M> for SocketFleet<M>
where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    fn mechanism(&self) -> &M {
        &self.mech
    }

    fn member_servers(&self) -> Vec<usize> {
        (0..self.config.servers).collect()
    }

    fn client_count(&self) -> usize {
        self.config.clients
    }

    fn server_ref(&self, i: usize) -> &StoreNode<M> {
        self.server(i)
    }

    fn server_mut_ref(&mut self, i: usize) -> &mut StoreNode<M> {
        self.server_mut(i)
    }

    fn client_ref(&self, j: usize) -> &ClientNode<M> {
        self.client(j)
    }

    fn audit_view(&self) -> &RingView<ReplicaId> {
        &self.view
    }
}

/// Fires every due [`ConnKill`] exactly once.
fn drive_conn_kills<M>(
    kills: &[ConnKill],
    fired: &mut [bool],
    started: Instant,
    fabric: &Arc<Fabric<M>>,
) where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    let elapsed = started.elapsed();
    for (k, done) in kills.iter().zip(fired.iter_mut()) {
        if !*done && elapsed >= k.after {
            fabric.kill_node_connections(k.node);
            *done = true;
        }
    }
}

/// One node's event loop: timers from its wheel, messages from its
/// inbox (socket readers) and its local self-send queue, dispatched
/// through the same [`RtCtx`] adapter the threaded runtime uses.
fn node_loop<M>(
    mut h: Hosted<M>,
    rx: Receiver<InPacket<M>>,
    fabric: Arc<Fabric<M>>,
    progress: Arc<Progress>,
    snapshots: Arc<Vec<Mutex<NodeSnapshot>>>,
    shutdown: Arc<AtomicBool>,
    origin: Instant,
) -> Hosted<M>
where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    let mut local: VecDeque<(NodeId, Msg<M>)> = VecDeque::new();
    dispatch(
        &mut h,
        Ev::Start,
        &fabric,
        &mut local,
        &progress,
        &snapshots,
        origin,
    );
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return h;
        }

        // Fire everything due, repeatedly: a handler may arm another
        // timer already due, or self-send.
        let mut worked = true;
        while worked {
            worked = false;
            let now_us = origin.elapsed().as_micros() as u64;
            while let Some(t) = h.wheel.pop_due(now_us) {
                dispatch(
                    &mut h,
                    Ev::Timer(t),
                    &fabric,
                    &mut local,
                    &progress,
                    &snapshots,
                    origin,
                );
                worked = true;
            }
            while let Some((from, msg)) = local.pop_front() {
                dispatch(
                    &mut h,
                    Ev::Message { from, msg },
                    &fabric,
                    &mut local,
                    &progress,
                    &snapshots,
                    origin,
                );
                worked = true;
            }
        }

        // Sleep until the next timer or the next packet.
        let now_us = origin.elapsed().as_micros() as u64;
        let wait = match h.wheel.next_due() {
            Some(d) if d <= now_us => StdDuration::ZERO,
            Some(d) => StdDuration::from_micros((d - now_us).min(20_000)),
            None => StdDuration::from_millis(20),
        };
        let first = if wait.is_zero() {
            rx.try_recv().ok()
        } else {
            match rx.recv_timeout(wait) {
                Ok(p) => Some(p),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return h,
            }
        };
        if let Some((from, msg)) = first {
            progress.inbox_depth[h.id.0 as usize].fetch_sub(1, Ordering::Relaxed);
            dispatch(
                &mut h,
                Ev::Message { from, msg },
                &fabric,
                &mut local,
                &progress,
                &snapshots,
                origin,
            );
            while let Ok((from, msg)) = rx.try_recv() {
                progress.inbox_depth[h.id.0 as usize].fetch_sub(1, Ordering::Relaxed);
                dispatch(
                    &mut h,
                    Ev::Message { from, msg },
                    &fabric,
                    &mut local,
                    &progress,
                    &snapshots,
                    origin,
                );
            }
        }
    }
}

/// Runs one event through a hosted node and applies its effects:
/// timers to the wheel, self-sends to the local queue, everything else
/// serialised onto the fabric. Mirrors the threaded runtime's dispatch;
/// the only difference is where the outbox goes.
fn dispatch<M>(
    h: &mut Hosted<M>,
    ev: Ev<M>,
    fabric: &Arc<Fabric<M>>,
    local: &mut VecDeque<(NodeId, Msg<M>)>,
    progress: &Arc<Progress>,
    snapshots: &Arc<Vec<Mutex<NodeSnapshot>>>,
    origin: Instant,
) where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    let now = SimTime::from_micros(origin.elapsed().as_micros() as u64);
    let (mech, header_bytes) = match &h.proc_ {
        StoreProc::Server(s) => (s.mech().clone(), s.header_bytes()),
        StoreProc::Client(c) => (c.mech().clone(), c.header_bytes()),
    };
    debug_assert_eq!(header_bytes, frame::HEADER_BYTES);
    let mut ctx = RtCtx::new(
        h.id,
        now,
        &mut h.rng,
        mech.clone(),
        header_bytes,
        &mut h.next_timer,
    );
    match (&mut h.proc_, ev) {
        (StoreProc::Server(s), Ev::Start) => s.on_start(&mut ctx),
        (StoreProc::Server(s), Ev::Message { from, msg }) => s.on_message(&mut ctx, from, msg),
        (StoreProc::Server(s), Ev::Timer(t)) => s.on_timer(&mut ctx, t),
        (StoreProc::Client(c), Ev::Start) => c.on_start(&mut ctx),
        (StoreProc::Client(c), Ev::Message { from, msg }) => c.on_message(&mut ctx, from, msg),
        (StoreProc::Client(c), Ev::Timer(t)) => c.on_timer(&mut ctx, t),
    }
    let RtCtx {
        outbox,
        timer_sets,
        timer_cancels,
        ..
    } = ctx;
    for (due, t) in timer_sets {
        h.wheel.schedule(due, t);
    }
    for t in timer_cancels {
        h.wheel.cancel(t);
    }
    for (to, msg) in outbox {
        if to == h.id {
            // Local delivery — but the charged bytes still balance the
            // fabric's ledger identity.
            fabric.note_self(msg.wire_size(&mech) + frame::HEADER_BYTES);
            local.push_back((h.id, msg));
        } else {
            let body = msg.encode_transport(&mech);
            fabric.send_bytes(h.id.0 as usize, to.0 as usize, body);
        }
    }

    // Progress + snapshot bookkeeping (same shape as the runtime's).
    let id = h.id.0 as usize;
    progress.events[id].fetch_add(1, Ordering::Relaxed);
    progress.last_event_micros[id].store(now.as_micros().max(1), Ordering::Relaxed);
    let mut snap = snapshots[id].lock().expect("snapshot lock");
    snap.events += 1;
    match &h.proc_ {
        StoreProc::Server(s) => {
            snap.wire = s.wire_stats();
            snap.server = Some(s.stats());
        }
        StoreProc::Client(c) => {
            snap.wire = c.wire_stats();
            let stats = c.stats();
            let ops = stats.get_latency.count() + stats.put_latency.count();
            if ops > h.last_ops {
                progress
                    .ops_ok
                    .fetch_add(ops - h.last_ops, Ordering::Relaxed);
                h.last_ops = ops;
            }
            snap.ops_ok = ops;
            snap.cycles_done = c.cycles_done();
            snap.done = c.is_done();
            if c.is_done() && !h.was_done {
                h.was_done = true;
                progress.done_clients.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
