//! The socket fabric: listeners, reconnecting per-peer links, and the
//! fleet-wide byte ledger.
//!
//! Every node owns a loopback TCP listener; messages between distinct
//! nodes travel as [`frame`](crate::frame)-encoded
//! `Msg::encode_transport` bodies over per-`(sender, receiver)`
//! connections dialed lazily on first send. Each link has:
//!
//! * a bounded outbound queue — a full queue drops the frame, exactly
//!   the threaded runtime's full-inbox wire-loss semantics, so a slow
//!   or dead peer can never deadlock a sender;
//! * a writer thread that dials, introduces itself with an
//!   *authenticated* hello frame — its node id plus a keyed FNV-1a tag
//!   over the fleet's shared cluster secret ([`hello_body`]) — and
//!   reconnects with jittered exponential backoff whenever the
//!   connection breaks (the frames lost in between are wire loss the
//!   protocol's retries and anti-entropy absorb). The accept side
//!   verifies the tag in constant time and terminally rejects the
//!   connection on any mismatch, so a stray process dialing a
//!   listener's port cannot inject frames attributed to a cluster
//!   member.
//!
//! Inbound, an accept thread per listener spawns a reader per
//! connection; a malformed frame (torn, oversized, bad checksum) or an
//! undecodable body kills that connection — a stream decoder cannot
//! resync after corruption — and the dialer's backoff takes it from
//! there. A full node inbox drops the message, matching the runtime.
//!
//! The fabric keeps an atomic ledger of every byte it handles, split by
//! fate (written / queued / dropped / self-delivered / hello), so the
//! conformance suite can assert *charge parity*: the bytes the nodes'
//! wire ledgers charged equal the bytes the fabric accepted, to the
//! byte — the accounting the simulator models is the accounting the
//! socket driver measures.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration as StdDuration;

use dvv::mechanisms::WireMechanism;
use kvstore::messages::Msg;
use kvstore::value::StampedValue;
use runtime::Progress;
use simnet::{NodeId, SimRng};
use storage::fnv1a64;

use crate::frame::{self, HEADER_BYTES};

/// Initial reconnect backoff.
const BACKOFF_BASE_MS: u64 = 1;
/// Backoff cap (before jitter).
const BACKOFF_CAP_MS: u64 = 128;
/// Writer queue poll interval while idle (bounds shutdown latency).
const WRITER_POLL: StdDuration = StdDuration::from_millis(25);

/// Bytes in an authenticated hello body: 4-byte node id + 8-byte tag.
const HELLO_LEN: usize = 12;

/// The authenticated hello body for `node` under `secret`: the node id
/// plus [`hello_tag`] over it. Public so tests (and any future
/// out-of-process peer) can speak the handshake.
#[must_use]
pub fn hello_body(node: u32, secret: u64) -> [u8; HELLO_LEN] {
    let mut body = [0u8; HELLO_LEN];
    body[..4].copy_from_slice(&node.to_le_bytes());
    body[4..].copy_from_slice(&hello_tag(node, secret).to_le_bytes());
    body
}

/// The keyed challenge tag: FNV-1a-64 over `secret || node`. FNV is not
/// a MAC against a resourceful adversary; the threat here is accidental
/// cross-talk — a stray process, a mis-configured fleet, a port reused
/// across runs — dialing a listener and having its frames attributed to
/// a cluster member. Matching the storage log's hash keeps the
/// dependency surface at zero.
fn hello_tag(node: u32, secret: u64) -> u64 {
    let mut keyed = [0u8; 12];
    keyed[..8].copy_from_slice(&secret.to_le_bytes());
    keyed[8..].copy_from_slice(&node.to_le_bytes());
    fnv1a64(&keyed)
}

/// Constant-time tag comparison: folds the XOR of every byte pair so
/// the time taken is independent of which byte (if any) differs.
fn tags_match(a: u64, b: u64) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.to_le_bytes().into_iter().zip(b.to_le_bytes()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A message delivered into a node's inbox: the sending node plus the
/// decoded message.
pub type InPacket<M> = (NodeId, Msg<M>);

/// Snapshot of the fabric's byte/frame ledger.
///
/// Invariant (asserted by the conformance suite): every byte a node's
/// `ctx.send` charged is accounted exactly once as `enqueued`,
/// `dropped` or `self_delivered`, so
/// `enqueued_bytes + dropped_bytes + self_bytes` equals the fleet's
/// summed wire ledgers. `written` trails `enqueued` only by frames
/// still queued (or lost to a broken connection) at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames accepted into an outbound queue.
    pub enqueued_frames: u64,
    /// Bytes (header included) accepted into an outbound queue.
    pub enqueued_bytes: u64,
    /// Frames actually written to a socket.
    pub written_frames: u64,
    /// Bytes (header included) actually written to a socket.
    pub written_bytes: u64,
    /// Frames dropped at enqueue: queue full or link torn down.
    pub dropped_frames: u64,
    /// Bytes dropped at enqueue.
    pub dropped_bytes: u64,
    /// Frames lost after dequeue to a failed socket write.
    pub io_lost_frames: u64,
    /// Self-sends delivered locally, bypassing the sockets.
    pub self_frames: u64,
    /// Bytes (header included) self-delivered locally.
    pub self_bytes: u64,
    /// Bytes spent on hello frames (connection setup, not message
    /// traffic — kept out of the data ledger on purpose).
    pub hello_bytes: u64,
    /// Successful outbound connection establishments.
    pub connects: u64,
    /// Connects beyond each link's first — i.e. recoveries after a
    /// broken connection.
    pub reconnects: u64,
    /// Frames received and decoded.
    pub recv_frames: u64,
    /// Bytes (header included) received in decoded frames.
    pub recv_bytes: u64,
    /// Connections dropped on a frame-layer error (torn / oversized /
    /// bad checksum).
    pub frame_errors: u64,
    /// Connections dropped on an undecodable message body.
    pub decode_errors: u64,
    /// Connections terminally rejected at the hello: malformed body,
    /// out-of-range node id, or a challenge tag that does not match the
    /// cluster secret.
    pub hello_rejects: u64,
    /// Decoded messages dropped because the destination inbox was full.
    pub inbox_drops: u64,
}

#[derive(Debug, Default)]
struct Counters {
    enqueued_frames: AtomicU64,
    enqueued_bytes: AtomicU64,
    written_frames: AtomicU64,
    written_bytes: AtomicU64,
    dropped_frames: AtomicU64,
    dropped_bytes: AtomicU64,
    io_lost_frames: AtomicU64,
    self_frames: AtomicU64,
    self_bytes: AtomicU64,
    hello_bytes: AtomicU64,
    connects: AtomicU64,
    reconnects: AtomicU64,
    recv_frames: AtomicU64,
    recv_bytes: AtomicU64,
    frame_errors: AtomicU64,
    decode_errors: AtomicU64,
    hello_rejects: AtomicU64,
    inbox_drops: AtomicU64,
}

/// Outbound link registry: `(from, to)` → that link's frame queue.
type Links = HashMap<(usize, usize), SyncSender<Vec<u8>>>;

/// Live socket registry entry: enough to sever the connection from
/// outside (fault injection, shutdown).
struct Conn {
    /// Either endpoint's node index (dialer side knows both; accept
    /// side knows the peer only after the hello).
    nodes: (usize, usize),
    stream: TcpStream,
}

/// The shared socket layer of a [`SocketFleet`](crate::fleet::SocketFleet).
pub struct Fabric<M: WireMechanism<StampedValue>> {
    mech: M,
    addrs: Vec<SocketAddr>,
    inboxes: Vec<SyncSender<InPacket<M>>>,
    progress: Arc<Progress>,
    shutdown: Arc<AtomicBool>,
    counters: Counters,
    links: Mutex<Links>,
    conns: Mutex<HashMap<u64, Conn>>,
    next_conn: AtomicU64,
    threads: Mutex<Vec<JoinHandle<()>>>,
    rng_root: SimRng,
    queue_capacity: usize,
    max_frame: usize,
    secret: u64,
}

impl<M> std::fmt::Debug for Fabric<M>
where
    M: WireMechanism<StampedValue>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.addrs.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<M: WireMechanism<StampedValue>> Fabric<M> {
    /// The listen address of node `i` (loopback, ephemeral port).
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Snapshot of the byte/frame ledger.
    pub fn stats(&self) -> FabricStats {
        let c = &self.counters;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        FabricStats {
            enqueued_frames: ld(&c.enqueued_frames),
            enqueued_bytes: ld(&c.enqueued_bytes),
            written_frames: ld(&c.written_frames),
            written_bytes: ld(&c.written_bytes),
            dropped_frames: ld(&c.dropped_frames),
            dropped_bytes: ld(&c.dropped_bytes),
            io_lost_frames: ld(&c.io_lost_frames),
            self_frames: ld(&c.self_frames),
            self_bytes: ld(&c.self_bytes),
            hello_bytes: ld(&c.hello_bytes),
            connects: ld(&c.connects),
            reconnects: ld(&c.reconnects),
            recv_frames: ld(&c.recv_frames),
            recv_bytes: ld(&c.recv_bytes),
            frame_errors: ld(&c.frame_errors),
            decode_errors: ld(&c.decode_errors),
            hello_rejects: ld(&c.hello_rejects),
            inbox_drops: ld(&c.inbox_drops),
        }
    }
}

impl<M> Fabric<M>
where
    M: WireMechanism<StampedValue> + Send + Sync + 'static,
    M::State: Send,
    M::Context: Send,
{
    /// Binds one loopback listener per node, spawns the accept threads,
    /// and returns the shared fabric. `inboxes[i]` receives decoded
    /// messages addressed to node `i`; `rng_root` seeds the per-link
    /// backoff jitter streams; `secret` keys the hello challenge every
    /// inbound connection must pass.
    #[allow(clippy::too_many_arguments)] // the fleet's one construction site
    pub fn start(
        mech: M,
        nodes: usize,
        inboxes: Vec<SyncSender<InPacket<M>>>,
        progress: Arc<Progress>,
        shutdown: Arc<AtomicBool>,
        rng_root: SimRng,
        queue_capacity: usize,
        max_frame: usize,
        secret: u64,
    ) -> std::io::Result<Arc<Self>> {
        assert_eq!(inboxes.len(), nodes, "one inbox per node");
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let fabric = Arc::new(Fabric {
            mech,
            addrs,
            inboxes,
            progress,
            shutdown,
            counters: Counters::default(),
            links: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
            rng_root,
            queue_capacity,
            max_frame,
            secret,
        });
        for (node, listener) in listeners.into_iter().enumerate() {
            let f = Arc::clone(&fabric);
            let h = thread::spawn(move || f.accept_loop(node, listener));
            fabric.threads.lock().expect("threads lock").push(h);
        }
        Ok(fabric)
    }

    /// Queues an encoded message body for transmission `from → to`,
    /// dialing the link on first use. A full (or torn-down) queue drops
    /// the frame — wire loss, charged to the ledger as `dropped`.
    pub fn send_bytes(self: &Arc<Self>, from: usize, to: usize, body: Vec<u8>) {
        let bytes = (body.len() + HEADER_BYTES) as u64;
        let tx = {
            let mut links = self.links.lock().expect("links lock");
            if self.shutdown.load(Ordering::Relaxed) {
                self.counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .dropped_bytes
                    .fetch_add(bytes, Ordering::Relaxed);
                return;
            }
            links
                .entry((from, to))
                .or_insert_with(|| self.spawn_writer(from, to))
                .clone()
        };
        match tx.try_send(body) {
            Ok(()) => {
                self.counters
                    .enqueued_frames
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .enqueued_bytes
                    .fetch_add(bytes, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped_frames.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .dropped_bytes
                    .fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Records a self-send delivered locally (self-traffic never
    /// touches a socket, but its charged bytes must still balance the
    /// ledger identity).
    pub fn note_self(&self, wire_bytes: usize) {
        self.counters.self_frames.fetch_add(1, Ordering::Relaxed);
        self.counters
            .self_bytes
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
    }

    /// Severs every live connection touching `node` (both directions).
    /// Readers see a torn stream and exit; dialers reconnect with
    /// backoff. Returns how many connections were killed.
    pub fn kill_node_connections(&self, node: usize) -> usize {
        let conns = self.conns.lock().expect("conns lock");
        let mut killed = 0;
        for c in conns.values() {
            if c.nodes.0 == node || c.nodes.1 == node {
                let _ = c.stream.shutdown(Shutdown::Both);
                killed += 1;
            }
        }
        killed
    }

    /// Tears the fabric down: requires the shared shutdown flag to be
    /// set, severs every connection, unblocks the accept loops, drops
    /// the outbound queues and joins every fabric thread.
    pub fn stop(&self) {
        assert!(
            self.shutdown.load(Ordering::Relaxed),
            "set the shared shutdown flag before Fabric::stop"
        );
        // Sever live connections so blocked readers/writers error out.
        {
            let conns = self.conns.lock().expect("conns lock");
            for c in conns.values() {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock each accept loop with a throwaway connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect(*addr);
        }
        // Drop the queue senders so writer threads see Disconnected.
        self.links.lock().expect("links lock").clear();
        // Threads may still be spawning readers while we join; drain
        // until the registry stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.threads.lock().expect("threads lock"));
            if handles.is_empty() {
                return;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }

    fn register_conn(&self, nodes: (usize, usize), stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let token = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().expect("conns lock").insert(
            token,
            Conn {
                nodes,
                stream: clone,
            },
        );
        Some(token)
    }

    fn unregister_conn(&self, token: Option<u64>) {
        if let Some(t) = token {
            self.conns.lock().expect("conns lock").remove(&t);
        }
    }

    /// Spawns the writer thread for link `from → to` and returns its
    /// queue sender.
    fn spawn_writer(self: &Arc<Self>, from: usize, to: usize) -> SyncSender<Vec<u8>> {
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(self.queue_capacity);
        let f = Arc::clone(self);
        let n = self.addrs.len() as u64;
        let rng = self
            .rng_root
            .fork_indexed("link", from as u64 * n + to as u64);
        let h = thread::spawn(move || f.writer_loop(from, to, rx, rng));
        self.threads.lock().expect("threads lock").push(h);
        tx
    }

    /// Dial → hello → drain queue → (on error) reconnect with jittered
    /// exponential backoff. Frames dequeued onto a dying connection are
    /// lost (`io_lost`); frames that cannot even be enqueued were
    /// already dropped at the sender.
    fn writer_loop(&self, from: usize, to: usize, rx: Receiver<Vec<u8>>, mut rng: SimRng) {
        let addr = self.addrs[to];
        let mut backoff_ms = BACKOFF_BASE_MS;
        let mut connected_before = false;
        'dial: loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    let jitter = rng.range_u64(0, backoff_ms + 1);
                    thread::sleep(StdDuration::from_millis(backoff_ms + jitter));
                    backoff_ms = (backoff_ms * 2).min(BACKOFF_CAP_MS);
                    continue 'dial;
                }
            };
            let _ = stream.set_nodelay(true);
            let token = self.register_conn((from, to), &stream);
            let mut w = BufWriter::new(stream);
            // Hello: introduce ourselves — id plus keyed tag — so the
            // reader can both attribute and *authenticate* every
            // subsequent frame on this connection.
            let hello = hello_body(from as u32, self.secret);
            if frame::write_frame(&mut w, &hello).is_err() || std::io::Write::flush(&mut w).is_err()
            {
                self.unregister_conn(token);
                continue 'dial;
            }
            self.counters
                .hello_bytes
                .fetch_add((HEADER_BYTES + hello.len()) as u64, Ordering::Relaxed);
            self.counters.connects.fetch_add(1, Ordering::Relaxed);
            if connected_before {
                self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            connected_before = true;
            backoff_ms = BACKOFF_BASE_MS;

            loop {
                let body = match rx.recv_timeout(WRITER_POLL) {
                    Ok(b) => b,
                    Err(RecvTimeoutError::Timeout) => {
                        if self.shutdown.load(Ordering::Relaxed) {
                            self.unregister_conn(token);
                            return;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.unregister_conn(token);
                        return;
                    }
                };
                if self.write_one(&mut w, body).is_err() {
                    self.unregister_conn(token);
                    continue 'dial;
                }
                // Batch whatever else is queued, then flush once.
                let mut ok = true;
                while let Ok(b) = rx.try_recv() {
                    if self.write_one(&mut w, b).is_err() {
                        ok = false;
                        break;
                    }
                }
                if !ok || std::io::Write::flush(&mut w).is_err() {
                    self.unregister_conn(token);
                    continue 'dial;
                }
            }
        }
    }

    fn write_one(&self, w: &mut BufWriter<TcpStream>, body: Vec<u8>) -> std::io::Result<()> {
        match frame::write_frame(w, &body) {
            Ok(()) => {
                self.counters.written_frames.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .written_bytes
                    .fetch_add((body.len() + HEADER_BYTES) as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.counters.io_lost_frames.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Accepts connections for node `to` until shutdown, spawning one
    /// reader thread per connection.
    fn accept_loop(self: Arc<Self>, to: usize, listener: TcpListener) {
        loop {
            let Ok((stream, _)) = listener.accept() else {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            };
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let f = Arc::clone(&self);
            let h = thread::spawn(move || f.reader_loop(to, stream));
            self.threads.lock().expect("threads lock").push(h);
        }
    }

    /// Verifies an inbound hello body: well-formed, in-range node id,
    /// and a challenge tag matching the cluster secret (compared in
    /// constant time). Returns the authenticated dialer index.
    fn verify_hello(&self, body: &[u8]) -> Option<usize> {
        if body.len() != HELLO_LEN {
            return None;
        }
        let id = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
        let tag = u64::from_le_bytes(body[4..].try_into().expect("8 bytes"));
        if (id as usize) < self.addrs.len() && tags_match(tag, hello_tag(id, self.secret)) {
            Some(id as usize)
        } else {
            None
        }
    }

    /// Reads frames off one accepted connection: an authenticated hello
    /// first, then message bodies. A bad hello — like any frame or
    /// decode error — is terminal for the connection: no retry
    /// negotiation, the socket is shut down and the (legitimate)
    /// dialer's backoff owns recovery.
    fn reader_loop(&self, to: usize, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        // The hello attributes the connection to its dialer.
        let from = match frame::read_frame(&mut stream, self.max_frame) {
            // Closed before introducing itself (e.g. the shutdown
            // path's throwaway wakeup connection): not a reject.
            Ok(None) => return,
            Ok(Some(body)) => match self.verify_hello(&body) {
                Some(id) => id,
                None => {
                    self.counters.hello_rejects.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            },
            Err(_) => {
                self.counters.hello_rejects.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let token = self.register_conn((from, to), &stream);
        loop {
            match frame::read_frame(&mut stream, self.max_frame) {
                Ok(Some(body)) => {
                    self.counters.recv_frames.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .recv_bytes
                        .fetch_add((body.len() + HEADER_BYTES) as u64, Ordering::Relaxed);
                    match Msg::<M>::decode_transport(&self.mech, &body) {
                        Ok(msg) => {
                            match self.inboxes[to].try_send((NodeId(from as u32), msg)) {
                                Ok(()) => {
                                    self.progress.inbox_depth[to].fetch_add(1, Ordering::Relaxed);
                                }
                                Err(TrySendError::Full(_)) => {
                                    // Wire loss at the inbox, same as the
                                    // threaded runtime's bounded inboxes.
                                    self.counters.inbox_drops.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(_) => {
                            // Undecodable body: the stream can no longer
                            // be trusted. Drop the connection.
                            self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.shutdown(Shutdown::Both);
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
            }
        }
        self.unregister_conn(token);
    }
}
