//! Real socket transport driver for the kvstore protocol.
//!
//! The third — and only non-simulated — driver of the generic protocol
//! stack. Where the simulator's `Cluster` models the network and the
//! threaded `RuntimeFleet` passes `Msg` values through in-process
//! channels, this crate serialises every inter-node message with the
//! real wire codec ([`kvstore::messages::Msg::encode_transport`]),
//! frames it ([`frame`]) and ships it over loopback TCP connections
//! managed by a reconnecting connection layer ([`fabric`]). The
//! protocol code is byte-for-byte the same in all three drivers; only
//! the [`kvstore::ctx::NodeCtx`] effects interpreter differs.
//!
//! Failure semantics deliberately mirror the in-process drivers: a full
//! outbound queue or full inbox drops the message (wire loss the
//! protocol already tolerates), a torn/corrupt frame kills the
//! connection and the dialer reconnects with jittered backoff, and
//! anti-entropy repairs whatever an outage cost. The
//! [`fleet::SocketFleet`] harness implements
//! [`kvstore::harness::FleetHarness`], so the identical audit stack
//! (single view, AAE equivalence, residual audit, oracle-clean
//! converge) that gates the simulator and the threaded runtime gates
//! the socket driver too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fabric;
pub mod fleet;
pub mod frame;

pub use fabric::{hello_body, Fabric, FabricStats};
pub use fleet::{ConnKill, SocketConfig, SocketFleet};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME, HEADER_BYTES};
