//! Length-prefixed, checksummed frames over a byte stream.
//!
//! Every message on a socket connection travels as one frame:
//!
//! ```text
//! [0..4)    body length L        (u32, little-endian)
//! [4..8)    checksum             (low 32 bits of FNV-1a-64 of the body)
//! [8..8+L)  body                 (Msg::encode_transport bytes, or a hello)
//! ```
//!
//! The 8-byte header is the *entire* per-message transport overhead, so
//! the socket driver runs with `StoreConfig::header_bytes ==`
//! [`HEADER_BYTES`] and the nodes' wire ledgers charge exactly the
//! bytes written to the socket (`Msg::wire_size == encode_transport
//! len`, plus this header) — honest accounting, not a modeled constant.
//!
//! A stream decoder cannot resynchronise after corruption (there is no
//! frame delimiter to hunt for), so every decode failure — truncated
//! header or body, oversized length, checksum mismatch — is terminal
//! for the connection: the caller drops it and lets the dialer
//! reconnect. That maps corruption onto the protocol's existing
//! wire-loss semantics instead of risking a desynchronised parse.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

use storage::fnv1a64;

/// Bytes of framing overhead per message: 4-byte length + 4-byte
/// checksum.
pub const HEADER_BYTES: usize = 8;

/// Default cap on a frame body. Protocol messages are far smaller; a
/// length field beyond this is treated as stream corruption rather than
/// an allocation request.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed mid-frame (including EOF after a
    /// partial header or body — a torn frame).
    Io(io::Error),
    /// The header announced a body larger than the configured cap.
    TooLarge {
        /// The announced body length.
        len: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// The body did not match the header's checksum.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds cap of {max}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// The checksum field for `body`: FNV-1a-64 truncated to 32 bits (the
/// same hash the storage log's records use for torn-write detection).
fn checksum(body: &[u8]) -> u32 {
    fnv1a64(body) as u32
}

/// Writes one frame (header + body) to `w`. A single buffered
/// `write_all`, so a frame is either queued to the OS in full or the
/// write fails — there is no partial-frame success path.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum(body).to_le_bytes());
    buf.extend_from_slice(body);
    w.write_all(&buf)
}

/// Reads one frame body from `r`.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer
/// closed between frames). EOF inside a header or body is a torn frame
/// and surfaces as [`FrameError::Io`]. Handles short reads (partial TCP
/// segments) transparently via `read_exact`.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    // First byte decides clean-close vs torn frame.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == ErrorKind::Interrupted => return read_frame(r, max_frame),
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    if checksum(&body) != want {
        return Err(FrameError::BadChecksum);
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrips_and_reports_clean_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), vec![0xAB; 300]);
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { .. }));
    }

    #[test]
    fn torn_header_and_torn_body_are_io_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload").unwrap();
        for cut in 1..full.len() {
            let err = read_frame(&mut Cursor::new(&full[..cut]), 1024).unwrap_err();
            assert!(matches!(err, FrameError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corrupt_body_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum));
    }
}
