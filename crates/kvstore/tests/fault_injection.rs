//! Failure-mode tests: partitions healed by anti-entropy, hinted handoff
//! for down replicas, and lossy links — the store must stay causally
//! correct (with the DVV mechanism) through all of them.

use std::collections::BTreeSet;

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use simnet::{Duration, LatencyModel, LinkConfig, NetworkConfig, NodeId};

fn base_config() -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 3,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    }
}

#[test]
fn partition_then_aae_convergence_through_the_protocol() {
    // Run half the workload, partition server 2 away, run the rest, heal,
    // then let the *protocol's own* anti-entropy converge the replicas —
    // no harness-side converge().
    let mut cfg = base_config();
    cfg.store = StoreConfig {
        anti_entropy_interval: Duration::from_millis(50),
        ..StoreConfig::default()
    };
    let mut c = Cluster::new(21, DvvMechanism, cfg);

    // phase 1: some traffic
    c.run_for(Duration::from_millis(30));
    // partition: server 2 alone (clients stay with the majority)
    let all_but_2: Vec<NodeId> = (0..2).map(NodeId).chain((3..7).map(NodeId)).collect();
    c.sim_mut()
        .network_mut()
        .partition_two(all_but_2, [NodeId(2)]);
    c.set_replica_status(ReplicaId(2), false);
    c.run_for(Duration::from_millis(100));

    // heal
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(2), true);
    assert!(c.run(), "sessions finish after healing");

    // let AAE do its work through the network
    c.run_for(Duration::from_millis(2_000));

    // replicas converged by the protocol itself
    let keys: Vec<Vec<u8>> = c.oracle().keys();
    assert!(!keys.is_empty());
    for key in &keys {
        let s0: BTreeSet<_> = c.surviving_at(0, key);
        for i in 1..3 {
            assert_eq!(
                s0,
                c.surviving_at(i, key),
                "server {i} did not converge for {key:?}"
            );
        }
    }
    // and the result is causally clean
    c.converge(); // no-op if AAE finished; makes the audit well-defined
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn hinted_handoff_delivers_to_recovered_replica() {
    let mut cfg = base_config();
    cfg.servers = 4;
    cfg.store = StoreConfig {
        anti_entropy_interval: Duration::ZERO, // isolate handoff
        handoff_interval: Duration::from_millis(20),
        ..StoreConfig::default()
    };
    cfg.clients = 3;
    let mut c = Cluster::new(33, DvvMechanism, cfg);

    // take server 0 down before any traffic
    c.set_replica_status(ReplicaId(0), false);
    c.sim_mut()
        .network_mut()
        .partition_two((1..7).map(NodeId), [NodeId(0)]);

    c.run_for(Duration::from_millis(60));

    // some fallback must be holding hints for server 0 by now
    let hints_held: usize = (0..4).map(|i| c.server(i).hint_count()).sum();
    assert!(hints_held > 0, "sloppy quorum must have created hints");

    // recover server 0
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(0), true);
    assert!(c.run());
    c.run_for(Duration::from_millis(1_000));

    // hints drained and the data arrived
    let hints_left: usize = (0..4).map(|i| c.server(i).hint_count()).sum();
    assert_eq!(hints_left, 0, "handoff must drain all hints");
    let handoffs: u64 = (0..4).map(|i| c.server(i).stats().handoffs).sum();
    assert!(handoffs > 0);
    assert!(
        !c.server(0).data().is_empty(),
        "recovered replica received handed-off data"
    );

    c.converge();
    assert!(c.anomaly_report().is_clean());
}

#[test]
fn lossy_network_still_causally_clean() {
    // 20% message loss: requests retry/time out, but whatever the store
    // acknowledges must still be causally consistent after convergence.
    let mut cfg = base_config();
    cfg.network = NetworkConfig::uniform(LinkConfig {
        latency: LatencyModel::Constant(Duration::from_micros(300)),
        drop_probability: 0.20,
        ..LinkConfig::default()
    });
    cfg.cycles_per_client = 8;
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(44, DvvMechanism, cfg);
    c.run();
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    let lat = c.latency_report();
    assert!(
        lat.retries > 0 || lat.failed_cycles > 0,
        "20% loss must cause at least some retries"
    );
}

#[test]
fn read_repair_propagates_data_without_aae() {
    // With AAE off, read repair alone must spread values to stale
    // replicas that participate in quorums.
    let mut cfg = base_config();
    cfg.store = StoreConfig {
        anti_entropy_interval: Duration::ZERO,
        read_repair: true,
        ..StoreConfig::default()
    };
    cfg.clients = 2;
    cfg.cycles_per_client = 12;
    cfg.client.key_count = 1;
    let mut c = Cluster::new(55, DvvMechanism, cfg);
    c.run();
    c.run_for(Duration::from_millis(500));
    let repairs: u64 = (0..3).map(|i| c.server(i).stats().read_repairs).sum();
    // With constant latency and rotating coordinators, some reads observe
    // divergent replicas and repair them.
    let populated = (0..3).filter(|i| !c.server(*i).data().is_empty()).count();
    assert_eq!(
        populated, 3,
        "all replicas hold data (replication + repair)"
    );
    let _ = repairs; // repairs may be zero on fast paths; population is the guarantee
    c.converge();
    assert!(c.anomaly_report().is_clean());
}

#[test]
fn quorum_timeouts_surface_as_failed_or_retried_requests() {
    // Partition one replica mid-run without telling anyone (failure
    // detector lag): coordinators that pick it will time out client-side
    // and the client retries elsewhere.
    let mut cfg = base_config();
    cfg.cycles_per_client = 6;
    cfg.deadline = Duration::from_secs(2_000);
    let mut c = Cluster::new(66, DvvMechanism, cfg);
    c.run_for(Duration::from_millis(20));
    // server 1 silently unreachable — membership NOT updated
    let others: Vec<NodeId> = [0u32, 2, 3, 4, 5, 6].into_iter().map(NodeId).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(1)]);
    c.run_for(Duration::from_millis(300));
    c.sim_mut().network_mut().heal();
    assert!(c.run());
    let lat = c.latency_report();
    assert!(
        lat.retries > 0,
        "requests routed at the dead replica must retry"
    );
    c.converge();
    assert!(c.anomaly_report().is_clean());
}
