//! The incremental-AAE equivalence oracle: the ownership-partitioned
//! per-arc Merkle summaries that [`kvstore::node::StoreNode`] maintains
//! *in place* at every mutation site must, at any observation point,
//! equal a from-scratch rebuild over the keyspace. This suite is the
//! safety net of the incremental-AAE refactor:
//!
//! * a proptest drives a [`kvstore::data::DataStore`] through arbitrary
//!   interleavings of sets, overwrites, removes, re-partitions and
//!   clears, auditing the index after every step (and cross-checking
//!   lookups against a naive model);
//! * deterministic cluster scenarios drive the full protocol stack —
//!   puts, deletes, read repair, AAE, hinted handoff, range transfers,
//!   partitions, live join/leave churn, GC — and audit every member's
//!   index at multiple observation points, mid-flight included.
//!
//! The nightly soak lane runs this at high `PROPTEST_CASES` and with the
//! extra churn seeds (`workloads::churn_seeds`).

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::data::DataStore;
use proptest::collection::vec;
use proptest::prelude::*;
use simnet::{Duration, NodeId};

/// One abstract mutation of a data store / its AAE index.
#[derive(Clone, Debug)]
enum Op {
    /// Mutate (insert-or-update) key `k % 24` to hold `v`.
    Set(u8, u64),
    /// Remove key `k % 24`.
    Remove(u8),
    /// Adopt a fresh arc partition derived from the seed (what a view
    /// merge does after rebuilding the ring).
    Repartition(u8),
    /// Drop everything (what `finish_leave` does).
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // the vendored prop_oneof! picks uniformly; weight by repetition so
    // most steps are data mutations, with partition changes and clears
    // sprinkled through
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Set(k % 24, v)),
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Set(k % 24, v)),
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Set(k % 24, v)),
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Set(k % 24, v)),
        any::<u8>().prop_map(|k| Op::Remove(k % 24)),
        any::<u8>().prop_map(|k| Op::Remove(k % 24)),
        (1u8..12).prop_map(Op::Repartition),
        (10u8..70).prop_map(|s| {
            if s % 9 == 0 {
                Op::Clear
            } else {
                Op::Repartition(s % 12)
            }
        }),
    ]
}

/// Deterministic pseudo-arc-partition for a seed: `count` boundaries
/// spread over the 64-bit circle with seed-dependent jitter.
fn bounds_for(seed: u8) -> Vec<u64> {
    let count = usize::from(seed % 7) + 1;
    (0..count)
        .map(|i| {
            let step = u64::MAX / count as u64;
            step * i as u64 + u64::from(seed) * 0x9e37_79b9
        })
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .collect()
}

proptest! {
    #[test]
    fn data_store_index_equals_rebuild_after_arbitrary_interleavings(
        ops in vec(arb_op(), 1..120),
    ) {
        let mut d: DataStore<u64> = DataStore::new();
        let mut model: std::collections::BTreeMap<Vec<u8>, u64> =
            std::collections::BTreeMap::new();
        for op in ops {
            match op {
                Op::Set(k, v) => {
                    d.mutate(&[k], |s| *s = v);
                    model.insert(vec![k], v);
                }
                Op::Remove(k) => {
                    let was = d.remove(&[k]);
                    prop_assert_eq!(was, model.remove(&[k] as &[u8]).is_some());
                }
                Op::Repartition(seed) => d.repartition(bounds_for(seed)),
                Op::Clear => {
                    d.clear();
                    model.clear();
                }
            }
            // the refactor's core invariant, checked after *every* step
            d.audit_index().map_err(TestCaseError::fail)?;
            prop_assert_eq!(d.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(d.get(k), Some(v));
        }
    }
}

/// Audits every current member's incremental AAE index against a
/// from-scratch rebuild (per-arc summaries, cached points/fingerprints,
/// and the assembled shared summary for every peer).
fn audit_all(c: &Cluster<DvvMechanism>, seed: u64, stage: &str) {
    for i in c.member_slots() {
        c.server(i)
            .audit_aae_index()
            .unwrap_or_else(|e| panic!("seed {seed}, {stage}: {e}"));
    }
}

#[test]
fn cluster_churn_keeps_incremental_summaries_equal_to_rebuild() {
    // Full-stack interleavings: client puts and deletes, read repair,
    // AAE exchanges, hinted handoff under a partition, live join/leave
    // (range transfers + view merges by gossip), GC — with the audit
    // run at observation points *during* the run, not just at the end.
    for seed in workloads::churn_seeds(&[7, 19]) {
        let cfg = ClusterConfig {
            servers: 3,
            spare_servers: 2,
            clients: 4,
            cycles_per_client: 25,
            store: StoreConfig {
                n: 2,
                r: 2,
                w: 2,
                anti_entropy_interval: Duration::from_millis(50),
                ..StoreConfig::default()
            }
            // the soak lane re-runs this suite with DELTA_PROTOCOLS=force
            .with_env_delta(),
            client: ClientConfig {
                key_count: 8,
                delete_fraction: 0.15,
                ..ClientConfig::default()
            },
            deadline: Duration::from_secs(2_000),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(seed, DvvMechanism, cfg);

        c.run_for(Duration::from_millis(25));
        audit_all(&c, seed, "warm-up traffic");

        // partitioned phase: sloppy quorums, hints, repairs
        let others: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 1).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(1)]);
        c.set_replica_status(ReplicaId(1), false);
        c.run_for(Duration::from_millis(60));
        audit_all(&c, seed, "mid-partition");
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(1), true);
        c.run_for(Duration::from_millis(20));
        audit_all(&c, seed, "post-heal");

        // live churn: joins and a leave reshape every member's arcs
        assert!(c.add_node_live(3), "seed {seed}: join 3 settled");
        audit_all(&c, seed, "post-join");
        assert!(c.remove_node_live(0), "seed {seed}: leave 0 settled");
        audit_all(&c, seed, "post-leave");

        assert!(c.run(), "seed {seed}: sessions finish");
        c.run_for(Duration::from_secs(3));
        audit_all(&c, seed, "quiesced");

        // convergence + GC exercise the harness merge and remove paths
        c.converge();
        audit_all(&c, seed, "converged");
        let report = c.anomaly_report();
        assert!(report.is_clean(), "seed {seed}: {report:?}");
        // GC after the report: reclaiming tombstones drops their write
        // ids from the surviving sets the oracle audits
        c.collect_garbage();
        audit_all(&c, seed, "post-GC");
    }
}

#[test]
fn aae_repair_behaviour_is_unchanged_by_the_incremental_summaries() {
    // Two replicas diverge behind a partition; with read repair off,
    // only anti-entropy can reconcile them. The incremental summaries
    // must drive the exact same repair as the old keyspace scan did:
    // divergence detected, states exchanged, stores converged.
    let cfg = ClusterConfig {
        servers: 2,
        clients: 2,
        cycles_per_client: 10,
        store: StoreConfig {
            n: 2,
            r: 1,
            w: 1,
            read_repair: false,
            anti_entropy_interval: Duration::from_millis(40),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 4,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(11, DvvMechanism, cfg);
    c.run_for(Duration::from_millis(10));
    c.sim_mut()
        .network_mut()
        .partition_two([NodeId(0), NodeId(2)], [NodeId(1), NodeId(3)]);
    assert!(c.run(), "sessions finish despite the partition");
    c.sim_mut().network_mut().heal();
    c.run_for(Duration::from_secs(2));
    audit_all(&c, 11, "healed");

    let divergent: u64 = (0..2).map(|i| c.server(i).stats().aae_divergent).sum();
    assert!(divergent > 0, "anti-entropy must have found divergence");
    for key in c.oracle().keys() {
        assert_eq!(
            c.surviving_at(0, &key),
            c.surviving_at(1, &key),
            "replicas must agree on {key:?} after AAE"
        );
    }
    let report = {
        c.converge();
        c.anomaly_report()
    };
    assert!(report.is_clean(), "{report:?}");
}
