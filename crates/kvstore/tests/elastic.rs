//! Elastic-membership and ownership-aware-coordination scenarios:
//!
//! * a coordinator outside a key's preference list must not count itself
//!   toward R/W quorums nor write into its own store (regression for the
//!   quorum self-counting bug);
//! * live node join/leave with key-range transfer must never lose an
//!   acknowledged write, and a joiner must end up serving its ranges;
//! * hint obligations must not leak when garbage collection reclaims
//!   fully-deleted keys;
//! * anti-entropy divergence must be an initiator-side statistic.

use std::collections::BTreeSet;

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId};
use kvstore::cluster::{Cluster, ClusterConfig, StoreProc};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::messages::Msg;
use kvstore::node::StoreNode;
use kvstore::value::{Key, StampedValue, WriteId};
use ring::{HashRing, RingView};
use simnet::{Duration, NetworkConfig, NodeId, SimTime, Simulation};
use workloads::{churn_seeds, ChurnAction, ChurnPlan};

type M = DvvMechanism;

/// Finds a key together with a server that is *not* in its preference
/// list (requires more servers than the replication factor).
fn key_with_outsider(servers: u32, n: usize) -> (Key, ReplicaId, Vec<ReplicaId>) {
    let ring = HashRing::with_vnodes((0..servers).map(ReplicaId), 32);
    for i in 0..10_000 {
        let key = format!("key-{i}").into_bytes();
        let prefs = ring.preference_list(&key, n);
        if let Some(outsider) = (0..servers).map(ReplicaId).find(|r| !prefs.contains(r)) {
            return (key, outsider, prefs);
        }
    }
    panic!("no key with a non-owner among {servers} servers");
}

fn quiet_config(servers: usize) -> ClusterConfig {
    ClusterConfig {
        servers,
        clients: 1,
        cycles_per_client: 0, // traffic is injected via post()
        store: StoreConfig {
            anti_entropy_interval: Duration::ZERO,
            handoff_interval: Duration::ZERO,
            ..StoreConfig::default()
        },
        ..ClusterConfig::default()
    }
}

#[test]
fn non_owner_coordinator_keeps_its_store_empty_and_delegates_writes() {
    let (key, outsider, owners) = key_with_outsider(4, 3);
    let mut c = Cluster::new(7, DvvMechanism, quiet_config(4));
    let digest = c.view_digest();

    let put: Msg<M> = Msg::ClientPut {
        req: 1,
        key: key.clone(),
        value: StampedValue::new(WriteId::new(ClientId(9), 1), vec![7u8; 16]),
        ctx: Default::default(),
        digest,
    };
    c.sim_mut().post(NodeId(outsider.0), put);
    c.run_for(Duration::from_millis(50));

    let coordinator = c.server(outsider.0 as usize);
    assert!(
        coordinator.data().is_empty(),
        "a non-owner coordinator must not store keys it does not own"
    );
    assert_eq!(
        coordinator.metadata_bytes(),
        0,
        "no metadata pollution at the non-owner"
    );
    assert_eq!(coordinator.stats().puts_ok, 1, "W=2 met from true owners");
    assert!(coordinator.stats().remote_coordinations >= 1);
    for owner in &owners {
        assert!(
            c.server(owner.0 as usize).data().contains_key(&key),
            "owner {owner:?} must hold the delegated write"
        );
    }

    // the same holds for reads: quorum from owners, no local fold
    let get: Msg<M> = Msg::ClientGet {
        req: 2,
        key: key.clone(),
        digest,
    };
    c.sim_mut().post(NodeId(outsider.0), get);
    c.run_for(Duration::from_millis(50));
    let coordinator = c.server(outsider.0 as usize);
    assert_eq!(coordinator.stats().gets_ok, 1);
    assert!(
        coordinator.data().is_empty(),
        "read completion must not fold state into a non-owner"
    );
}

#[test]
fn non_owner_coordinator_cannot_substitute_for_a_real_replica() {
    // R = W = N = 3: every true owner must answer. Silently partition one
    // owner (failure detector not told) — the pre-fix coordinator would
    // have counted its own store as the third response and acknowledged
    // anyway; the ownership-aware coordinator must time out.
    let (key, outsider, owners) = key_with_outsider(4, 3);
    let mut cfg = quiet_config(4);
    cfg.store.r = 3;
    cfg.store.w = 3;
    let mut c = Cluster::new(9, DvvMechanism, cfg);
    let digest = c.view_digest();

    let silent = owners[2];
    let reachable: Vec<NodeId> = (0..5u32)
        .map(NodeId)
        .filter(|nid| nid.0 != silent.0)
        .collect();
    c.sim_mut()
        .network_mut()
        .partition_two(reachable, [NodeId(silent.0)]);

    let put: Msg<M> = Msg::ClientPut {
        req: 1,
        key: key.clone(),
        value: StampedValue::new(WriteId::new(ClientId(9), 1), vec![7u8; 16]),
        ctx: Default::default(),
        digest,
    };
    c.sim_mut().post(NodeId(outsider.0), put);
    let get: Msg<M> = Msg::ClientGet {
        req: 2,
        key,
        digest,
    };
    c.sim_mut().post(NodeId(outsider.0), get);
    c.run_for(Duration::from_millis(200));

    let coordinator = c.server(outsider.0 as usize);
    assert_eq!(
        coordinator.stats().puts_ok,
        0,
        "two reachable owners must not satisfy W=3"
    );
    assert_eq!(
        coordinator.stats().gets_ok,
        0,
        "two reachable owners must not satisfy R=3"
    );
    assert_eq!(coordinator.stats().quorum_timeouts, 2);
    assert!(coordinator.data().is_empty());
}

#[test]
fn garbage_collection_purges_hint_obligations_with_their_keys() {
    // Every write is a delete; server 0 is down throughout, so fallbacks
    // accumulate hints for it. With handoff disabled the hints can never
    // drain — after convergence + GC reclaims the all-tombstone keys,
    // the matching hints must be purged rather than leak forever.
    let mut cfg = ClusterConfig {
        servers: 4,
        clients: 3,
        cycles_per_client: 10,
        store: StoreConfig {
            anti_entropy_interval: Duration::ZERO,
            handoff_interval: Duration::ZERO,
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 6,
            delete_fraction: 1.0,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(5, DvvMechanism, cfg);
    c.set_replica_status(ReplicaId(0), false);
    assert!(c.run(), "sessions finish around the down replica");

    let hints_before: usize = (0..4).map(|i| c.server(i).hint_count()).sum();
    assert!(hints_before > 0, "sloppy quorums must have created hints");

    c.converge();
    let reclaimed: usize = c.collect_garbage().into_iter().sum();
    assert!(reclaimed > 0, "all-tombstone keys must be reclaimed");

    for i in 0..4 {
        let server = c.server(i);
        let keys: BTreeSet<Key> = server.data().keys().cloned().collect();
        for hinted in server.hinted_keys() {
            assert!(
                keys.contains(&hinted),
                "server {i} holds a hint for reclaimed key {hinted:?}"
            );
        }
    }
    let hints_after: usize = (0..4).map(|i| c.server(i).hint_count()).sum();
    assert_eq!(
        hints_after, 0,
        "every key was deleted, so every hint obligation is moot"
    );
}

#[test]
fn aae_divergence_is_an_initiator_side_statistic() {
    // Node 0 runs anti-entropy; node 1 only responds. Seed divergence at
    // node 0 and let the protocol reconcile: exactly one round finds
    // divergent keys, and it must be counted at the initiator — the
    // responder's counters stay zero so divergent/rounds ratios are
    // meaningful per node.
    let replicas = [ReplicaId(0), ReplicaId(1)];
    let view = RingView::from_members(replicas);
    let initiator_cfg = StoreConfig {
        n: 2,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::from_millis(10),
        handoff_interval: Duration::ZERO,
        vnodes: 16,
        ..StoreConfig::default()
    };
    let responder_cfg = StoreConfig {
        anti_entropy_interval: Duration::ZERO,
        ..initiator_cfg
    };
    let mech = DvvMechanism;
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        3,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(
                ReplicaId(0),
                mech,
                initiator_cfg,
                view.clone(),
            )),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, responder_cfg, view)),
        ],
    );

    let mut state: <M as Mechanism<StampedValue>>::State = Default::default();
    mech.write(
        &mut state,
        WriteOrigin::new(ReplicaId(0), ClientId(7)),
        &Default::default(),
        StampedValue::new(WriteId::new(ClientId(7), 1), vec![1, 2, 3]),
    );
    if let StoreProc::Server(s) = sim.process_mut(0) {
        s.merge_state_direct(b"k", &state);
    }

    sim.run_until(SimTime::ZERO + Duration::from_millis(200));

    let (initiator, responder) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert!(initiator.stats().aae_rounds >= 2, "many rounds initiated");
    assert_eq!(
        initiator.stats().aae_divergent,
        1,
        "exactly the first round found divergence, counted at the initiator"
    );
    assert!(initiator.stats().aae_divergent <= initiator.stats().aae_rounds);
    assert_eq!(responder.stats().aae_rounds, 0, "responder never initiated");
    assert_eq!(
        responder.stats().aae_divergent,
        0,
        "responding to AaeRoot/AaeStates must not count as divergence"
    );
    assert!(
        responder.data().contains_key(b"k".as_slice()),
        "anti-entropy delivered the divergent key"
    );
}

fn elastic_config(seed_keys: usize) -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        spare_servers: 1,
        clients: 4,
        cycles_per_client: 30,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(100),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: seed_keys,
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(1_000),
        ..ClusterConfig::default()
    }
}

#[test]
fn live_join_streams_owned_ranges_to_the_new_node() {
    let mut c = Cluster::new(17, DvvMechanism, elastic_config(8));

    // workload in flight before the join
    c.run_for(Duration::from_millis(40));
    let keys_before: BTreeSet<Key> = (0..3)
        .flat_map(|i| c.server(i).data().keys().cloned().collect::<Vec<_>>())
        .collect();
    assert!(!keys_before.is_empty(), "pre-join traffic landed");

    assert!(c.add_node_live(3), "join transfers must settle");
    assert_eq!(c.member_slots(), vec![0, 1, 2, 3]);

    let joiner = c.server(3);
    assert!(joiner.is_active());
    assert!(joiner.stats().transfers_in > 0, "ranges were streamed");
    let donated: u64 = (0..3).map(|i| c.server(i).stats().transfers_out).sum();
    assert!(donated > 0, "current owners donated moved ranges");

    // the joiner serves every pre-join key it now owns
    let new_ring = HashRing::with_vnodes((0..4u32).map(ReplicaId), 32);
    let owned: Vec<&Key> = keys_before
        .iter()
        .filter(|k| new_ring.preference_list(k, 3).contains(&ReplicaId(3)))
        .collect();
    assert!(!owned.is_empty(), "the joiner owns some pre-join keys");
    for key in owned {
        assert!(
            c.server(3).data().contains_key(key),
            "joiner missing owned key {key:?}"
        );
    }

    // finish the workload across the grown cluster; nothing may be lost
    assert!(c.run(), "sessions finish after the join");
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    assert!(report.acked_writes > 0);
}

#[test]
fn live_leave_drains_ranges_without_losing_acked_writes() {
    let mut cfg = elastic_config(8);
    cfg.servers = 4;
    cfg.spare_servers = 0;
    cfg.store.n = 2;
    cfg.store.r = 2;
    cfg.store.w = 2;
    let mut c = Cluster::new(23, DvvMechanism, cfg);

    c.run_for(Duration::from_millis(40));
    assert!(
        !c.server(0).data().is_empty(),
        "the leaver holds data to drain"
    );

    assert!(c.remove_node_live(0), "drain must settle");
    assert_eq!(c.member_slots(), vec![1, 2, 3]);
    assert!(!c.server(0).is_active(), "the leaver retired");
    assert!(
        c.server(0).data().is_empty(),
        "the leaver's store was fully drained"
    );

    // The strongest no-loss check runs *before* convergence: every acked
    // causally-maximal write must survive somewhere among the remaining
    // members — convergence can only merge what members still hold.
    let oracle = c.oracle();
    for key in oracle.keys() {
        let union = c.surviving_union(&key);
        let (lost, _) = oracle.audit_key(&key, &union);
        assert_eq!(lost, 0, "acked write lost across the leave for {key:?}");
    }

    assert!(c.run(), "sessions finish on the shrunken cluster");
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn failed_drain_readmits_the_leaver_in_band_under_a_fresh_incarnation() {
    // Isolate the leaver so its drain can never be acknowledged: the
    // removal must fail and re-admit the node *in band* — a fresh `Up`
    // incarnation carried by a `Rejoin` message, not a harness-forced
    // view sync — keeping its data. While the partition stands, the
    // surviving members still hold the `Leaving` entry; after the heal,
    // gossip alone must merge the re-admission everywhere.
    let mut cfg = elastic_config(6);
    cfg.servers = 4;
    cfg.spare_servers = 0;
    cfg.store.n = 2;
    cfg.store.r = 2;
    cfg.store.w = 2;
    cfg.cycles_per_client = 10;
    cfg.membership_settle_budget = Duration::from_secs(2);
    assert!(!cfg.force_view_sync, "the in-band path is the default");
    let mut c = Cluster::new(31, DvvMechanism, cfg);
    assert!(c.run(), "workload completes before the churn");
    assert!(!c.server(0).data().is_empty());

    let version_before = c.ring_epoch();
    let others: Vec<NodeId> = (0..8u32).map(NodeId).filter(|n| n.0 != 0).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(0)]);
    assert!(
        !c.remove_node_live(0),
        "an unreachable leaver cannot drain — removal must fail"
    );
    assert!(c.member_slots().contains(&0), "the leaver was re-admitted");
    assert!(
        c.server(0).is_active(),
        "the re-admitted node keeps serving"
    );
    assert!(
        !c.server(0).data().is_empty(),
        "an undrained store must not be cleared"
    );
    assert!(
        c.ring_epoch() >= version_before + 2,
        "the leave and the re-admission each spend a fresh incarnation"
    );
    assert_eq!(
        c.server(0).view_digest(),
        c.view_digest(),
        "the Rejoin carried the canonical view to the subject"
    );
    assert!(
        c.member_slots()
            .into_iter()
            .filter(|&i| i != 0)
            .any(|i| c.server(i).view_digest() != c.view_digest()),
        "while partitioned, the survivors cannot have learned the rejoin yet"
    );

    // heal: gossip alone merges the re-admission into every view
    c.sim_mut().network_mut().heal();
    c.run_for(Duration::from_millis(500));
    for i in c.member_slots() {
        assert_eq!(
            c.server(i).view_digest(),
            c.view_digest(),
            "server {i} did not converge onto the re-admitted view by gossip"
        );
    }

    // retry: now the drain goes through
    assert!(c.remove_node_live(0), "drain succeeds once reachable");
    assert_eq!(c.member_slots(), vec![1, 2, 3]);
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn elastic_churn_with_partition_is_oracle_clean_across_seeds() {
    for seed in churn_seeds(&[11, 29, 47]) {
        let mut cfg = ClusterConfig {
            servers: 3,
            spare_servers: 2,
            clients: 4,
            cycles_per_client: 40,
            store: StoreConfig {
                n: 2,
                r: 2,
                w: 2,
                anti_entropy_interval: Duration::from_millis(50),
                ..StoreConfig::default()
            }
            // the soak lane re-runs this suite with DELTA_PROTOCOLS=force
            .with_env_delta(),
            client: ClientConfig {
                key_count: 6,
                ..ClientConfig::default()
            },
            ..ClusterConfig::default()
        }
        // the faults lane re-runs this suite with NET_FAULTS=hostile
        .with_env_net_faults();
        cfg.deadline = Duration::from_secs(2_000);
        let mut c = Cluster::new(seed, DvvMechanism, cfg);

        // phase 1: traffic, then a partition that heals (sloppy quorums
        // + hinted handoff carry the load meanwhile)
        c.run_for(Duration::from_millis(30));
        let everyone_else: Vec<NodeId> = (0..10u32).map(NodeId).filter(|n| n.0 != 1).collect();
        c.sim_mut()
            .network_mut()
            .partition_two(everyone_else, [NodeId(1)]);
        c.set_replica_status(ReplicaId(1), false);
        c.run_for(Duration::from_millis(60));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(1), true);
        c.run_for(Duration::from_millis(20));

        // phase 2: a randomized (but deterministic) churn plan derived
        // from the seed — joins and leaves interleaved with the workload
        let draws: Vec<f64> = (0..5)
            .map(|i| (((seed * 31 + i * 17) % 100) as f64) / 100.0)
            .collect();
        let plan = ChurnPlan::from_draws(&[0, 1, 2], &[3, 4], 3, 0.5, 20_000, &draws);
        assert!(!plan.is_empty(), "seed {seed} produced no churn");
        for event in plan.events() {
            c.run_for(Duration::from_micros(event.after_micros));
            match event.action {
                ChurnAction::Join(slot) => {
                    assert!(c.add_node_live(slot), "seed {seed}: join {slot} settled");
                }
                ChurnAction::Leave(slot) => {
                    assert!(
                        c.remove_node_live(slot),
                        "seed {seed}: leave {slot} settled"
                    );
                }
            }
        }

        assert!(c.run(), "seed {seed}: sessions finish after churn");
        c.converge();
        let report = c.anomaly_report();
        assert!(report.is_clean(), "seed {seed}: {report:?}");
        assert!(report.acked_writes > 0, "seed {seed}: no acked writes");

        // pre-converge union audit across the final member set
        let oracle = c.oracle();
        for key in oracle.keys() {
            let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
            assert_eq!(lost, 0, "seed {seed}: write lost for {key:?}");
        }
    }
}
