//! Concurrent (overlapping) membership changes over mergeable ring
//! views, with the harness force-sync disabled throughout:
//!
//! * two joins announced back-to-back — neither waits for the other —
//!   must both settle, with every member converging onto the *merged*
//!   view by gossip alone;
//! * a join and a leave announced on **opposite sides of a partition**
//!   must merge once the partition heals: neither announcement may
//!   clobber the other, and the no-loss/residual audits must stay clean;
//! * a leave whose drain is cut off by a partition must time out and be
//!   cancelled by the **in-band re-admission path** (`Msg::Rejoin` under
//!   a fresh incarnation) — pinning the deleted `sync_all_views`
//!   fallback — while a join begun concurrently still completes;
//! * a seed-parameterised churn property run asserting the
//!   `surviving_union` no-loss oracle and the `residual_copies()` audit
//!   across overlapping changes.

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use ring::MemberStatus;
use simnet::{Duration, NodeId};
use workloads::churn_seeds;

fn overlap_config(seed_keys: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        servers: 3,
        spare_servers: 2,
        clients: 4,
        cycles_per_client: 30,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(50),
            ..StoreConfig::default()
        }
        // the soak lane re-runs this suite with DELTA_PROTOCOLS=force
        .with_env_delta(),
        client: ClientConfig {
            key_count: seed_keys,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    }
    // the faults lane re-runs this suite with NET_FAULTS=hostile
    .with_env_net_faults();
    cfg.deadline = Duration::from_secs(2_000);
    assert!(
        !cfg.force_view_sync,
        "overlap scenarios rely on the default"
    );
    cfg
}

/// Runs the audits every overlap scenario must pass once quiescent:
/// digest convergence by gossip alone, the residual-copy audit, and the
/// pre-convergence surviving-union no-loss oracle.
fn assert_cluster_clean(c: &mut Cluster<DvvMechanism>, label: &str) {
    for i in c.member_slots() {
        assert_eq!(
            c.server(i).view_digest(),
            c.view_digest(),
            "{label}: server {i} view diverged"
        );
    }
    let residuals = c.residual_copies();
    assert!(
        residuals.is_empty(),
        "{label}: keys held outside preference lists: {residuals:?}"
    );
    let oracle = c.oracle();
    for key in oracle.keys() {
        let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
        assert_eq!(lost, 0, "{label}: write lost for {key:?}");
    }
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{label}: {report:?}");
    assert!(report.acked_writes > 0, "{label}: no acked writes");
}

#[test]
fn two_concurrent_joins_settle_together() {
    let mut c = Cluster::new(41, DvvMechanism, overlap_config(8));
    c.run_for(Duration::from_millis(30));

    // both joins are in flight at once; only then is either supervised
    c.begin_join(3);
    c.begin_join(4);
    assert_eq!(c.member_slots(), vec![0, 1, 2, 3, 4]);
    assert!(c.await_membership(), "overlapping joins must settle");

    for slot in [3usize, 4] {
        assert!(c.server(slot).is_active(), "joiner {slot} serves");
        assert!(
            c.server(slot).stats().transfers_in > 0,
            "joiner {slot} was streamed its ranges"
        );
        assert_eq!(
            c.view().status(&ReplicaId(slot as u32)),
            Some(MemberStatus::Up),
            "a settled joiner is promoted from Joining to Up"
        );
    }

    assert!(c.run(), "sessions finish on the grown cluster");
    c.run_for(Duration::from_secs(3));
    assert_cluster_clean(&mut c, "join∥join");
}

#[test]
fn join_and_leave_announced_across_a_partition_merge_after_heal() {
    // Split the cluster so the join announcement (to spare 3, in side A)
    // and the leave announcement (to member 0, in side B... which is a
    // singleton) spread on disjoint sides. Neither change can learn of
    // the other until the heal — with a totally ordered epoch one view
    // would clobber the other; with mergeable views both survive.
    let mut c = Cluster::new(43, DvvMechanism, overlap_config(6));
    c.run_for(Duration::from_millis(30));

    // node ids: servers 0..3, spares 3..5, clients 5..9
    let side_b = [NodeId(0)];
    let side_a: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 0).collect();
    c.sim_mut().network_mut().partition_two(side_a, side_b);
    c.set_replica_status(ReplicaId(0), false);

    c.begin_join(3); // announced inside side A
    c.begin_leave(0); // announced inside side B; its drain is cut off
    let version_after_mints = c.ring_epoch();

    // let both announcements spread on their own sides
    c.run_for(Duration::from_millis(300));
    assert!(
        c.server(1)
            .view()
            .status(&ReplicaId(3))
            .is_some_and(MemberStatus::in_ring),
        "side A learned the join"
    );
    assert_eq!(
        c.server(1).view().status(&ReplicaId(0)),
        Some(MemberStatus::Up),
        "side A cannot have learned the leave yet"
    );
    assert_eq!(
        c.server(0).view().status(&ReplicaId(0)),
        Some(MemberStatus::Leaving),
        "the leaver adopted its own announcement"
    );
    assert_eq!(
        c.server(0).view().status(&ReplicaId(3)),
        Some(MemberStatus::Joining),
        "announcements carry everything the control plane knew, so the \
         join entry rode along to side B — but nobody on side A can relay \
         side B's Leaving entry back"
    );

    // heal, then supervise both changes: the leaver can finally drain to
    // the (now reachable) owners, and gossip merges join + leave into
    // one view everywhere
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(0), true);
    assert!(
        c.await_membership(),
        "both changes settle once the partition heals"
    );
    assert_eq!(c.member_slots(), vec![1, 2, 3]);
    assert!(!c.server(0).is_active(), "the leaver retired");
    assert!(c.server(0).data().is_empty(), "the leaver fully drained");
    assert_eq!(
        c.view().status(&ReplicaId(0)),
        Some(MemberStatus::Removed),
        "the drained leaver is tombstoned"
    );
    assert!(
        c.ring_epoch() > version_after_mints,
        "retirement and promotion spend their own incarnations"
    );

    assert!(c.run(), "sessions finish on the reshaped cluster");
    c.run_for(Duration::from_secs(3));
    assert_cluster_clean(&mut c, "join∥leave");
}

#[test]
fn leave_cancelled_in_band_while_a_join_overlaps() {
    // Regression for the deleted `sync_all_views` fallback: a leaver cut
    // off from every drain target times out and must be re-admitted by
    // the in-band `Rejoin` path (a fresh `Up` incarnation gossiped from
    // the subject), while an overlapping join still completes. After the
    // heal the cluster must converge by gossip alone — force_view_sync
    // stays off — with clean residual and no-loss audits.
    let mut c = Cluster::new(47, DvvMechanism, overlap_config(6));
    c.run_for(Duration::from_millis(30));
    assert!(!c.server(0).data().is_empty(), "the leaver holds data");

    // cut member 0 off so its drain can never be acknowledged
    let others: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 0).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(0)]);
    c.set_replica_status(ReplicaId(0), false);

    c.begin_join(3);
    c.begin_leave(0);
    assert!(
        !c.await_membership(),
        "a cut-off drain must time out, not settle"
    );

    // the leave was cancelled in band: member again, fresh Up entry,
    // store intact — and the overlapping join was not rolled back
    assert_eq!(c.member_slots(), vec![0, 1, 2, 3]);
    assert!(
        c.server(0).is_active(),
        "the re-admitted node keeps serving"
    );
    assert!(!c.server(0).data().is_empty(), "no drain ⇒ no clearing");
    assert_eq!(c.view().status(&ReplicaId(0)), Some(MemberStatus::Up));
    assert_eq!(
        c.server(0).view_digest(),
        c.view_digest(),
        "the Rejoin carried the canonical view to the subject"
    );
    assert!(c.server(3).is_active(), "the overlapping join stands");

    // heal: gossip alone reconciles the survivors (who still hold the
    // Leaving entry) with the rejoined node's fresh incarnation
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(0), true);
    c.run_for(Duration::from_millis(800));
    for i in c.member_slots() {
        assert_eq!(
            c.server(i).view_digest(),
            c.view_digest(),
            "server {i} did not converge onto the merged view by gossip"
        );
    }

    assert!(c.run(), "sessions finish after the cancelled leave");
    c.run_for(Duration::from_secs(3));
    assert_cluster_clean(&mut c, "leave∥cancel");
}

#[test]
fn stale_pending_join_is_not_promoted_after_a_later_removal() {
    // Regression: a join whose supervision times out stays pending so a
    // later await can promote it — but if the slot is *removed again*
    // before that promotion happens, the stale pending entry must not
    // bump the retired node back to `Up` (which would gossip a phantom
    // member into every ring view).
    let mut c = Cluster::new(61, DvvMechanism, overlap_config(6));
    c.run_for(Duration::from_millis(30));

    // partition member 2 so the join cannot converge in time
    let others: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 2).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
    c.set_replica_status(ReplicaId(2), false);
    c.begin_join(3);
    assert!(
        !c.await_membership(),
        "the join cannot settle while cut off"
    );
    assert_eq!(
        c.view().status(&ReplicaId(3)),
        Some(MemberStatus::Joining),
        "an unsettled join stays in its transitional status"
    );

    // heal, then remove the very slot whose join never got promoted
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(2), true);
    c.run_for(Duration::from_millis(300));
    assert!(c.remove_node_live(3), "the leave settles after the heal");
    assert_eq!(c.member_slots(), vec![0, 1, 2]);
    assert_eq!(
        c.view().status(&ReplicaId(3)),
        Some(MemberStatus::Removed),
        "the stale pending join must not resurrect the removed node"
    );
    assert!(!c.server(3).is_active());
    for i in c.member_slots() {
        assert_eq!(c.server(i).view_digest(), c.view_digest(), "server {i}");
    }

    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_secs(3));
    assert_cluster_clean(&mut c, "stale-join");
}

#[test]
#[should_panic(expected = "mid-drain")]
fn rejoining_a_draining_slot_is_rejected() {
    // begin_join on a slot whose leave is still draining would silently
    // cancel the drain while await_membership keeps waiting on it — the
    // harness must reject the call instead (the in-band Rejoin path is
    // the supported way to cancel a leave).
    let mut c = Cluster::new(67, DvvMechanism, overlap_config(6));
    c.run_for(Duration::from_millis(30));
    c.begin_leave(0);
    c.begin_join(0);
}

#[test]
fn overlapping_churn_under_partition_is_clean_across_seeds() {
    // The overlap property suite: traffic + a healed partition + two
    // waves of *concurrent* membership changes (join∥join, then
    // join∥leave), gossip-only dissemination, audited per seed by the
    // no-loss oracle and the residual-copy audit.
    for seed in churn_seeds(&[19, 37, 53]) {
        let mut c = Cluster::new(seed, DvvMechanism, overlap_config(6));

        // partitioned phase: sloppy quorums + hints carry the load
        c.run_for(Duration::from_millis(30));
        let others: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 2).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
        c.set_replica_status(ReplicaId(2), false);
        c.run_for(Duration::from_millis(60));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(2), true);
        c.run_for(Duration::from_millis(20));

        // wave 1: both spares join concurrently
        c.begin_join(3);
        c.begin_join(4);
        assert!(c.await_membership(), "seed {seed}: join∥join settled");

        // wave 2: a leave overlapping the traffic
        c.begin_leave(0);
        assert!(c.await_membership(), "seed {seed}: leave settled");

        assert!(c.run(), "seed {seed}: sessions finish after churn");
        c.run_for(Duration::from_secs(3));
        assert_cluster_clean(&mut c, &format!("seed {seed}"));
    }
}
