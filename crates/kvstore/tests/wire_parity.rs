//! Wire parity: for **every** `Msg` variant, the hand-derived
//! `Msg::wire_size` must equal `Msg::encode(..).len()` — the byte
//! accounting the benchmarks report is exactly what the codecs emit.
//! The spot checks in `messages.rs` pin a handful of shapes; this suite
//! walks all of them with arbitrary keys, payloads, states, contexts
//! and ring views.
//!
//! The same walk also pins the *transport* codec: `encode_transport`
//! (real parseable state/context bytes, as shipped on sockets) must cost
//! exactly the same bytes as the modeled encoding, and
//! `decode_transport` must be its inverse.

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::messages::Msg;
use kvstore::value::{Key, StampedValue, WriteId};
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;
use ring::{MemberStatus, RingView};

type M = DvvMechanism;
type State = <M as Mechanism<StampedValue>>::State;
type Ctx = <M as Mechanism<StampedValue>>::Context;

fn arb_key() -> impl Strategy<Value = Key> {
    vec(any::<u8>(), 0..20)
}

fn arb_value() -> impl Strategy<Value = StampedValue> {
    (0u64..1 << 16, 1u64..1 << 32, 0usize..64).prop_map(|(client, seq, len)| {
        StampedValue::new(WriteId::new(ClientId(client), seq), vec![0xa5; len])
    })
}

/// A state grown by real mechanism writes, so its metadata shape (dots,
/// version vectors, sibling sets) is whatever `DvvMechanism` actually
/// produces rather than a hand-built approximation.
fn arb_state() -> impl Strategy<Value = State> {
    vec((0u64..8, 0u64..8, 0usize..48), 1..5).prop_map(|writes| {
        let mech = DvvMechanism;
        let mut st = State::default();
        for (i, (replica, client, len)) in writes.into_iter().enumerate() {
            let client = ClientId(client);
            mech.write(
                &mut st,
                WriteOrigin::new(ReplicaId(replica as u32), client),
                &VersionVector::new(),
                StampedValue::new(WriteId::new(client, i as u64 + 1), vec![0x5a; len]),
            );
        }
        st
    })
}

fn arb_ctx() -> impl Strategy<Value = Ctx> {
    btree_map(0u64..64, 1u64..1 << 40, 0..8).prop_map(|m| {
        m.into_iter()
            .map(|(r, c)| (ReplicaId(r as u32), c))
            .collect()
    })
}

/// Views with mixed statuses, incarnations and tombstones — the shapes
/// gossip actually ships, not just fresh `from_members` views.
fn arb_view() -> impl Strategy<Value = RingView<ReplicaId>> {
    vec((0u64..24, 0u64..1 << 20, 0u8..4), 1..12).prop_map(|entries| {
        let mut view = RingView::from_members([ReplicaId(0)]);
        for (id, inc, status) in entries {
            let status = match status {
                0 => MemberStatus::Up,
                1 => MemberStatus::Joining,
                2 => MemberStatus::Leaving,
                _ => MemberStatus::Removed,
            };
            view.set(ReplicaId(id as u32), inc, status);
        }
        view
    })
}

fn arb_entries() -> impl Strategy<Value = Vec<(Key, State)>> {
    btree_map(arb_key(), arb_state(), 0..6).prop_map(|m| m.into_iter().collect())
}

fn arb_leaves() -> impl Strategy<Value = Vec<(Key, u64)>> {
    btree_map(arb_key(), any::<u64>(), 0..10).prop_map(|m| m.into_iter().collect())
}

fn arb_arcs() -> impl Strategy<Value = Vec<(u32, u64)>> {
    btree_map(0u64..512, any::<u64>(), 0..16)
        .prop_map(|m| m.into_iter().map(|(a, r)| (a as u32, r)).collect())
}

fn check(mech: &M, msg: &Msg<M>) -> Result<(), TestCaseError> {
    let encoded = msg.encode(mech);
    prop_assert_eq!(
        msg.wire_size(mech),
        encoded.len(),
        "wire_size disagrees with encode() for {:?}",
        msg
    );
    // The real-bytes transport form costs exactly what the model charges…
    let real = msg.encode_transport(mech);
    prop_assert_eq!(
        real.len(),
        encoded.len(),
        "encode_transport costs different bytes than the model for {:?}",
        msg
    );
    // …and parses back to the same message (compared by re-encoding,
    // since Msg doesn't implement PartialEq).
    let back = Msg::<M>::decode_transport(mech, &real);
    prop_assert!(
        back.is_ok(),
        "decode_transport failed for {:?}: {:?}",
        msg,
        back.err()
    );
    prop_assert_eq!(
        back.unwrap().encode_transport(mech),
        real,
        "transport roundtrip is not the identity for {:?}",
        msg
    );
    Ok(())
}

proptest! {
    /// Every variant, arbitrary contents: `wire_size == encode().len()`.
    #[test]
    fn wire_size_matches_encoding_for_every_variant(
        req in any::<u64>(),
        key in arb_key(),
        digest in any::<u64>(),
        root in any::<u64>(),
        id in any::<u64>(),
        ok in any::<bool>(),
        joining in any::<bool>(),
        value in arb_value(),
        values in vec(arb_value(), 0..4),
        state in arb_state(),
        ctx in arb_ctx(),
        view in arb_view(),
        entries in arb_entries(),
        leaves in arb_leaves(),
        arcs in arb_arcs(),
        hinted in any::<bool>(),
        hint_id in 0u64..64,
        want_keys in btree_map(arb_key(), Just(()), 0..5),
        summary in btree_map(0u64..64, any::<u64>(), 0..10),
        want_members in btree_map(0u64..64, Just(()), 0..6),
    ) {
        let mech = DvvMechanism;
        let hint = hinted.then_some(ReplicaId(hint_id as u32));
        let who = view.members().first().copied().unwrap_or(ReplicaId(0));
        let summary: Vec<(ReplicaId, u64)> =
            summary.into_iter().map(|(r, k)| (ReplicaId(r as u32), k)).collect();
        let delta_entries: Vec<(ReplicaId, ring::MemberEntry)> = view
            .members()
            .into_iter()
            .filter_map(|m| view.entry(&m).map(|e| (m, *e)))
            .collect();
        // id and key lists ride the gap-delta / prefix codecs, which
        // (like every call site in the protocol) require sorted,
        // duplicate-free input
        let want_keys: Vec<Key> = want_keys.into_keys().collect();
        let want_members: Vec<ReplicaId> =
            want_members.into_keys().map(|r| ReplicaId(r as u32)).collect();
        let scoped_arcs: Vec<u32> = arcs.iter().map(|&(a, _)| a).collect();

        let msgs: Vec<Msg<M>> = vec![
            Msg::ClientGet { req, key: key.clone(), digest },
            Msg::ClientGetResp { req, ok, values: values.clone(), ctx: ctx.clone() },
            Msg::ClientPut {
                req,
                key: key.clone(),
                value: value.clone(),
                ctx: ctx.clone(),
                digest,
            },
            Msg::ClientPutResp { req, ok, values, ctx: ctx.clone() },
            Msg::RepGet { req, key: key.clone() },
            Msg::RepGetResp { req, key: key.clone(), state: state.clone() },
            Msg::RepPut { req, key: key.clone(), state: state.clone(), hint },
            Msg::RepPutAck { req },
            Msg::ReadRepair { key: key.clone(), state: state.clone(), hint },
            Msg::AaeRoot { root, digest },
            Msg::AaeArcRoots { arcs, digest },
            Msg::AaeLeaves { leaves: leaves.clone(), arcs: None, digest },
            Msg::AaeLeaves { leaves, arcs: Some(scoped_arcs), digest },
            Msg::AaeStates { states: entries.clone(), want: want_keys.clone() },
            Msg::AaeStatesResp { states: entries.clone() },
            Msg::RepWrite {
                req,
                key: key.clone(),
                value,
                ctx,
                hint,
            },
            Msg::RepWriteResp { req, key: key.clone(), state },
            Msg::JoinAnnounce { view: view.clone(), who, joining },
            Msg::Rejoin { view: view.clone() },
            Msg::RangeTransfer { id, entries: entries.clone() },
            Msg::TransferAck { id },
            Msg::RingEpoch { view },
            Msg::RingSummary { entries: summary },
            Msg::RingDelta { entries: delta_entries, want: want_members },
            Msg::GossipDigest { digest },
            Msg::Handoff { entries },
            Msg::HandoffAck { keys: want_keys },
        ];
        for msg in &msgs {
            check(&mech, msg)?;
        }
    }
}
