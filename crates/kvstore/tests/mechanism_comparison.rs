//! The store run with every mechanism under the same workloads — the
//! behavioural half of the paper's comparison (experiment E8's substance
//! as tests).
//!
//! *Correct* mechanisms (DVV, DVVSet, causal histories, unbounded
//! per-client VVs) must audit clean on every seed; the *deficient* ones
//! (per-server VVs, pruned per-client VVs, last-writer-wins) must exhibit
//! exactly the anomalies the paper attributes to them.

use dvv::mechanisms::{
    CausalHistoryMechanism, DvvMechanism, DvvSetMechanism, LamportMechanism, Mechanism,
    OrderedVvMechanism, VvClientMechanism, VvServerMechanism,
};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::StampedValue;

/// A contention-heavy configuration: few keys, many clients, so
/// concurrent writes through the same coordinator are common.
fn contended() -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        clients: 8,
        cycles_per_client: 15,
        client: ClientConfig {
            key_count: 2,
            think_time: simnet::Duration::from_micros(200),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn run_audit<M: Mechanism<StampedValue>>(seed: u64, mech: M) -> kvstore::AnomalyReport {
    let mut c = Cluster::new(seed, mech, contended());
    assert!(c.run(), "clients must finish");
    c.converge();
    c.anomaly_report()
}

#[test]
fn dvv_is_clean_across_seeds() {
    for seed in 0..5 {
        let r = run_audit(seed, DvvMechanism);
        assert!(r.is_clean(), "seed {seed}: {r:?}");
        assert_eq!(r.total_writes, 120);
    }
}

#[test]
fn dvvset_is_clean_across_seeds() {
    for seed in 0..5 {
        let r = run_audit(seed, DvvSetMechanism);
        assert!(r.is_clean(), "seed {seed}: {r:?}");
    }
}

#[test]
fn causal_histories_are_clean_across_seeds() {
    for seed in 0..5 {
        let r = run_audit(seed, CausalHistoryMechanism);
        assert!(r.is_clean(), "seed {seed}: {r:?}");
    }
}

#[test]
fn unbounded_vv_client_is_clean_across_seeds() {
    for seed in 0..5 {
        let r = run_audit(seed, VvClientMechanism::unbounded());
        assert!(r.is_clean(), "seed {seed}: {r:?}");
    }
}

#[test]
fn vv_server_loses_updates_figure_1b_at_scale() {
    // The per-server VV baseline destroys concurrent client writes.
    let mut total_lost = 0;
    for seed in 0..5 {
        let r = run_audit(seed, VvServerMechanism);
        total_lost += r.lost_updates;
    }
    assert!(
        total_lost > 0,
        "per-server VVs must lose concurrent client updates under contention"
    );
}

#[test]
fn ordered_vv_inherits_the_per_server_anomaly() {
    let mut total_lost = 0;
    for seed in 0..5 {
        let r = run_audit(seed, OrderedVvMechanism);
        total_lost += r.lost_updates;
    }
    assert!(total_lost > 0);
}

#[test]
fn pruned_vv_client_misbehaves() {
    // Aggressive pruning (bound 2 « 8 clients) must corrupt causality:
    // false concurrency (resurrected dominated siblings) and/or lost
    // updates, exactly as the paper warns.
    let mut anomalies = 0;
    for seed in 0..5 {
        let r = run_audit(seed, VvClientMechanism::pruned(2));
        anomalies += r.lost_updates + r.false_concurrency;
    }
    assert!(
        anomalies > 0,
        "optimistic pruning must produce causality anomalies under contention"
    );
}

#[test]
fn lamport_lww_loses_concurrent_updates() {
    let mut total_lost = 0;
    for seed in 0..5 {
        let r = run_audit(seed, LamportMechanism);
        total_lost += r.lost_updates;
        // LWW never keeps siblings:
        assert!(r.surviving_values <= r.keys);
    }
    assert!(
        total_lost > 0,
        "last-writer-wins must drop concurrent writes"
    );
}

#[test]
fn dvv_clock_size_bounded_by_replicas_while_vv_client_grows() {
    // The paper's claim 3: a DVV costs one entry per *replica server*
    // regardless of the client population, while a per-client VV grows
    // with every client that ever wrote. Measured as metadata bytes per
    // surviving version (sibling counts are identical across mechanisms —
    // both track the same true concurrency).
    let run_meta = |clients: usize, dvv: bool| -> f64 {
        let cfg = ClusterConfig {
            servers: 3,
            clients,
            cycles_per_client: 6,
            client: ClientConfig {
                key_count: 1,
                think_time: simnet::Duration::from_micros(200),
                ..ClientConfig::default()
            },
            ..ClusterConfig::default()
        };
        let report = if dvv {
            let mut c = Cluster::new(11, DvvMechanism, cfg);
            c.run();
            c.converge();
            c.metadata_report()
        } else {
            let mut c = Cluster::new(11, VvClientMechanism::unbounded(), cfg);
            c.run();
            c.converge();
            c.metadata_report()
        };
        report.mean_bytes_per_key / report.mean_siblings.max(1.0)
    };
    let dvv_small = run_meta(4, true);
    let dvv_big = run_meta(32, true);
    let vvc_small = run_meta(4, false);
    let vvc_big = run_meta(32, false);
    // DVV: per-version clock bounded by #replicas — flat in #clients
    assert!(
        dvv_big < dvv_small * 2.0,
        "dvv per-version clock should stay flat: {dvv_small:.1} → {dvv_big:.1}"
    );
    // VV-per-client: per-version clock grows with the client population
    assert!(
        vvc_big > vvc_small * 3.0,
        "vv-client per-version clock should grow: {vvc_small:.1} → {vvc_big:.1}"
    );
    assert!(
        dvv_big * 3.0 < vvc_big,
        "with many clients the paper's design must be much smaller: dvv={dvv_big:.1} vvc={vvc_big:.1}"
    );
}

#[test]
fn all_mechanisms_converge_replicas_identically() {
    // converge() must equalize all servers regardless of mechanism
    fn check<M: Mechanism<StampedValue>>(mech: M) {
        let mut c = Cluster::new(5, mech, contended());
        c.run();
        c.converge();
        for key in c.oracle().keys() {
            let s0 = c.surviving_at(0, &key);
            for i in 1..c.server_count() {
                assert_eq!(s0, c.surviving_at(i, &key));
            }
        }
    }
    check(DvvMechanism);
    check(DvvSetMechanism);
    check(VvClientMechanism::unbounded());
    check(VvServerMechanism);
    check(LamportMechanism);
    check(CausalHistoryMechanism);
    check(OrderedVvMechanism);
}
