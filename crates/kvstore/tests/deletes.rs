//! Causal deletes: tombstones written with contexts, concurrent-write
//! survival, and safe garbage collection — the extension every real
//! multi-version store needs on top of the paper's clocks.

use dvv::mechanisms::{DvvMechanism, DvvSetMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use kvstore::{StampedValue, WriteId};
use simnet::Duration;

#[test]
fn informed_delete_removes_everything_it_saw() {
    let mech = DvvMechanism;
    let mut st = Default::default();
    let origin = WriteOrigin::new(ReplicaId(0), ClientId(1));
    mech.write(
        &mut st,
        origin,
        &VersionVector::new(),
        StampedValue::new(WriteId::new(ClientId(1), 1), vec![1]),
    );
    let (_, ctx) = mech.read(&st);
    mech.write(
        &mut st,
        origin,
        &ctx,
        StampedValue::tombstone(WriteId::new(ClientId(1), 2)),
    );
    let (values, _) = mech.read(&st);
    assert_eq!(values.len(), 1, "only the tombstone survives");
    assert!(values[0].tombstone);
}

#[test]
fn concurrent_write_survives_a_delete() {
    // The whole point of causal deletes: a delete only kills what its
    // issuer saw. A concurrent add must NOT be deleted (the Amazon cart
    // "deleted item reappears" semantics, resolved correctly).
    let mech = DvvMechanism;
    let mut st = Default::default();
    mech.write(
        &mut st,
        WriteOrigin::new(ReplicaId(0), ClientId(1)),
        &VersionVector::new(),
        StampedValue::new(WriteId::new(ClientId(1), 1), vec![1]),
    );
    let (_, ctx) = mech.read(&st);
    // deleter saw v1; a concurrent writer did not see the delete
    mech.write(
        &mut st,
        WriteOrigin::new(ReplicaId(0), ClientId(2)),
        &ctx,
        StampedValue::tombstone(WriteId::new(ClientId(2), 1)),
    );
    mech.write(
        &mut st,
        WriteOrigin::new(ReplicaId(0), ClientId(3)),
        &ctx,
        StampedValue::new(WriteId::new(ClientId(3), 1), vec![3]),
    );
    let (values, _) = mech.read(&st);
    assert_eq!(values.len(), 2, "tombstone ∥ concurrent write");
    let live: Vec<_> = values.iter().filter(|v| v.is_live()).collect();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].id, WriteId::new(ClientId(3), 1));
}

#[test]
fn store_with_deletes_audits_clean_and_collects_garbage() {
    let config = ClusterConfig {
        servers: 3,
        clients: 6,
        cycles_per_client: 12,
        client: ClientConfig {
            key_count: 3,
            delete_fraction: 0.4,
            think_time: Duration::from_micros(300),
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    // The seed is load-bearing: with delete_fraction 0.4 roughly a fifth
    // of seeds end every key dominated by a live write, leaving nothing
    // for the tombstone and GC assertions below to observe. Seed 9 leaves
    // tombstones on several keys AND fully-deleted keys for GC to reclaim.
    let mut c = Cluster::new(9, DvvMechanism, config);
    assert!(c.run());
    c.converge();

    // deletes are writes: causality must still be exact
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");

    // some tombstones must actually have been written
    let tombstones: usize = c
        .oracle()
        .keys()
        .iter()
        .map(|k| {
            let all = c.surviving_at(0, k).len();
            let live = c.live_values_at(0, k).len();
            all - live
        })
        .sum();
    assert!(tombstones > 0, "delete_fraction 0.4 must leave tombstones");

    // GC reclaims exactly the fully-deleted keys, identically everywhere
    let keys_before = c.server(0).data().len();
    let reclaimed = c.collect_garbage();
    assert!(
        reclaimed.iter().all(|r| *r == reclaimed[0]),
        "{reclaimed:?}"
    );
    let keys_after = c.server(0).data().len();
    assert_eq!(keys_before - keys_after, reclaimed[0]);

    // every remaining key still has at least one live value or a
    // tombstone concurrent with live data
    for key in c.oracle().keys() {
        if c.server(0).data().contains_key(&key) {
            let all = c.surviving_at(0, &key);
            let live = c.live_values_at(0, &key);
            assert!(
                !live.is_empty() || all.is_empty(),
                "fully-dead key {key:?} survived GC"
            );
        }
    }
}

#[test]
fn deletes_work_with_dvvset_too() {
    let config = ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 2,
            delete_fraction: 0.5,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(13, DvvSetMechanism, config);
    assert!(c.run());
    c.converge();
    assert!(c.anomaly_report().is_clean());
    c.collect_garbage();
}

#[test]
fn premature_gc_would_resurrect_hint() {
    // Documented-safety check: GC before convergence CAN diverge; the
    // API contract (call after converge()) prevents it. This test pins
    // the contract by showing converged GC is idempotent and consistent.
    let config = ClusterConfig {
        servers: 3,
        clients: 3,
        cycles_per_client: 8,
        client: ClientConfig {
            key_count: 1,
            delete_fraction: 1.0, // everything ends deleted
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(5, DvvMechanism, config);
    assert!(c.run());
    c.converge();
    let first = c.collect_garbage();
    let second = c.collect_garbage();
    assert!(
        first.iter().sum::<usize>() >= 1,
        "all-delete workload reclaims the key"
    );
    assert_eq!(second.iter().sum::<usize>(), 0, "idempotent");
}
