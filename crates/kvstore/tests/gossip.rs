//! Gossip-based ring dissemination and the residual-copy/replication
//! bugfix sweep:
//!
//! * a membership change announced to one node must reach every server
//!   transitively — including members that were partitioned during the
//!   announce — through periodic digests, AAE piggybacks, eager pushes,
//!   and request epochs (with the harness force-sync disabled);
//! * read repair pushed to a sloppy-quorum fallback must record a hint
//!   obligation so the repaired copy is handed off and retired;
//! * transfer stats must count actual sends and dedupe duplicate
//!   deliveries by transfer id;
//! * the handoff timer must not flood duplicate `Handoff` messages at a
//!   slow peer;
//! * after churn under partition, no active server may end up holding a
//!   key outside its preference list, and the pre-convergence
//!   `surviving_union` no-loss oracle must stay clean across seeds.

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig, StoreProc};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::messages::Msg;
use kvstore::node::StoreNode;
use kvstore::value::{Key, StampedValue, WriteId};
use ring::{HashRing, MemberStatus, RingView};
use simnet::{Duration, NetworkConfig, NodeId, Simulation, TraceEvent};

type M = DvvMechanism;

/// Finds a key together with a server that is *not* in its preference
/// list (requires more servers than the replication factor).
fn key_with_outsider(servers: u32, n: usize) -> (Key, ReplicaId, Vec<ReplicaId>) {
    let ring = HashRing::with_vnodes((0..servers).map(ReplicaId), Cluster::<M>::VNODES);
    for i in 0..10_000 {
        let key = format!("key-{i}").into_bytes();
        let prefs = ring.preference_list(&key, n);
        if let Some(outsider) = (0..servers).map(ReplicaId).find(|r| !prefs.contains(r)) {
            return (key, outsider, prefs);
        }
    }
    panic!("no key with a non-owner among {servers} servers");
}

fn sample_state(origin: ReplicaId) -> <M as Mechanism<StampedValue>>::State {
    let mech = DvvMechanism;
    let mut st = Default::default();
    mech.write(
        &mut st,
        WriteOrigin::new(origin, ClientId(1)),
        &VersionVector::new(),
        StampedValue::new(WriteId::new(ClientId(1), 1), vec![0xAB; 24]),
    );
    st
}

#[test]
fn gossip_spreads_a_join_through_a_partition() {
    // Server 2 is partitioned away while a spare joins. The join cannot
    // settle (a member is unreachable), but it is not rolled back either:
    // once the partition heals, gossip alone must converge server 2 onto
    // the new ring within bounded virtual time — no force-sync.
    let mut cfg = ClusterConfig {
        servers: 4,
        spare_servers: 1,
        clients: 2,
        cycles_per_client: 10,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(50),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 6,
            ..ClientConfig::default()
        },
        membership_settle_budget: Duration::from_secs(2),
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(17, DvvMechanism, cfg);

    c.run_for(Duration::from_millis(30));
    let version_before = c.ring_epoch();
    let digest_before = c.view_digest();

    // cut server 2 off (node ids: servers 0..4, spare 4, clients 5..7)
    let others: Vec<NodeId> = (0..7u32).map(NodeId).filter(|n| n.0 != 2).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
    c.set_replica_status(ReplicaId(2), false);

    let settled = c.add_node_live(4);
    assert!(!settled, "a partitioned member cannot merge the view");
    assert_eq!(
        c.ring_epoch(),
        version_before + 1,
        "one announcement, one incarnation"
    );
    let digest = c.view_digest();
    for i in [0usize, 1, 3, 4] {
        assert_eq!(
            c.server(i).view_digest(),
            digest,
            "reachable member {i} must have merged the join via gossip"
        );
    }
    assert_eq!(
        c.server(2).view_digest(),
        digest_before,
        "the partitioned member must still be on the old view"
    );
    assert!(c.server(4).is_active(), "the joiner serves regardless");
    assert!(
        c.server(4).stats().transfers_in > 0,
        "reachable owners streamed the joiner's ranges"
    );

    // heal: gossip (periodic digests + AAE piggybacks) must now close the
    // gap without any harness help, within bounded virtual time
    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(2), true);
    c.run_for(Duration::from_millis(500));
    for i in c.member_slots() {
        assert_eq!(
            c.server(i).view_digest(),
            digest,
            "server {i} did not converge via gossip after the heal"
        );
    }
    let rounds: u64 = c
        .member_slots()
        .into_iter()
        .map(|i| c.server(i).stats().gossip_rounds)
        .sum();
    assert!(rounds > 0, "convergence must have been gossip-driven");

    // the workload still finishes and loses nothing
    assert!(c.run(), "sessions finish after the healed join");
    c.run_for(Duration::from_secs(2));
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn aae_piggybacked_digests_converge_views_without_gossip_timer() {
    // With the periodic gossip timer disabled, view digests still ride on
    // anti-entropy roots (plus the eager push after adoption) — a join
    // must settle and every member must converge onto the new epoch.
    let mut cfg = ClusterConfig {
        servers: 3,
        spare_servers: 1,
        clients: 2,
        cycles_per_client: 10,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(50),
            gossip_interval: Duration::ZERO,
            ..StoreConfig::default()
        },
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(11, DvvMechanism, cfg);

    c.run_for(Duration::from_millis(30));
    assert!(
        c.add_node_live(3),
        "join must settle on AAE piggybacks alone"
    );
    for i in c.member_slots() {
        assert_eq!(c.server(i).view_digest(), c.view_digest(), "server {i}");
    }
    assert!(c.run());
    c.converge();
    assert!(c.anomaly_report().is_clean());
}

#[test]
fn stale_coordinator_catches_up_from_request_digests() {
    // Both the gossip timer and AAE are off, so after the heal the *only*
    // dissemination channel left is the request path: clients that
    // learned the new view (from RingEpoch pushes) route to the stale
    // server, whose `note_peer_digest` sees a mismatched digest in the
    // request and pushes its own (stale) view — the client merges,
    // notices the server lacked entries, and pushes the merged view
    // back, so the exchange converges the server too.
    let mut cfg = ClusterConfig {
        servers: 4,
        spare_servers: 1,
        clients: 3,
        // enough cycles that plenty of traffic remains after the failed
        // join's supervision window — the request path IS the test
        cycles_per_client: 150,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::ZERO,
            gossip_interval: Duration::ZERO,
            ..StoreConfig::default()
        },
        client: ClientConfig {
            // wide enough that the stale server owns keys under the new
            // ring, so post-heal traffic actually routes to it
            key_count: 24,
            ..ClientConfig::default()
        },
        membership_settle_budget: Duration::from_millis(500),
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(29, DvvMechanism, cfg);

    c.run_for(Duration::from_millis(30));
    let others: Vec<NodeId> = (0..8u32).map(NodeId).filter(|n| n.0 != 2).collect();
    c.sim_mut().network_mut().partition_two(others, [NodeId(2)]);
    c.set_replica_status(ReplicaId(2), false);
    let old_digest = c.server(2).view_digest();
    assert!(!c.add_node_live(4), "join cannot settle past the partition");

    c.sim_mut().network_mut().heal();
    c.set_replica_status(ReplicaId(2), true);
    assert_eq!(c.server(2).view_digest(), old_digest, "still stale");

    // client traffic alone must now catch server 2 up
    assert!(c.run(), "sessions finish");
    assert_eq!(
        c.server(2).view_digest(),
        c.view_digest(),
        "a request with a mismatched digest must have converged the views"
    );
}

#[test]
fn read_repair_to_a_substitute_records_a_hint_and_retires_the_copy() {
    // Owners p0/p1 hold a value; owner p2 is down, so a GET assembles its
    // quorum with fallback `d`. The read repair pushed to `d` must carry
    // the hint naming p2 — pre-fix it carried none, leaving an untracked
    // residual copy at `d` forever. Once p2 recovers, the handoff must
    // deliver the state and retire d's copy.
    let (key, outsider, owners) = key_with_outsider(4, 3);
    let mut cfg = ClusterConfig {
        servers: 4,
        clients: 1,
        cycles_per_client: 0, // traffic injected via post()
        store: StoreConfig {
            n: 3,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::ZERO,
            gossip_interval: Duration::ZERO,
            handoff_interval: Duration::from_millis(20),
            handoff_retry_interval: Duration::from_millis(200),
            ..StoreConfig::default()
        },
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(1_000);
    let mut c = Cluster::new(7, DvvMechanism, cfg);
    let digest = c.view_digest();
    let (p0, p2) = (owners[0], owners[2]);

    // identical state at the two reachable owners; nothing at `d`
    let state = sample_state(p0);
    for owner in [owners[0], owners[1]] {
        if let StoreProc::Server(s) = c.sim_mut().process_mut(owner.0 as usize) {
            s.merge_state_direct(&key, &state);
        }
    }
    c.set_replica_status(p2, false);

    let get: Msg<M> = Msg::ClientGet {
        req: 1,
        key: key.clone(),
        digest,
    };
    c.sim_mut().post(NodeId(p0.0), get);
    c.run_for(Duration::from_millis(10));

    let fallback = c.server(outsider.0 as usize);
    assert!(
        fallback.data().contains_key(&key),
        "the fallback received the read repair"
    );
    assert!(
        fallback.hint_obligations().contains(&(key.clone(), p2)),
        "the repaired copy must carry a hint for the down owner, got {:?}",
        fallback.hint_obligations()
    );
    assert!(c.server(p0.0 as usize).stats().read_repairs >= 1);

    // recovery: the hint drains and the residual copy is retired
    c.set_replica_status(p2, true);
    c.run_for(Duration::from_millis(500));
    let fallback = c.server(outsider.0 as usize);
    assert_eq!(fallback.hint_count(), 0, "hint must drain after recovery");
    assert!(
        !fallback.data().contains_key(&key),
        "a handed-off copy the fallback does not own must be retired"
    );
    assert!(fallback.stats().handoffs >= 1);
    assert!(
        c.server(p2.0 as usize).data().contains_key(&key),
        "the intended owner received the state"
    );
}

#[test]
fn transfer_stats_count_sends_and_dedupe_duplicate_receipts() {
    // A leave-drain whose acks are lost: the donor re-sends the same
    // batch every retry interval (each send counted), the receiver merges
    // the duplicates but counts the batch once — so `transfers_in` can
    // never exceed `transfers_out`, where pre-fix the receiver counted
    // every duplicate and the donor counted the batch once.
    let mech = DvvMechanism;
    let replicas = [ReplicaId(0), ReplicaId(1)];
    let view = RingView::from_members(replicas);
    let cfg = StoreConfig {
        n: 1,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::ZERO,
        handoff_interval: Duration::ZERO,
        gossip_interval: Duration::ZERO,
        vnodes: 16,
        ..StoreConfig::default()
    };
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        5,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(ReplicaId(0), mech, cfg, view.clone())),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, cfg, view.clone())),
        ],
    );
    for k in 0..4u8 {
        let st = sample_state(ReplicaId(0));
        if let StoreProc::Server(s) = sim.process_mut(0) {
            s.merge_state_direct(&[b'k', k], &st);
        }
    }

    // acks (and everything else) from 1 to 0 are lost
    sim.network_mut().block_link(NodeId(1), NodeId(0));
    let mut leave = view;
    leave.bump(&ReplicaId(0), MemberStatus::Leaving);
    sim.post(
        NodeId(0),
        Msg::JoinAnnounce {
            view: leave,
            who: ReplicaId(0),
            joining: false,
        },
    );
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(200));

    let (out_mid, in_mid) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => {
            (a.stats().transfers_out, b.stats().transfers_in)
        }
        _ => unreachable!(),
    };
    assert!(
        out_mid >= 3,
        "every retry send must be counted, got {out_mid}"
    );
    assert_eq!(in_mid, 1, "duplicate deliveries of one batch count once");

    // heal the ack path: the drain completes and the totals stay sane
    sim.network_mut().unblock_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(400));
    let (donor, receiver) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert!(donor.drain_complete(), "drain settles once acks flow");
    assert_eq!(receiver.stats().transfers_in, 1);
    assert!(
        receiver.stats().transfers_in <= donor.stats().transfers_out,
        "received batches can never exceed sent batches"
    );
    for k in 0..4u8 {
        assert!(
            receiver.data().contains_key([b'k', k].as_slice()),
            "key {k} arrived despite the lossy ack path"
        );
    }
}

#[test]
fn handoff_inflight_tracking_suppresses_duplicate_sends() {
    // A hint whose intended owner looks up but does not answer: the
    // handoff timer fires every 10ms, but only ONE Handoff may be in
    // flight until the retry interval (200ms) passes — pre-fix every tick
    // re-sent the state, flooding ~10 duplicates per 100ms.
    let mech = DvvMechanism;
    let replicas = [ReplicaId(0), ReplicaId(1)];
    let view = RingView::from_members(replicas);
    let cfg = StoreConfig {
        n: 2,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::ZERO,
        gossip_interval: Duration::ZERO,
        handoff_interval: Duration::from_millis(10),
        handoff_retry_interval: Duration::from_millis(200),
        vnodes: 16,
        ..StoreConfig::default()
    };
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        9,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(ReplicaId(0), mech, cfg, view.clone())),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, cfg, view)),
        ],
    );
    sim.trace_mut().enable();
    // seed a hinted copy at node 1, intended for node 0
    sim.post(
        NodeId(1),
        Msg::RepPut {
            req: 1,
            key: b"hinted".to_vec(),
            state: sample_state(ReplicaId(0)),
            hint: Some(ReplicaId(0)),
        },
    );
    // node 0 is believed up but unreachable: handoffs are lost
    sim.network_mut().block_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(105));

    let sends_1_to_0 = sim
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sent { from, to, .. } if *from == NodeId(1) && *to == NodeId(0)))
        .count();
    assert_eq!(
        sends_1_to_0, 1,
        "one handoff in flight per retry interval, not one per tick"
    );

    // once reachable, the retry goes through and the obligation drains
    sim.network_mut().unblock_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(600));
    let (intended, fallback) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert_eq!(fallback.hint_count(), 0, "hint drained after the retry");
    assert_eq!(fallback.stats().handoffs, 1);
    assert!(intended.data().contains_key(b"hinted".as_slice()));
    assert!(
        fallback.data().contains_key(b"hinted".as_slice()),
        "with n = 2 the fallback is itself an owner: the copy stays"
    );
}

#[test]
fn forced_delta_gossip_converges_incomparable_views_with_tombstones() {
    // Two members whose views are *incomparable*: node 0 holds a newer
    // incarnation of its own entry, node 1 holds a tombstone node 0 has
    // never seen. Under `DeltaPolicy::Force` every reconciliation runs
    // the summary/delta protocol — this pins the push-back half: a
    // receiver that merges a delta and finds the sender lacked entries
    // must send those entries back (through the same centralized merge
    // as a full push), or the tombstone side never learns the bump and
    // the digests never meet.
    let mech = DvvMechanism;
    let base = RingView::from_members([ReplicaId(0), ReplicaId(1)]);
    let mut va = base.clone();
    va.bump(&ReplicaId(0), MemberStatus::Up);
    let mut vb = base.clone();
    vb.set(ReplicaId(7), 1, MemberStatus::Removed);

    let mut expected = base;
    expected.bump(&ReplicaId(0), MemberStatus::Up);
    expected.set(ReplicaId(7), 1, MemberStatus::Removed);

    let cfg = StoreConfig {
        n: 1,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::ZERO,
        handoff_interval: Duration::ZERO,
        gossip_interval: Duration::from_millis(20),
        delta_views: kvstore::DeltaPolicy::Force,
        vnodes: 16,
        ..StoreConfig::default()
    };
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        3,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(ReplicaId(0), mech, cfg, va)),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, cfg, vb)),
        ],
    );
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(300));

    let (a, b) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert_eq!(
        a.view_digest(),
        expected.digest(),
        "node 0 must have merged the tombstone via the delta exchange"
    );
    assert_eq!(
        b.view_digest(),
        expected.digest(),
        "node 1 must have received the bumped entry pushed back"
    );
    // the reconciliation really went over the wire, and was accounted
    assert!(
        a.wire_stats()
            .bytes(kvstore::messages::MsgClass::Membership)
            > 0
    );
    assert!(
        b.wire_stats()
            .bytes(kvstore::messages::MsgClass::Membership)
            > 0
    );
}

#[test]
fn batched_transfers_dedupe_by_batch_across_retries() {
    // Ten keys drain from a leaver with `transfer_batch_keys = 4`: the
    // donor queues ceil(10/4) = 3 batches. With the ack path cut, every
    // retry re-sends all three (each send counted); the receiver merges
    // the duplicates but counts each distinct batch id exactly once —
    // so `transfers_in` is the batch count, not the delivery count.
    let mech = DvvMechanism;
    let replicas = [ReplicaId(0), ReplicaId(1)];
    let view = RingView::from_members(replicas);
    let cfg = StoreConfig {
        n: 1,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::ZERO,
        handoff_interval: Duration::ZERO,
        gossip_interval: Duration::ZERO,
        transfer_batch_keys: 4,
        vnodes: 16,
        ..StoreConfig::default()
    };
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        5,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(ReplicaId(0), mech, cfg, view.clone())),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, cfg, view.clone())),
        ],
    );
    for k in 0..10u8 {
        let st = sample_state(ReplicaId(0));
        if let StoreProc::Server(s) = sim.process_mut(0) {
            s.merge_state_direct(&[b'k', k], &st);
        }
    }

    sim.network_mut().block_link(NodeId(1), NodeId(0));
    let mut leave = view;
    leave.bump(&ReplicaId(0), MemberStatus::Leaving);
    sim.post(
        NodeId(0),
        Msg::JoinAnnounce {
            view: leave,
            who: ReplicaId(0),
            joining: false,
        },
    );
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(200));

    let (out_mid, in_mid) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => {
            (a.stats().transfers_out, b.stats().transfers_in)
        }
        _ => unreachable!(),
    };
    assert!(
        out_mid >= 6,
        "three batches retried at least once must all be counted, got {out_mid}"
    );
    assert_eq!(
        in_mid, 3,
        "duplicate deliveries dedupe per batch id: 10 keys / 4 per batch"
    );

    sim.network_mut().unblock_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(400));
    let (donor, receiver) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert!(donor.drain_complete(), "drain settles once acks flow");
    assert_eq!(receiver.stats().transfers_in, 3);
    for k in 0..10u8 {
        assert!(
            receiver.data().contains_key([b'k', k].as_slice()),
            "key {k} arrived despite the lossy ack path"
        );
    }
}

#[test]
fn handoff_batches_coalesce_per_target_and_settle_per_key() {
    // Two hinted copies for the same recovered owner fall due on the
    // same handoff tick: they must travel as ONE batched `Handoff` (one
    // send on the wire), and the single ack must settle both
    // obligations.
    let mech = DvvMechanism;
    let replicas = [ReplicaId(0), ReplicaId(1)];
    let view = RingView::from_members(replicas);
    let cfg = StoreConfig {
        n: 2,
        r: 1,
        w: 1,
        anti_entropy_interval: Duration::ZERO,
        gossip_interval: Duration::ZERO,
        handoff_interval: Duration::from_millis(10),
        handoff_retry_interval: Duration::from_millis(200),
        vnodes: 16,
        ..StoreConfig::default()
    };
    let mut sim: Simulation<StoreProc<M>> = Simulation::new(
        9,
        NetworkConfig::default(),
        vec![
            StoreProc::Server(StoreNode::new(ReplicaId(0), mech, cfg, view.clone())),
            StoreProc::Server(StoreNode::new(ReplicaId(1), mech, cfg, view)),
        ],
    );
    sim.trace_mut().enable();
    for (req, key) in [(1u64, b"hinted-a".to_vec()), (2, b"hinted-b".to_vec())] {
        sim.post(
            NodeId(1),
            Msg::RepPut {
                req,
                key,
                state: sample_state(ReplicaId(0)),
                hint: Some(ReplicaId(0)),
            },
        );
    }
    // node 0 believed up but unreachable: the batch stays in flight
    sim.network_mut().block_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(105));

    let sends_1_to_0 = sim
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sent { from, to, .. } if *from == NodeId(1) && *to == NodeId(0)))
        .count();
    assert_eq!(
        sends_1_to_0, 1,
        "two due hints to one target coalesce into one batched Handoff"
    );

    sim.network_mut().unblock_link(NodeId(1), NodeId(0));
    sim.run_until(simnet::SimTime::ZERO + Duration::from_millis(600));
    let (intended, fallback) = match (sim.process(0), sim.process(1)) {
        (StoreProc::Server(a), StoreProc::Server(b)) => (a, b),
        _ => unreachable!(),
    };
    assert_eq!(fallback.hint_count(), 0, "both hints drained");
    assert_eq!(
        fallback.stats().handoffs,
        2,
        "a batch ack settles each key individually"
    );
    for key in [b"hinted-a".as_slice(), b"hinted-b".as_slice()] {
        assert!(intended.data().contains_key(key));
    }
}

#[test]
fn churn_under_partition_leaves_no_residual_copies_across_seeds() {
    // The gossip property suite: traffic + a healed partition + live
    // join/leave/join churn, with the harness force-sync disabled
    // (default). After the workload and a quiescent period:
    //  (a) every active server's epoch converged through gossip alone,
    //  (b) no server holds a key outside its preference list,
    //  (c) the pre-convergence surviving-union no-loss oracle is clean.
    for seed in workloads::churn_seeds(&[5, 13, 21]) {
        let mut cfg = ClusterConfig {
            servers: 3,
            spare_servers: 2,
            clients: 4,
            cycles_per_client: 30,
            store: StoreConfig {
                n: 2,
                r: 2,
                w: 2,
                anti_entropy_interval: Duration::from_millis(50),
                ..StoreConfig::default()
            }
            // the soak lane re-runs this suite with DELTA_PROTOCOLS=force
            .with_env_delta(),
            client: ClientConfig {
                key_count: 6,
                ..ClientConfig::default()
            },
            ..ClusterConfig::default()
        }
        // the faults lane re-runs this suite with NET_FAULTS=hostile
        .with_env_net_faults();
        cfg.deadline = Duration::from_secs(2_000);
        let mut c = Cluster::new(seed, DvvMechanism, cfg);

        // partitioned phase: sloppy quorums + hints carry the load
        c.run_for(Duration::from_millis(30));
        let others: Vec<NodeId> = (0..9u32).map(NodeId).filter(|n| n.0 != 1).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(1)]);
        c.set_replica_status(ReplicaId(1), false);
        c.run_for(Duration::from_millis(60));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(1), true);
        c.run_for(Duration::from_millis(20));

        // churn, disseminated by gossip only
        assert!(c.add_node_live(3), "seed {seed}: join 3 settled");
        assert!(c.remove_node_live(0), "seed {seed}: leave 0 settled");
        assert!(c.add_node_live(4), "seed {seed}: join 4 settled");

        assert!(c.run(), "seed {seed}: sessions finish after churn");
        // quiesce: no client traffic; AAE, handoff and transfer retries
        // get to finish their obligations
        c.run_for(Duration::from_secs(3));

        // (a) views converged with force-sync disabled
        for i in c.member_slots() {
            assert_eq!(
                c.server(i).view_digest(),
                c.view_digest(),
                "seed {seed}: server {i} view diverged"
            );
        }
        // (b) residual-copy audit
        let residuals = c.residual_copies();
        assert!(
            residuals.is_empty(),
            "seed {seed}: keys held outside preference lists: {residuals:?}"
        );
        // (c) no acked write lost, checked on the pre-convergence union
        let oracle = c.oracle();
        for key in oracle.keys() {
            let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
            assert_eq!(lost, 0, "seed {seed}: write lost for {key:?}");
        }

        c.converge();
        let report = c.anomaly_report();
        assert!(report.is_clean(), "seed {seed}: {report:?}");
        assert!(report.acked_writes > 0, "seed {seed}: no acked writes");
    }
}
