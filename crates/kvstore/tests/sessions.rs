//! Session-level guarantees: accumulated contexts give monotonic
//! sessions, read-only mixes work, and sessions never conflict with
//! their own causal past.

use dvv::mechanisms::DvvMechanism;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use simnet::{Duration, LatencyModel, LinkConfig, NetworkConfig};

#[test]
fn read_only_mix_reduces_writes() {
    let config = |read_only: f64| ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 20,
        client: ClientConfig {
            key_count: 2,
            read_only_fraction: read_only,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut rw = Cluster::new(3, DvvMechanism, config(0.0));
    assert!(rw.run());
    let mut ro = Cluster::new(3, DvvMechanism, config(0.8));
    assert!(ro.run());

    let rw_writes = rw.anomaly_report().total_writes;
    let ro_writes = ro.anomaly_report().total_writes;
    assert_eq!(rw_writes, 80, "pure RMW: one write per cycle");
    assert!(
        ro_writes < rw_writes / 2,
        "80% read-only cycles must cut writes: {ro_writes} vs {rw_writes}"
    );
    // reads happened for every cycle either way
    assert_eq!(ro.latency_report().get.count(), 80);

    ro.converge();
    assert!(ro.anomaly_report().is_clean());
}

#[test]
fn sessions_never_self_conflict() {
    // A single client doing RMW cycles must never produce siblings by
    // itself (every write dominates its previous one), even on a slow,
    // jittery network where quorum reads could regress without context
    // accumulation.
    let config = ClusterConfig {
        servers: 3,
        clients: 1,
        cycles_per_client: 30,
        client: ClientConfig {
            key_count: 1,
            think_time: Duration::from_micros(100),
            ..ClientConfig::default()
        },
        network: NetworkConfig::uniform(LinkConfig {
            latency: LatencyModel::Uniform {
                lo: Duration::from_micros(100),
                hi: Duration::from_micros(2_000),
            },
            ..LinkConfig::default()
        }),
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(17, DvvMechanism, config);
    assert!(c.run());
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(
        report.surviving_values, 1,
        "a lone session must converge to exactly one version"
    );
}

#[test]
fn interleaved_sessions_on_disjoint_keys_never_conflict() {
    // Clients on disjoint keys: zero siblings anywhere.
    let config = ClusterConfig {
        servers: 3,
        clients: 4,
        cycles_per_client: 10,
        client: ClientConfig {
            key_count: 16, // plenty of keys ⇒ rare contention by chance
            zipf_alpha: 0.0,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(23, DvvMechanism, config);
    assert!(c.run());
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean());
    // most keys should have exactly one survivor (low contention)
    let single = c
        .oracle()
        .keys()
        .iter()
        .filter(|k| c.surviving_at(0, k).len() == 1)
        .count();
    assert!(
        single as f64 >= c.oracle().keys().len() as f64 * 0.5,
        "uniform 16-key workload should mostly be uncontended"
    );
}
