//! Bytes-on-the-wire: the delta protocols (summary/delta view gossip,
//! arc-scoped anti-entropy) must converge the SAME scenario to the SAME
//! states as the full-push protocols — while spending a small fraction
//! of the reconciliation bytes.
//!
//! The scenario is clientless and fully scripted so both runs see an
//! identical write set: a preloaded keyspace, three
//! partition/divergence/heal waves against one member, live churn (a
//! join and a leave), then a long AAE quiesce. Nothing here calls
//! `converge()` before reading the wire report — the bytes measured are
//! the bytes the protocols actually spent converging.

use std::collections::BTreeMap;

use dvv::mechanisms::{DvvMechanism, Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId, VersionVector};
use kvstore::cluster::{Cluster, ClusterConfig, StoreProc};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::messages::WireStats;
use kvstore::value::{Key, StampedValue, WriteId};
use kvstore::DeltaPolicy;
use ring::HashRing;
use simnet::{Duration, NodeId};

type M = DvvMechanism;
type State = <M as Mechanism<StampedValue>>::State;

const SERVERS: u32 = 6;
const N: usize = 3;
/// Large enough that a full leaf push (every shared key) dwarfs the
/// per-arc root exchange — the regime the delta protocol targets.
const KEYS: usize = 20_000;
/// Kept small so divergence stays concentrated in a few arcs.
const DIVERGENT: usize = 10;

fn preload_state(origin: ReplicaId, key_idx: usize) -> State {
    let mech = DvvMechanism;
    let mut st = State::default();
    mech.write(
        &mut st,
        WriteOrigin::new(origin, ClientId(9_000)),
        &VersionVector::new(),
        StampedValue::new(
            WriteId::new(ClientId(9_000), key_idx as u64 + 1),
            vec![0x11; 12],
        ),
    );
    st
}

/// A read-modify-write at `origin`'s replica: reads the node's current
/// state and context, writes a superseding value on top. Minting the
/// dot against the live state (rather than an empty one) is what makes
/// the write a NEW event — a write built on an empty state would reuse
/// dot `(origin, 1)` and vanish into the preload on merge.
fn inject_write(c: &mut Cluster<M>, origin: ReplicaId, key: &Key, wave: u64, i: u64) {
    let mech = DvvMechanism;
    let client = ClientId(7_000 + wave);
    let mut st = c
        .server(origin.0 as usize)
        .data()
        .get(key)
        .cloned()
        .unwrap_or_default();
    let (_, ctx) = mech.read(&st);
    mech.write(
        &mut st,
        WriteOrigin::new(origin, client),
        &ctx,
        StampedValue::new(WriteId::new(client, i + 1), vec![0x22; 8]),
    );
    if let StoreProc::Server(s) = c.sim_mut().process_mut(origin.0 as usize) {
        s.merge_state_direct(key, &st);
    }
}

/// Runs the scripted churn+heal+AAE scenario under `policy` and returns
/// the cluster (quiesced, NOT harness-converged) for inspection.
fn run_scenario(seed: u64, policy: DeltaPolicy) -> Cluster<M> {
    let mut cfg = ClusterConfig {
        servers: SERVERS as usize,
        spare_servers: 1,
        clients: 0,
        cycles_per_client: 0,
        store: StoreConfig {
            n: N,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(100),
            gossip_interval: Duration::from_millis(300),
            delta_views: policy,
            delta_aae: policy,
            ..StoreConfig::default()
        },
        client: ClientConfig::default(),
        ..ClusterConfig::default()
    };
    cfg.deadline = Duration::from_secs(2_000);
    let mut c = Cluster::new(seed, DvvMechanism, cfg);

    // preload: every key replicated at its full preference list
    let ring = HashRing::with_vnodes((0..SERVERS).map(ReplicaId), Cluster::<M>::VNODES);
    let keys: Vec<Key> = (0..KEYS)
        .map(|i| format!("user:{i:04}").into_bytes())
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let prefs = ring.preference_list(key, N);
        let st = preload_state(prefs[0], i);
        for owner in prefs {
            if let StoreProc::Server(s) = c.sim_mut().process_mut(owner.0 as usize) {
                s.merge_state_direct(key, &st);
            }
        }
    }
    c.run_for(Duration::from_millis(150));

    // live churn first: the spare joins, a founding member drains out.
    // The join's transfer/AAE interleaving is paid here, before the
    // measurement-relevant divergence waves, under both policies alike.
    assert!(c.add_node_live(SERVERS as usize), "join settles");
    assert!(c.remove_node_live(0), "leave settles");
    c.run_for(Duration::from_secs(1));

    // The divergence write set: keys from ONE Merkle arc of the
    // post-churn ring that member 1 replicates. Anti-entropy divergence
    // is local by nature — a coordinator's backlog for a down peer
    // covers the ranges they co-own, not the whole keyspace — and a
    // single arc is the unit the arc-scoped exchange can isolate.
    let victim = ReplicaId(1);
    let post_ring = HashRing::with_vnodes((1..=SERVERS).map(ReplicaId), Cluster::<M>::VNODES);
    let bounds = post_ring.arc_bounds();
    let arc_of = |key: &Key| -> usize {
        let p = ring::hash_key(key);
        // arc i covers (bounds[i-1], bounds[i]]; arc 0 wraps
        bounds.partition_point(|b| *b < p) % bounds.len()
    };
    let mut by_arc: BTreeMap<usize, Vec<Key>> = BTreeMap::new();
    for k in &keys {
        let idx = arc_of(k);
        if post_ring.arc_prefs(idx, N).contains(&victim) {
            by_arc.entry(idx).or_default().push(k.clone());
        }
    }
    // smallest arc that can hold the whole divergent set: the unit the
    // arc-scoped exchange isolates, at its cheapest
    let (arc, group) = by_arc
        .into_iter()
        .filter(|(_, v)| v.len() >= DIVERGENT)
        .min_by_key(|(_, v)| v.len())
        .expect("some arc replicates >= DIVERGENT keys at the victim");
    let origin = *post_ring
        .arc_prefs(arc, N)
        .iter()
        .find(|r| **r != victim)
        .unwrap();
    let divergent: Vec<Key> = group.into_iter().take(DIVERGENT).collect();
    assert_eq!(divergent.len(), DIVERGENT, "keyspace too small to cluster");

    for wave in 0..4u64 {
        let others: Vec<NodeId> = (0..SERVERS + 1).map(NodeId).filter(|n| n.0 != 1).collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(1)]);
        c.set_replica_status(victim, false);
        let writes = divergent.clone();
        for (i, key) in writes.iter().enumerate() {
            inject_write(&mut c, origin, key, wave, i as u64);
        }
        c.run_for(Duration::from_millis(400));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(victim, true);
        c.run_for(Duration::from_millis(500));
    }

    // quiesce: AAE, handoff and transfer retries finish their work
    c.run_for(Duration::from_secs(3));
    c
}

fn slot_contents(c: &Cluster<M>) -> BTreeMap<usize, BTreeMap<Key, State>> {
    c.member_slots()
        .into_iter()
        .map(|i| {
            let data = c
                .server(i)
                .data()
                .iter()
                .map(|(k, s)| (k.clone(), s.clone()))
                .collect();
            (i, data)
        })
        .collect()
}

#[test]
fn delta_protocols_converge_identically_and_shrink_reconciliation_bytes() {
    for seed in workloads::churn_seeds(&[31]) {
        let full = run_scenario(seed, DeltaPolicy::Full);
        let force = run_scenario(seed, DeltaPolicy::Force);

        // both runs converged on their own (no harness converge)
        for c in [&full, &force] {
            for i in c.member_slots() {
                assert_eq!(
                    c.server(i).view_digest(),
                    c.view_digest(),
                    "seed {seed}: server {i} view diverged"
                );
            }
            let residuals = c.residual_copies();
            assert!(
                residuals.is_empty(),
                "seed {seed}: residual copies: {residuals:?}"
            );
        }

        // equivalence oracle: byte-identical membership, byte-identical
        // per-slot key states — the delta protocols are an encoding
        // change, not a behaviour change
        assert_eq!(
            full.view_digest(),
            force.view_digest(),
            "seed {seed}: final views must be identical"
        );
        assert_eq!(
            slot_contents(&full),
            slot_contents(&force),
            "seed {seed}: delta and full runs must converge to identical states"
        );

        // the headline: reconciliation traffic (membership + AAE) drops
        // by at least 5x; transfers/handoff move the same key states
        // under either protocol and are excluded by construction.
        // (captured unless the assert below fails — diagnostics)
        for (name, c) in [("full", &full), ("force", &force)] {
            let r = c.wire_report();
            for class in kvstore::messages::MsgClass::ALL {
                eprintln!(
                    "seed {seed} {name}: {} = {} bytes / {} msgs",
                    class.name(),
                    r.bytes(class),
                    r.msgs(class)
                );
            }
        }
        let (fb, db) = (
            full.wire_report().reconciliation_bytes(),
            force.wire_report().reconciliation_bytes(),
        );
        assert!(db > 0, "seed {seed}: delta run must have reconciled");
        assert!(
            fb >= 5 * db,
            "seed {seed}: expected >= 5x reconciliation savings, got {fb} vs {db} ({:.1}x)",
            fb as f64 / db as f64
        );
    }
}

/// The per-class accounting itself: a scripted run must attribute bytes
/// to every class it exercised, and the roll-up must equal the sum of
/// parts.
#[test]
fn wire_report_attributes_bytes_per_class() {
    let c = run_scenario(97, DeltaPolicy::Auto);
    let report: WireStats = c.wire_report();
    use kvstore::messages::MsgClass;
    for class in [
        MsgClass::AntiEntropy,
        MsgClass::Membership,
        MsgClass::Transfer,
        MsgClass::Handoff,
    ] {
        assert!(
            report.bytes(class) > 0,
            "scenario exercised {} but no bytes were recorded",
            class.name()
        );
        assert!(report.msgs(class) > 0);
    }
    // clientless, divergence injected by direct merge: no client or
    // replication-path traffic to attribute
    assert_eq!(report.bytes(MsgClass::Client), 0);
    assert_eq!(report.bytes(MsgClass::Replication), 0);
    let sum: u64 = MsgClass::ALL.iter().map(|c| report.bytes(*c)).sum();
    assert_eq!(report.total_bytes(), sum);
}
