//! Crash/restart recovery scenarios over the deterministic simulation:
//!
//! * a crashed replica restarted from its durable log replays exactly
//!   the prefix it had synced — with a write-through log, its recovered
//!   state is byte-identical to the pre-crash state (the "AAE-equivalent
//!   to pre-crash" oracle in its strongest form);
//! * re-admission is **in band**: the restarted node re-enters the fleet
//!   via a fresh-incarnation `Msg::Rejoin` spread by gossip — no harness
//!   view synchronisation;
//! * across seeded crash/heal schedules the fleet loses no acknowledged
//!   write (`surviving_union` audit) and re-converges through its own
//!   anti-entropy;
//! * `MemEngine`- and `LogEngine`-backed clusters driven by the same
//!   seed produce byte-identical per-slot states — the engines are
//!   behaviour-identical behind the `DataStore` doors;
//! * crashes interleaved with membership churn (mid-transfer donor,
//!   mid-drain leaver) recover cleanly: fingerprint-guarded transfer
//!   retries finish the interrupted hand-over and `residual_copies()`
//!   audits clean.

use std::collections::{BTreeMap, BTreeSet};

use dvv::encode::to_bytes;
use dvv::mechanisms::DvvSetMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig, EngineFactory};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::value::{Key, WriteId};
use simnet::Duration;
use storage::LogConfig;
use workloads::churn_seeds;

type M = DvvSetMechanism;

fn durable_config(servers: usize, clients: usize, cycles: u32) -> ClusterConfig {
    ClusterConfig {
        servers,
        clients,
        cycles_per_client: cycles,
        store: StoreConfig {
            n: 2,
            r: 2,
            w: 2,
            anti_entropy_interval: Duration::from_millis(50),
            ..StoreConfig::default()
        }
        .with_env_delta(),
        client: ClientConfig {
            key_count: 6,
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(2_000),
        ..ClusterConfig::default()
    }
}

/// Per-key encoded states at server `slot` — the byte-exact fingerprint
/// of everything the replica holds.
fn state_bytes(c: &Cluster<M>, slot: usize) -> BTreeMap<Key, Vec<u8>> {
    c.server(slot)
        .data()
        .iter()
        .map(|(k, st)| (k.clone(), to_bytes(st)))
        .collect()
}

/// Per-key surviving write ids at server `slot`.
fn surviving_map(c: &Cluster<M>, slot: usize) -> BTreeMap<Key, BTreeSet<WriteId>> {
    let keys: Vec<Key> = c.server(slot).data().keys().cloned().collect();
    keys.into_iter()
        .map(|k| {
            let s = c.surviving_at(slot, &k);
            (k, s)
        })
        .collect()
}

#[test]
fn write_through_crash_restart_replays_byte_identical_state() {
    let dir = storage::scratch_dir("recovery-replay");
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
    let mut c = Cluster::new_durable(3, DvvSetMechanism, durable_config(3, 3, 15), factory);
    assert_eq!(c.server(0).data().engine_kind(), "log");

    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_millis(500)); // let AAE and handoff settle

    let pre = state_bytes(&c, 1);
    assert!(!pre.is_empty(), "server 1 must hold data before the crash");

    c.crash_node(1);
    assert_eq!(c.crashed_slots(), vec![1]);
    c.restart_node(1);
    assert!(c.crashed_slots().is_empty());

    // Write-through: every mutation was synced before the crash, so the
    // replayed state is byte-identical — before any AAE round runs.
    let post = state_bytes(&c, 1);
    assert_eq!(pre, post, "write-through replay must be byte-identical");

    // The rejoin is in band; after gossip + AAE the fleet is clean.
    c.run_for(Duration::from_secs(2));
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn crash_heal_schedules_recover_across_seeds() {
    // ≥ 3 seeded crash/heal schedules: crash a seed-chosen replica while
    // client traffic is still running, restart it from disk, and require
    //   (a) the recovered node replays exactly its pre-crash state
    //       (write-through log ⇒ AAE-equivalence to pre-crash is byte
    //       equality),
    //   (b) the fleet re-converges through its own protocol after the
    //       in-band rejoin,
    //   (c) no acknowledged write is lost (`surviving_union` audit).
    for seed in churn_seeds(&[13, 37, 59]) {
        let dir = storage::scratch_dir("recovery-seeds");
        let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
        let mut c = Cluster::new_durable(seed, DvvSetMechanism, durable_config(4, 4, 30), factory);

        // phase 1: some traffic
        c.run_for(Duration::from_millis(40));

        // crash a seed-chosen replica mid-workload
        let victim = (seed % 4) as usize;
        let pre = surviving_map(&c, victim);
        c.crash_node(victim);
        c.run_for(Duration::from_millis(80)); // sloppy quorums carry the load

        // restart from disk: replay + fresh-incarnation rejoin
        c.restart_node(victim);
        let post = surviving_map(&c, victim);
        assert_eq!(
            pre, post,
            "seed {seed}: write-through replay must restore the pre-crash \
             surviving sets at slot {victim}"
        );

        assert!(c.run(), "seed {seed}: sessions finish after the restart");
        c.run_for(Duration::from_secs(3)); // AAE + hint drain

        // every replica holding a key agrees on it — with n < servers a
        // non-owner legitimately holds nothing, so compare holders only
        let oracle = c.oracle();
        for key in oracle.keys() {
            let holders: Vec<usize> = (0..4)
                .filter(|&i| c.server(i).data().contains_key(&key))
                .collect();
            assert!(!holders.is_empty(), "seed {seed}: {key:?} vanished");
            let s0 = c.surviving_at(holders[0], &key);
            for &i in &holders[1..] {
                assert_eq!(
                    s0,
                    c.surviving_at(i, &key),
                    "seed {seed}: server {i} did not converge for {key:?}"
                );
            }
            // no acknowledged write lost fleet-wide
            let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
            assert_eq!(lost, 0, "seed {seed}: write lost for {key:?}");
        }

        c.converge();
        let report = c.anomaly_report();
        assert!(report.is_clean(), "seed {seed}: {report:?}");
        assert!(report.acked_writes > 0, "seed {seed}: no acked writes");
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn coarse_sync_crash_loses_tail_but_aae_restores_it_from_peers() {
    // With a coarse group-sync interval the crash genuinely drops the
    // buffered tail; the replica restarts from an *earlier* durable
    // prefix and anti-entropy restores the difference from its peers.
    let dir = storage::scratch_dir("recovery-coarse");
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::default());
    let mut c = Cluster::new_durable(5, DvvSetMechanism, durable_config(3, 3, 20), factory);

    // Quiet period first: all client traffic done before the crash, so
    // the lost tail cannot contain an acked-but-unreplicated dot (the
    // replication factor keeps every write alive at a peer).
    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_millis(500));

    let pre = surviving_map(&c, 2);
    c.crash_node(2);
    c.restart_node(2);

    // replay never panics; the node may legitimately be missing its
    // unsynced tail here
    c.run_for(Duration::from_secs(5)); // AAE rounds through the rejoin

    let post = surviving_map(&c, 2);
    for (key, pre_set) in &pre {
        let post_set = post.get(key).cloned().unwrap_or_default();
        assert_eq!(
            *pre_set, post_set,
            "AAE must restore {key:?} at the recovered node"
        );
    }
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn mem_and_log_engines_produce_byte_identical_states() {
    // The same seed drives the same deterministic workload; the only
    // difference is the storage engine behind the `DataStore` doors.
    // Every server must end with byte-identical per-key states.
    for seed in [3u64, 17] {
        let cfg = durable_config(3, 3, 20);
        let mut mem = Cluster::new(seed, DvvSetMechanism, cfg.clone());
        let dir = storage::scratch_dir("recovery-equiv");
        let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
        let mut log = Cluster::new_durable(seed, DvvSetMechanism, cfg, factory);
        assert_eq!(mem.server(0).data().engine_kind(), "mem");
        assert_eq!(log.server(0).data().engine_kind(), "log");

        assert!(mem.run(), "seed {seed}: mem sessions finish");
        assert!(log.run(), "seed {seed}: log sessions finish");
        mem.run_for(Duration::from_secs(1));
        log.run_for(Duration::from_secs(1));

        for slot in 0..3 {
            assert_eq!(
                state_bytes(&mem, slot),
                state_bytes(&log, slot),
                "seed {seed}: engines diverged at slot {slot}"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn crash_of_transfer_donor_mid_join_recovers_and_settles() {
    // A spare joins; mid-transfer one of the donors crashes. The
    // fingerprint-guarded transfer retry keeps re-offering the ranges
    // until the donor is back, after which the join settles and the
    // residual-copy audit is clean.
    let mut cfg = durable_config(3, 3, 25);
    cfg.spare_servers = 1;
    let dir = storage::scratch_dir("recovery-join");
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
    let mut c = Cluster::new_durable(41, DvvSetMechanism, cfg, factory);

    c.run_for(Duration::from_millis(40));
    c.begin_join(3);
    c.run_for(Duration::from_millis(2)); // transfers in flight

    c.crash_node(0); // a donor dies mid-transfer
    c.run_for(Duration::from_millis(50));
    c.restart_node(0); // replay + in-band rejoin

    assert!(c.await_membership(), "join settles once the donor is back");
    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_secs(3)); // quiesce: retries, hints, AAE

    let residuals = c.residual_copies();
    assert!(residuals.is_empty(), "residual copies: {residuals:?}");
    let oracle = c.oracle();
    for key in oracle.keys() {
        let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
        assert_eq!(lost, 0, "write lost for {key:?}");
    }
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn crash_of_leaver_mid_drain_restarts_as_full_member() {
    // A member starts draining out, then crashes mid-drain. Restarting
    // it supersedes the stale `Leaving` entry with a fresh `Up`
    // incarnation: the node is a full member again, the fleet
    // re-converges, and no acknowledged write is lost.
    let mut cfg = durable_config(4, 3, 25);
    cfg.store.n = 2;
    let dir = storage::scratch_dir("recovery-drain");
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
    let mut c = Cluster::new_durable(43, DvvSetMechanism, cfg, factory);

    c.run_for(Duration::from_millis(40));
    c.begin_leave(0);
    c.run_for(Duration::from_millis(2)); // drain in flight

    c.crash_node(0); // mid-drain crash
    assert!(
        !c.await_membership(),
        "a crashed leaver cannot settle its drain"
    );
    c.restart_node(0); // fresh Up incarnation supersedes Leaving

    assert!(c.member_slots().contains(&0), "slot 0 is a member again");
    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_secs(3));

    let oracle = c.oracle();
    for key in oracle.keys() {
        let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
        assert_eq!(lost, 0, "write lost for {key:?}");
    }
    // residual audit runs pre-converge: converge() force-merges every
    // key into every member, which fabricates residual copies
    let residuals = c.residual_copies();
    assert!(residuals.is_empty(), "residual copies: {residuals:?}");
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn restart_without_factory_comes_back_empty_and_aae_refills() {
    // The diskless baseline: a mem-engine cluster restart loses
    // everything; the node still rejoins in band and AAE refills it.
    let mut c = Cluster::new(9, DvvSetMechanism, durable_config(3, 3, 15));
    assert!(c.run(), "sessions finish");
    c.run_for(Duration::from_millis(500));

    let pre = surviving_map(&c, 1);
    assert!(!pre.is_empty());
    c.crash_node(1);
    c.restart_node(1);
    assert!(
        c.server(1).data().is_empty(),
        "no disk ⇒ nothing survives the crash"
    );

    c.run_for(Duration::from_secs(5));
    let post = surviving_map(&c, 1);
    for (key, pre_set) in &pre {
        assert_eq!(
            pre_set,
            post.get(key).unwrap_or(&BTreeSet::new()),
            "AAE must refill {key:?}"
        );
    }
    c.converge();
    let report = c.anomaly_report();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn replica_ids_survive_recovery() {
    // Sanity: the recovered node keeps its ReplicaId (slot identity) —
    // recovery is the same replica with a fresh incarnation, not a new
    // replica. Peers' views must show exactly one Up entry for it.
    let dir = storage::scratch_dir("recovery-id");
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::write_through());
    let mut c = Cluster::new_durable(11, DvvSetMechanism, durable_config(3, 2, 10), factory);
    assert!(c.run());
    c.crash_node(2);
    c.restart_node(2);
    c.run_for(Duration::from_secs(2));
    for i in 0..3 {
        assert!(
            c.server(i).view().members().contains(&ReplicaId(2)),
            "server {i} must list the recovered replica as a member"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}
