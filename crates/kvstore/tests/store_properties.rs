//! Property-based end-to-end tests: random seeds, workloads and fault
//! schedules — the DVV-family mechanisms must audit clean on all of them.

use dvv::mechanisms::{DvvMechanism, DvvSetMechanism};
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::ClientConfig;
use proptest::prelude::*;
use simnet::{Duration, NodeId};

#[derive(Clone, Debug)]
struct Workload {
    seed: u64,
    clients: usize,
    cycles: u32,
    keys: usize,
    think_us: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (any::<u64>(), 1usize..6, 1u32..8, 1usize..4, 100u64..3000).prop_map(
        |(seed, clients, cycles, keys, think_us)| Workload {
            seed,
            clients,
            cycles,
            keys,
            think_us,
        },
    )
}

fn config_for(w: &Workload) -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        clients: w.clients,
        cycles_per_client: w.cycles,
        client: ClientConfig {
            key_count: w.keys,
            think_time: Duration::from_micros(w.think_us),
            ..ClientConfig::default()
        },
        deadline: Duration::from_secs(2_000),
        ..ClusterConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dvv_store_clean_on_random_workloads(w in arb_workload()) {
        let mut c = Cluster::new(w.seed, DvvMechanism, config_for(&w));
        prop_assert!(c.run());
        c.converge();
        let r = c.anomaly_report();
        prop_assert!(r.is_clean(), "workload {:?}: {:?}", w, r);
        prop_assert_eq!(r.total_writes, u64::from(w.cycles) * w.clients as u64);
    }

    #[test]
    fn dvvset_store_clean_on_random_workloads(w in arb_workload()) {
        let mut c = Cluster::new(w.seed, DvvSetMechanism, config_for(&w));
        prop_assert!(c.run());
        c.converge();
        let r = c.anomaly_report();
        prop_assert!(r.is_clean(), "workload {:?}: {:?}", w, r);
    }

    #[test]
    fn dvv_store_clean_under_random_partition(
        w in arb_workload(),
        victim in 0u32..3,
        start_ms in 1u64..30,
        span_ms in 5u64..60,
    ) {
        let mut c = Cluster::new(w.seed, DvvMechanism, config_for(&w));
        c.run_for(Duration::from_millis(start_ms));
        let others: Vec<NodeId> = (0..(3 + w.clients) as u32)
            .filter(|i| *i != victim)
            .map(NodeId)
            .collect();
        c.sim_mut().network_mut().partition_two(others, [NodeId(victim)]);
        c.set_replica_status(ReplicaId(victim), false);
        c.run_for(Duration::from_millis(span_ms));
        c.sim_mut().network_mut().heal();
        c.set_replica_status(ReplicaId(victim), true);
        prop_assert!(c.run(), "sessions must finish after healing");
        c.converge();
        let r = c.anomaly_report();
        prop_assert!(r.is_clean(), "workload {:?} victim {}: {:?}", w, victim, r);
    }

    #[test]
    fn deterministic_replay(w in arb_workload()) {
        let run = || {
            let mut c = Cluster::new(w.seed, DvvMechanism, config_for(&w));
            c.run();
            c.converge();
            (c.sim().now(), c.sim().network().stats(), c.anomaly_report())
        };
        prop_assert_eq!(run(), run());
    }
}
