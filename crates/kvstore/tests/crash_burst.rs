//! Crash-mid-burst: the scenario the dot-reuse epoch guard exists for.
//!
//! A replica is killed in the middle of a write burst under *group-sync*
//! durability (`LogConfig::default()` — the crash loses the un-synced
//! log tail) while every link duplicates, reorders and stale-replays
//! traffic ([`LinkFaults::hostile`], installed through the declarative
//! fault schedule). The victim restarts from its truncated log and the
//! fleet must converge unaided and pass the full audit stack — one ring
//! view, pairwise AAE equivalence, zero residuals, a no-loss
//! `surviving_union`, an anomaly-free oracle, **and the fleet-wide
//! dot-uniqueness census** in both of its forms:
//!
//! * the *live* census ([`FleetHarness::dot_census`]), sampled in
//!   flight through the post-restart window — a collision among live
//!   states is transient, because any later write whose context saw
//!   the dot dominates *both* bearers and erases the evidence;
//! * the *historical* census over the durable log files
//!   ([`assert_dot_unique_in_logs`]) — append-only logs don't forget,
//!   so a re-minted dot is convicted even after domination hides it
//!   from every live state.
//!
//! ## Why the recovery window is shaped the way it is
//!
//! Dot reuse needs a write whose context has *forgotten* the victim's
//! escaped dots — and the protocol accidentally shields the victim from
//! ever seeing one. Clients accumulate session contexts (every put
//! context covers every dot the session ever read), the survivor's
//! `w = 2` replication fan-out re-teaches the victim its own past
//! within a round-trip of the restart, and a server mints above the
//! put-context's component for its own actor. All three shields are
//! *luck*, not a guarantee: none of them survives a frame minted from
//! genuinely stale knowledge. The schedule manufactures exactly that
//! frame from faults the adversarial network already models:
//!
//! * a **half-open partition** through the recovery window — the
//!   survivor's frames to the victim are lost (its replication fan-out
//!   cannot re-seed the victim's counter) while the victim's frames
//!   out are delivered (its fresh mints still escape to the
//!   survivor's log);
//! * a **stale-replay storm** around the restart instant — replayed
//!   pre-crash client frames land on the recovered victim *before*
//!   current traffic (the replay delay undercuts the link latency),
//!   and among them are puts whose contexts predate most of the burst.
//!   The victim's duplicate-write dedupe died with it, so a replayed
//!   put coordinates a fresh mint from a stale context — the epoch
//!   guard's floor is the only thing standing between that mint and a
//!   counter the survivor already holds for a different write.
//!
//! The companion regression test runs the identical schedules with
//! `dot_guard: false` and demonstrates the pre-guard code *does*
//! re-mint escaped dots — the hazard is real, the suite is not vacuous,
//! and the guard closes precisely this hole.

use dvv::mechanisms::DvvMechanism;
use kvstore::cluster::{Cluster, ClusterConfig, EngineFactory, FaultPhase};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::{
    assert_dot_unique, assert_dot_unique_in_logs, audit_fleet, dot_census_in_logs, FleetHarness,
};
use simnet::{Duration, LinkFaults, NodeId};
use storage::LogConfig;
use workloads::churn_seeds;

// The census walks sibling dots, so the suite runs the paper's
// mechanism (per-sibling dotted version vectors) — `DvvSetMechanism`
// identifies siblings positionally and has no per-value dots to audit.
type M = DvvMechanism;

const SERVERS: usize = 2;
const VICTIM: usize = 1;
const SURVIVOR: usize = 0;

/// Crash 10ms into the burst; restart after a 60ms outage — longer than
/// the request timeout, so every operation in flight at the crash (still
/// carrying a context that remembers the escaped dots) expires before
/// the victim returns.
const CRASH_AT: Duration = Duration::from_millis(10);
const OUTAGE: Duration = Duration::from_millis(60);

/// The stale-replay storm installed around the restart: nearly every
/// delivery re-surfaces a captured pre-crash frame, and the replay
/// delay undercuts the 500µs link latency so the stale copy arrives
/// *first* — the recovered victim meets its own forgotten past before
/// it meets the present.
fn recovery_storm() -> LinkFaults {
    LinkFaults {
        replay_probability: 0.9,
        replay_delay: Duration::from_micros(50),
        ..LinkFaults::hostile()
    }
}

/// One hot key on a two-server ring, coordinated with `r = 1`: reads
/// consult only the coordinator, so a freshly restarted victim hands
/// out contexts that have forgotten its own escaped dots. `w = 2`
/// keeps the no-loss oracle honest (every acked write has a live copy
/// on the survivor). Anti-entropy is slowed so the protocol cannot
/// quietly re-fill the victim before it coordinates again — recovery
/// must be *safe*, not lucky.
fn burst_config() -> ClusterConfig {
    ClusterConfig {
        servers: SERVERS,
        clients: 4,
        cycles_per_client: 60,
        store: StoreConfig {
            n: 2,
            r: 1,
            w: 2,
            anti_entropy_interval: Duration::from_millis(800),
            handoff_interval: Duration::from_millis(1_000),
            gossip_interval: Duration::from_millis(25),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 1,
            think_time: Duration::from_millis(2),
            request_timeout: Duration::from_millis(40),
            // No retries: a retried put re-sends its pre-crash context,
            // which re-seeds the restarted victim's counter past every
            // escaped dot before any amnesiac write can expose reuse —
            // the workload must not accidentally shield the guard.
            max_retries: 0,
            ..ClientConfig::default()
        },
        // Hostile from the first event; the replay storm brackets the
        // restart instant; clean again at 10s so the post-burst quiesce
        // also exercises a multi-phase schedule.
        fault_schedule: vec![
            FaultPhase {
                at: Duration::ZERO,
                faults: LinkFaults::hostile(),
            },
            FaultPhase {
                at: Duration::from_millis(69),
                faults: recovery_storm(),
            },
            FaultPhase {
                at: Duration::from_millis(300),
                faults: LinkFaults::hostile(),
            },
            FaultPhase {
                at: Duration::from_secs(10),
                faults: LinkFaults::default(),
            },
        ],
        deadline: Duration::from_secs(2_000),
        ..ClusterConfig::default()
    }
}

/// Runs one crash-mid-burst schedule: kill the victim 10ms into the
/// burst — right after its first mints escaped to the survivor but long
/// before the group-sync log's 64-record sync point, so the restart
/// rolls its counters all the way back — then recover it into the
/// half-open partition + replay storm described in the module docs, and
/// let the sessions finish against the recovered fleet, sampling the
/// live census every 10ms through the post-restart window. Returns the
/// cluster (un-quiesced, engines synced), whether the victim had minted
/// before the crash, the peak in-flight collision count, and the log
/// directory for the historical census.
fn run_crash_burst(seed: u64, guard: bool) -> (Cluster<M>, bool, usize, std::path::PathBuf) {
    let dir = storage::scratch_dir("crash-burst");
    let mut cfg = burst_config();
    cfg.store.dot_guard = guard;
    let factory = EngineFactory::<M>::log_in(&dir, LogConfig::default());
    let mut c = Cluster::new_durable(seed, DvvMechanism, cfg, factory);
    c.run_for(CRASH_AT);
    // Whether the victim coordinated any mint pre-crash (its reservation
    // ceiling moved): only then did dots escape, and only then must the
    // recovery path have engaged the guard.
    let minted_before = c.server(VICTIM).dot_guard_state().1 > 0;
    c.crash_node(VICTIM);
    c.run_for(OUTAGE);
    c.restart_node(VICTIM);
    // Half-open partition: survivor→victim lost, victim→survivor fine.
    c.sim_mut()
        .network_mut()
        .block_link(NodeId(SURVIVOR as u32), NodeId(VICTIM as u32));
    let mut peak = 0;
    for _ in 0..5 {
        c.run_for(Duration::from_millis(10));
        peak = peak.max(census_collisions(&c));
    }
    c.sim_mut()
        .network_mut()
        .unblock_link(NodeId(SURVIVOR as u32), NodeId(VICTIM as u32));
    for _ in 0..40 {
        c.run_for(Duration::from_millis(10));
        peak = peak.max(census_collisions(&c));
    }
    assert!(c.run(), "seed {seed}: sessions must finish after recovery");
    peak = peak.max(census_collisions(&c));
    for slot in 0..SERVERS {
        c.sync_server_storage(slot); // buffered records into the files
    }
    (c, minted_before, peak, dir)
}

/// Dots currently tagging more than one distinct write across the live
/// states — non-zero only while both bearers of a re-minted dot are
/// still undominated somewhere in the fleet.
fn census_collisions(c: &Cluster<M>) -> usize {
    c.dot_census().values().filter(|ids| ids.len() > 1).count()
}

/// With the epoch guard on (the default), every crash-mid-burst
/// schedule audits clean: no acked write lost, replicas AAE-equivalent,
/// no residual copies, anomaly-free — and every dot names exactly one
/// write, in every in-flight sample of the live states *and* across the
/// full durable log histories.
#[test]
fn crash_mid_burst_under_hostile_net_audits_clean_across_seeds() {
    for seed in churn_seeds(&[13, 37, 59]) {
        let (mut c, minted_before, peak, dir) = run_crash_burst(seed, true);
        let label = format!("crash-burst seed {seed}");

        // Zero collisions at every in-flight slice, not just at the end
        // (the end state hides transient collisions by domination).
        assert_eq!(peak, 0, "{label}: dot collision observed in flight");

        // If any dot escaped pre-crash the guard must have engaged:
        // recovery bumps the incarnation epoch (genesis is 0) and floors
        // minting above the recovered reservation, so the victim's
        // post-restart mints are provably from a later reservation.
        let (epoch, ceiling, floor) = c.server(VICTIM).dot_guard_state();
        if minted_before {
            assert!(epoch >= 1, "{label}: recovery must bump the dot epoch");
            assert!(floor > 0, "{label}: recovery must floor minting");
        }
        assert!(
            ceiling >= floor,
            "{label}: reservation ceiling below its floor"
        );

        // The strong form: nothing ever durably applied, on any slot,
        // reused a dot — audited before any harness convergence writes
        // into the engines.
        assert_dot_unique_in_logs(c.mechanism(), &dir, 0..SERVERS, &label);
        assert_dot_unique(&c, &label);

        // Unaided convergence: AAE + handoff + gossip only.
        c.run_for(Duration::from_secs(30));

        // No acked write lost, fleet-wide (pre-converge union).
        let oracle = c.oracle();
        for key in oracle.keys() {
            let (lost, _) = oracle.audit_key(&key, &c.surviving_union(&key));
            assert_eq!(lost, 0, "{label}: acked write lost on {key:?}");
        }

        // Full stack: one view, AAE-equivalence, residuals, dot census
        // again on the settled states, then converge + oracle.
        audit_fleet(&mut c, &label);
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The committed regression the tentpole demands: with `dot_guard:
/// false` the *same* schedules re-mint dots that escaped before the
/// crash. The victim's group-sync log loses the whole burst prefix, its
/// counters roll back to zero, and its first post-restart coordinations
/// — stale-replayed pre-crash puts whose contexts predate most of the
/// burst — re-mint `(victim, c)` pairs the survivor's log already holds
/// for different writes. The historical census convicts the reuse even
/// though the live states have long dominated both bearers away — and
/// the guard (same seeds, same timing) makes every collision vanish.
#[test]
fn dot_guard_disabled_reuses_escaped_dots() {
    let seeds = [13, 37, 59];
    let mut collisions = 0usize;
    for seed in seeds {
        let (c, _, _peak, dir) = run_crash_burst(seed, false);
        collisions += dot_census_in_logs(c.mechanism(), &dir, 0..SERVERS)
            .expect("scan log histories")
            .values()
            .filter(|ids| ids.len() > 1)
            .count();
        std::fs::remove_dir_all(dir).ok();
    }
    assert!(
        collisions > 0,
        "pre-guard code must exhibit dot reuse on at least one schedule \
         (seeds {seeds:?}) — if this starts passing, the crash window \
         no longer rolls counters back and the suite lost its teeth"
    );
}
