//! [`StoreNode`]: a replica server — request coordination, replication,
//! read repair, anti-entropy and hinted handoff.

use std::collections::BTreeMap;

use dvv::mechanisms::{Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId};
use ring::{HashRing, Membership};
use simnet::{NodeId, ProcessCtx, TimerId};

use crate::config::StoreConfig;
use crate::merkle::{fingerprint, MerkleSummary};
use crate::messages::{Msg, ReqId};
use crate::value::{Key, StampedValue};

/// Counters a server maintains for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// GETs coordinated to success.
    pub gets_ok: u64,
    /// PUTs coordinated to success.
    pub puts_ok: u64,
    /// Requests that timed out waiting for a quorum.
    pub quorum_timeouts: u64,
    /// Read repairs pushed.
    pub read_repairs: u64,
    /// Anti-entropy exchanges initiated.
    pub aae_rounds: u64,
    /// Anti-entropy exchanges that found divergence.
    pub aae_divergent: u64,
    /// Hinted states handed off to their intended owner.
    pub handoffs: u64,
}

/// Coordinator-side bookkeeping for one in-flight request.
#[derive(Debug)]
enum Pending<M: Mechanism<StampedValue>> {
    Get {
        key: Key,
        client: NodeId,
        acc: M::State,
        responses: usize,
        expected: usize,
        replied: bool,
        /// replica → fingerprint of the state it returned (for repair)
        seen: Vec<(ReplicaId, u64)>,
    },
    Put {
        key: Key,
        client: NodeId,
        acks: usize,
        expected: usize,
        replied: bool,
    },
}

/// What a firing timer means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Request(ReqId),
    AntiEntropy,
    Handoff,
}

/// A replica server process.
///
/// Node `i` of the simulation hosts replica `ReplicaId(i)`; clients live
/// on higher node ids. All request coordination follows the Dynamo/Riak
/// pattern; the causality mechanism `M` is the only pluggable part.
#[derive(Debug)]
pub struct StoreNode<M: Mechanism<StampedValue>> {
    replica: ReplicaId,
    mech: M,
    config: StoreConfig,
    ring: HashRing<ReplicaId>,
    membership: Membership<ReplicaId>,
    data: BTreeMap<Key, M::State>,
    /// Hinted states held for down replicas: `(key, intended) → ()` —
    /// the state itself lives in `data`; this records the obligation.
    hints: BTreeMap<(Key, ReplicaId), ()>,
    pending: BTreeMap<ReqId, Pending<M>>,
    timers: BTreeMap<TimerId, TimerKind>,
    stats: NodeStats,
}

impl<M: Mechanism<StampedValue>> StoreNode<M> {
    /// Creates the replica server for `replica`.
    pub fn new(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        ring: HashRing<ReplicaId>,
        membership: Membership<ReplicaId>,
    ) -> Self {
        config.validate();
        StoreNode {
            replica,
            mech,
            config,
            ring,
            membership,
            data: BTreeMap::new(),
            hints: BTreeMap::new(),
            pending: BTreeMap::new(),
            timers: BTreeMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// This server's replica id.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The per-key states this replica currently holds.
    pub fn data(&self) -> &BTreeMap<Key, M::State> {
        &self.data
    }

    /// Direct state merge — used by the test harness's `converge()`, not
    /// by the protocol.
    pub fn merge_state_direct(&mut self, key: &[u8], state: &M::State) {
        let local = self.data.entry(key.to_vec()).or_default();
        self.mech.merge(local, state);
    }

    /// Marks a peer down/up in this node's failure-detector view.
    pub fn set_peer_status(&mut self, peer: ReplicaId, up: bool) {
        if up {
            self.membership.mark_up(&peer);
        } else {
            self.membership.mark_down(&peer);
        }
    }

    /// Number of hint obligations currently held.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// Total causal-metadata bytes across all keys at this replica.
    pub fn metadata_bytes(&self) -> usize {
        self.data.values().map(|s| self.mech.metadata_size(s)).sum()
    }

    /// Removes keys whose every surviving sibling is a tombstone,
    /// returning how many keys were reclaimed.
    ///
    /// Dropping a tombstone is only safe once it has reached every
    /// replica (otherwise anti-entropy would resurrect the deleted data
    /// from a replica that never saw the delete) — the caller is
    /// responsible for invoking this after convergence, as
    /// [`crate::cluster::Cluster::collect_garbage`] does.
    pub fn collect_garbage(&mut self) -> usize {
        let dead: Vec<Key> = self
            .data
            .iter()
            .filter(|(_, st)| {
                let (values, _) = self.mech.read(st);
                !values.is_empty() && values.iter().all(|v| v.tombstone)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            self.data.remove(k);
        }
        dead.len()
    }

    /// Mean sibling count across keys (0 when no keys).
    pub fn mean_siblings(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let total: usize = self.data.values().map(|s| self.mech.sibling_count(s)).sum();
        total as f64 / self.data.len() as f64
    }

    fn merkle_summary(&self) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for (k, s) in &self.data {
            m.set(k.clone(), fingerprint(s));
        }
        m
    }

    fn send(&self, ctx: &mut ProcessCtx<'_, Msg<M>>, to: NodeId, msg: Msg<M>) {
        let bytes = msg.wire_size(&self.mech) + self.config.header_bytes;
        ctx.send(to, msg, bytes);
    }

    fn active_replicas(&self, key: &[u8]) -> (Vec<ReplicaId>, Vec<(ReplicaId, ReplicaId)>) {
        self.membership
            .sloppy_preference_list(&self.ring, key, self.config.n)
    }

    fn arm_request_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let t = ctx.set_timer(self.config.request_timeout);
        self.timers.insert(t, TimerKind::Request(req));
    }

    fn handle_client_get(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        from: NodeId,
        req: ReqId,
        key: Key,
    ) {
        let (active, _) = self.active_replicas(&key);
        let local = self.data.get(&key).cloned().unwrap_or_default();
        self.pending.insert(
            req,
            Pending::Get {
                key: key.clone(),
                client: from,
                acc: local,
                responses: 1,
                expected: active.len(),
                replied: false,
                seen: Vec::new(),
            },
        );
        for peer in &active {
            if *peer != self.replica {
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::RepGet {
                        req,
                        key: key.clone(),
                    },
                );
            }
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_get(ctx, req);
    }

    fn try_complete_get(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        // phase 1: reply to the client as soon as R responses are in
        let mut reply: Option<(NodeId, Vec<StampedValue>, M::Context)> = None;
        if let Some(Pending::Get {
            client,
            acc,
            responses,
            expected,
            replied,
            ..
        }) = self.pending.get_mut(&req)
        {
            if !*replied && *responses >= self.config.r.min(*expected) {
                *replied = true;
                let (values, read_ctx) = self.mech.read(acc);
                reply = Some((*client, values, read_ctx));
            }
        }
        if let Some((client, values, read_ctx)) = reply {
            self.stats.gets_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientGetResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        // phase 2: once every replica answered, retire and read-repair
        let done = matches!(
            self.pending.get(&req),
            Some(Pending::Get { responses, expected, replied, .. })
                if *responses >= *expected && *replied
        );
        if done {
            let Some(Pending::Get { key, acc, seen, .. }) = self.pending.remove(&req) else {
                return;
            };
            self.finish_read_repair(ctx, &key, acc, &seen);
        }
    }

    fn finish_read_repair(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        key: &[u8],
        merged: M::State,
        seen: &[(ReplicaId, u64)],
    ) {
        // fold into local state first
        let local = self.data.entry(key.to_vec()).or_default();
        self.mech.merge(local, &merged);
        let canonical = self.data.get(key).cloned().unwrap_or_default();
        if !self.config.read_repair {
            return;
        }
        let target_fp = fingerprint(&canonical);
        for (peer, fp) in seen {
            if *peer != self.replica && *fp != target_fp {
                self.stats.read_repairs += 1;
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::ReadRepair {
                        key: key.to_vec(),
                        state: canonical.clone(),
                    },
                );
            }
        }
    }

    fn handle_client_put(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        from: NodeId,
        req: ReqId,
        key: Key,
        value: StampedValue,
        put_ctx: M::Context,
    ) {
        let client = ClientId(value.id.client.0);
        let state = self.data.entry(key.clone()).or_default();
        self.mech.write(
            state,
            WriteOrigin::new(self.replica, client),
            &put_ctx,
            value,
        );
        let state = state.clone();
        let (active, substitutions) = self.active_replicas(&key);
        let expected = active.len();
        self.pending.insert(
            req,
            Pending::Put {
                key: key.clone(),
                client: from,
                acks: 1,
                expected,
                replied: false,
            },
        );
        for peer in &active {
            if *peer == self.replica {
                continue;
            }
            let hint = substitutions
                .iter()
                .find(|(_, fallback)| fallback == peer)
                .map(|(intended, _)| *intended);
            self.send(
                ctx,
                NodeId(peer.0),
                Msg::RepPut {
                    req,
                    key: key.clone(),
                    state: state.clone(),
                    hint,
                },
            );
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_put(ctx, req);
    }

    fn try_complete_put(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let Some(Pending::Put {
            key,
            client,
            acks,
            expected,
            replied,
        }) = self.pending.get_mut(&req)
        else {
            return;
        };
        if !*replied && *acks >= self.config.w.min(*expected) {
            *replied = true;
            let key = key.clone();
            let client = *client;
            let state = self.data.get(&key).cloned().unwrap_or_default();
            let (values, read_ctx) = self.mech.read(&state);
            self.stats.puts_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientPutResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        if let Some(Pending::Put {
            acks,
            expected,
            replied,
            ..
        }) = self.pending.get(&req)
        {
            if *acks >= *expected && *replied {
                self.pending.remove(&req);
            }
        }
    }

    fn handle_request_timeout(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        match p {
            Pending::Get {
                client,
                replied,
                key,
                acc,
                seen,
                ..
            } => {
                let client = *client;
                let replied = *replied;
                let key = key.clone();
                let merged = acc.clone();
                let seen = seen.clone();
                self.pending.remove(&req);
                if replied {
                    // reply already sent; late repair with what arrived
                    self.finish_read_repair(ctx, &key, merged, &seen);
                } else {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientGetResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
            Pending::Put {
                client, replied, ..
            } => {
                let client = *client;
                let replied = *replied;
                self.pending.remove(&req);
                if !replied {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientPutResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
        }
    }

    fn handle_aae_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        // pick a random up peer and start an exchange
        let peers: Vec<ReplicaId> = self
            .membership
            .up_nodes()
            .into_iter()
            .filter(|p| *p != self.replica)
            .collect();
        if !peers.is_empty() {
            let peer = *ctx.rng().pick(&peers);
            self.stats.aae_rounds += 1;
            let root = self.merkle_summary().root();
            self.send(ctx, NodeId(peer.0), Msg::AaeRoot { root });
        }
        // re-arm
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.anti_entropy_interval);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
    }

    fn handle_handoff_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        let due: Vec<(Key, ReplicaId)> = self
            .hints
            .keys()
            .filter(|(_, intended)| self.membership.is_up(intended))
            .cloned()
            .collect();
        for (key, intended) in due {
            if let Some(state) = self.data.get(&key) {
                self.send(
                    ctx,
                    NodeId(intended.0),
                    Msg::Handoff {
                        key: key.clone(),
                        state: state.clone(),
                    },
                );
            }
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
    }

    /// Entry point: dispatches one message.
    pub fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, from: NodeId, msg: Msg<M>) {
        match msg {
            Msg::ClientGet { req, key } => self.handle_client_get(ctx, from, req, key),
            Msg::ClientPut {
                req,
                key,
                value,
                ctx: put_ctx,
            } => self.handle_client_put(ctx, from, req, key, value, put_ctx),
            Msg::RepGet { req, key } => {
                let state = self.data.get(&key).cloned().unwrap_or_default();
                self.send(ctx, from, Msg::RepGetResp { req, key, state });
            }
            Msg::RepGetResp { req, key: _, state } => {
                if let Some(Pending::Get {
                    acc,
                    responses,
                    seen,
                    ..
                }) = self.pending.get_mut(&req)
                {
                    let fp = fingerprint(&state);
                    seen.push((ReplicaId(from.0), fp));
                    self.mech.merge(acc, &state);
                    *responses += 1;
                    self.try_complete_get(ctx, req);
                }
            }
            Msg::RepPut {
                req,
                key,
                state,
                hint,
            } => {
                let local = self.data.entry(key.clone()).or_default();
                self.mech.merge(local, &state);
                if let Some(intended) = hint {
                    self.hints.insert((key, intended), ());
                }
                self.send(ctx, from, Msg::RepPutAck { req });
            }
            Msg::RepPutAck { req } => {
                if let Some(Pending::Put { acks, .. }) = self.pending.get_mut(&req) {
                    *acks += 1;
                    self.try_complete_put(ctx, req);
                }
            }
            Msg::ReadRepair { key, state } => {
                let local = self.data.entry(key).or_default();
                self.mech.merge(local, &state);
            }
            Msg::AaeRoot { root } => {
                let mine = self.merkle_summary();
                if mine.root() != root {
                    self.send(
                        ctx,
                        from,
                        Msg::AaeLeaves {
                            leaves: mine.leaves(),
                        },
                    );
                }
            }
            Msg::AaeLeaves { leaves } => {
                self.stats.aae_divergent += 1;
                let mine = self.merkle_summary();
                let mut theirs = MerkleSummary::new();
                for (k, h) in leaves {
                    theirs.set(k, h);
                }
                // keys where we differ in either direction
                let mut keys = mine.diff(&theirs); // they have, we differ/lack
                for k in theirs.diff(&mine) {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                let states: Vec<(Key, M::State)> = keys
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                self.send(ctx, from, Msg::AaeStates { states, want: keys });
            }
            Msg::AaeStates { states, want } => {
                for (k, s) in states {
                    let local = self.data.entry(k).or_default();
                    self.mech.merge(local, &s);
                }
                let back: Vec<(Key, M::State)> = want
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                self.send(ctx, from, Msg::AaeStatesResp { states: back });
            }
            Msg::AaeStatesResp { states } => {
                for (k, s) in states {
                    let local = self.data.entry(k).or_default();
                    self.mech.merge(local, &s);
                }
            }
            Msg::Handoff { key, state } => {
                let local = self.data.entry(key.clone()).or_default();
                self.mech.merge(local, &state);
                self.send(ctx, from, Msg::HandoffAck { key });
            }
            Msg::HandoffAck { key } => {
                let intended = ReplicaId(from.0);
                if self.hints.remove(&(key, intended)).is_some() {
                    self.stats.handoffs += 1;
                }
            }
            // client-facing responses never arrive at servers
            Msg::ClientGetResp { .. } | Msg::ClientPutResp { .. } => {}
        }
    }

    /// Entry point: starts periodic timers.
    pub fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            // stagger first AAE by replica id to avoid thundering herd
            let first = simnet::Duration::from_micros(
                self.config.anti_entropy_interval.as_micros() + u64::from(self.replica.0) * 1_000,
            );
            let t = ctx.set_timer(first);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
    }

    /// Entry point: dispatches one timer.
    pub fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerKind::Request(req)) => self.handle_request_timeout(ctx, req),
            Some(TimerKind::AntiEntropy) => self.handle_aae_timer(ctx),
            Some(TimerKind::Handoff) => self.handle_handoff_timer(ctx),
            None => {}
        }
    }
}
