//! [`StoreNode`]: a replica server — ownership-aware request
//! coordination, replication, read repair, anti-entropy, hinted handoff,
//! and elastic membership (live join/leave with key-range transfer,
//! disseminated by epidemic ring-view gossip).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dvv::mechanisms::{Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId};
use ring::{HashRing, MemberStatus, Membership, RingView};
use simnet::{NodeId, SimTime, TimerId};

use crate::config::{DeltaPolicy, StoreConfig};
use crate::ctx::NodeCtx;
use crate::data::DataStore;
use crate::merkle::{fingerprint, MerkleSummary};
use crate::messages::{Msg, ReqId, WireStats};
use crate::value::{Key, StampedValue};
use crate::wire;

/// Dedupe window per donor, in *keys* (not transfer ids): batching makes
/// ids coarser, so an id-count window would shrink the covered key
/// horizon by the batch factor.
const TRANSFER_DEDUPE_KEYS: usize = 4096;

/// How many recently coordinated write request ids a node remembers
/// ([`StoreNode::note_write_seen`]). Minting is not idempotent — a
/// re-coordinated request would get a *fresh* dot, resurrecting an
/// already-superseded value as a sibling — so duplicated or
/// stale-replayed `ClientPut`/`RepWrite` frames must be recognised and
/// ignored. Client retries always carry a fresh request id, so a repeat
/// within this window is definitively network-injected.
const WRITE_DEDUPE_REQS: usize = 256;

/// Counters a server maintains for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// GETs coordinated to success.
    pub gets_ok: u64,
    /// PUTs coordinated to success.
    pub puts_ok: u64,
    /// Requests that timed out waiting for a quorum.
    pub quorum_timeouts: u64,
    /// Read repairs pushed.
    pub read_repairs: u64,
    /// Anti-entropy exchanges initiated.
    pub aae_rounds: u64,
    /// Initiated anti-entropy exchanges that found divergent keys.
    pub aae_divergent: u64,
    /// Hinted states handed off to their intended owner.
    pub handoffs: u64,
    /// Requests coordinated without local participation because this node
    /// was not in the key's preference list.
    pub remote_coordinations: u64,
    /// Range-transfer batches actually sent, retries included (join
    /// donations, leave drains, and residual-copy retirement).
    pub transfers_out: u64,
    /// Distinct range-transfer batches received and merged (duplicate
    /// deliveries of a retried batch are deduplicated by transfer id).
    pub transfers_in: u64,
    /// Ring-view gossip rounds initiated (periodic digests and eager
    /// pushes after adopting a new view).
    pub gossip_rounds: u64,
    /// Duplicated or stale-replayed write coordinations ignored by the
    /// request-id dedupe window (each would otherwise have minted a
    /// spurious fresh dot).
    pub dup_writes_ignored: u64,
}

/// Coordinator-side bookkeeping for one in-flight request.
#[derive(Debug)]
enum Pending<M: Mechanism<StampedValue>> {
    Get {
        key: Key,
        client: NodeId,
        acc: M::State,
        responses: usize,
        expected: usize,
        replied: bool,
        /// Whether this coordinator is in the key's active preference
        /// list (and therefore counted its local read as a response).
        owner: bool,
        /// replica → fingerprint of the state it returned (for repair)
        seen: Vec<(ReplicaId, u64)>,
        /// The sloppy-quorum substitutions at coordination time:
        /// `(intended, fallback)` pairs, so read repair pushed to a
        /// fallback carries the matching hint.
        subs: Vec<(ReplicaId, ReplicaId)>,
    },
    Put {
        key: Key,
        client: NodeId,
        acks: usize,
        expected: usize,
        replied: bool,
        /// See [`Pending::Get::owner`].
        owner: bool,
        /// Post-write state known to the coordinator (`return_body`
        /// source when coordinating remotely).
        state: M::State,
        /// Replication fan-out deferred until the delegated owner returns
        /// the post-write state (remote coordination only).
        fanout: Vec<(ReplicaId, Option<ReplicaId>)>,
    },
}

/// What a firing timer means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Request(ReqId),
    AntiEntropy,
    Handoff,
    Transfer,
    Gossip,
}

/// One unacknowledged outbound range-transfer batch.
///
/// Key states are fingerprinted when the batch is queued; on ack, a key
/// is dropped (when no longer owned) only if its state is unchanged —
/// otherwise the fresher state is re-queued, so no write merged after the
/// snapshot can be lost to a drop.
#[derive(Debug)]
struct TransferJob {
    to: ReplicaId,
    keys: Vec<(Key, u64)>,
}

/// In-flight record for a sent handoff: `(sent_at, fingerprint of the
/// state that was sent)`. `None` means the obligation has no handoff in
/// flight.
type HintFlight = Option<(SimTime, u64)>;

/// Per-donor record of recently merged transfer batches, bounded by the
/// number of keys the remembered batches covered.
#[derive(Debug, Default)]
struct TransferWindow {
    /// transfer id → keys in the batch when it was first merged
    seen: BTreeMap<u64, usize>,
    /// total keys across `seen`
    keys: usize,
}

/// A replica server process.
///
/// Node `i` of the simulation hosts replica `ReplicaId(i)`; clients live
/// on higher node ids. All request coordination follows the Dynamo/Riak
/// pattern; the causality mechanism `M` is the only pluggable part.
///
/// Coordination is **ownership-aware**: the node counts its own local
/// read/write toward R/W quorums only when it appears in the key's
/// active preference list. Otherwise it coordinates purely remotely — no
/// local write, no self-response — delegating the dot-minting write to
/// the first active owner ([`Msg::RepWrite`]). This matters both for
/// quorum strength (a non-owner must not substitute for a real replica)
/// and for elastic membership, where a node that just left the ring
/// keeps coordinating stale client requests without polluting its store.
///
/// Ring views spread by **gossip** and are *mergeable*: a membership
/// change is announced to its subject only; every other process learns
/// it from periodic digest exchanges ([`Msg::GossipDigest`]), digests
/// piggybacked on anti-entropy roots, eager pushes after merging a view,
/// and request digests. Views version each member independently
/// ([`RingView`]), so two concurrent changes — announced on different
/// sides of a partition — merge deterministically instead of racing, and
/// a node whose leave-drain times out is re-admitted in band
/// ([`Msg::Rejoin`]) rather than by harness fiat.
#[derive(Debug)]
pub struct StoreNode<M: Mechanism<StampedValue>> {
    replica: ReplicaId,
    mech: M,
    config: StoreConfig,
    /// The mergeable membership state this node has gossiped together.
    view: RingView<ReplicaId>,
    /// The hash ring derived from `view` (rebuilt on every view change).
    ring: HashRing<ReplicaId>,
    membership: Membership<ReplicaId>,
    /// Per-key states plus the persistent ownership-partitioned AAE
    /// index: every mutation marks its key dirty, and the per-arc
    /// Merkle summaries are refreshed at the AAE read points
    /// ([`DataStore::flush`]) — so anti-entropy costs O(dirty + arcs)
    /// instead of a keyspace scan ([`Self::shared_summary_root`]).
    /// Re-partitioned on view changes.
    data: DataStore<M::State>,
    /// Hinted states held for other replicas: `(key, intended)` → the
    /// in-flight record of the last handoff attempt. The state itself
    /// lives in `data`; this records the obligation.
    hints: BTreeMap<(Key, ReplicaId), HintFlight>,
    pending: BTreeMap<ReqId, Pending<M>>,
    timers: BTreeMap<TimerId, TimerKind>,
    /// Whether this node is a serving cluster member. Spare capacity is
    /// hosted dormant (`false`) and activated by a join announcement.
    active: bool,
    /// Whether this node is draining its ranges prior to leaving.
    leaving: bool,
    /// Unacknowledged outbound range transfers, by transfer id.
    outbound: BTreeMap<u64, TransferJob>,
    next_transfer: u64,
    /// Recently merged transfer batches, per donor — dedupes the receipt
    /// counter when a retried batch is delivered more than once. Ids are
    /// monotone per donor, so each window is pruned to a recent span of
    /// keys rather than growing forever.
    transfers_seen: BTreeMap<NodeId, TransferWindow>,
    /// Keys written while leaving, awaiting (re-)drain.
    drain_dirty: BTreeSet<Key>,
    stats: NodeStats,
    /// Per-class bytes/messages this node has put on the wire.
    wire: WireStats,
    /// Dot-reuse epoch guard — this incarnation's number (bumped on
    /// every crash recovery and durably recorded with the reservation).
    dot_epoch: u64,
    /// Highest dot counter this node has durably reserved: minting past
    /// it fsyncs a new reservation (with headroom) first, so no dot that
    /// escaped to a peer can outlive what the log knows about.
    dot_ceiling: u64,
    /// Mint floor: non-zero only after a crash recovery, where it is the
    /// recovered ceiling — every subsequent mint is strictly above it,
    /// making the lost unsynced tail's dots unreachable.
    dot_floor: u64,
    /// Recently coordinated write request ids, with FIFO eviction order
    /// (see [`WRITE_DEDUPE_REQS`]).
    writes_seen: BTreeSet<ReqId>,
    writes_seen_order: VecDeque<ReqId>,
}

impl<M: Mechanism<StampedValue>> StoreNode<M> {
    /// Creates the replica server for `replica`, routing under `view`
    /// (ring and failure-detector membership are derived from it).
    pub fn new(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        view: RingView<ReplicaId>,
    ) -> Self {
        config.validate();
        let ring = view.to_ring(config.vnodes);
        let membership = Membership::new(view.members());
        let mut data = DataStore::new();
        data.repartition(ring.token_points().collect());
        StoreNode {
            replica,
            mech,
            config,
            view,
            ring,
            membership,
            data,
            hints: BTreeMap::new(),
            pending: BTreeMap::new(),
            timers: BTreeMap::new(),
            active: true,
            leaving: false,
            outbound: BTreeMap::new(),
            next_transfer: 0,
            transfers_seen: BTreeMap::new(),
            drain_dirty: BTreeSet::new(),
            stats: NodeStats::default(),
            wire: WireStats::default(),
            dot_epoch: 0,
            dot_ceiling: 0,
            dot_floor: 0,
            writes_seen: BTreeSet::new(),
            writes_seen_order: VecDeque::new(),
        }
    }

    /// Creates the replica server for `replica` on top of an existing
    /// storage engine — the crash-recovery constructor. The engine
    /// arrives pre-populated (a durable log replays itself on open);
    /// re-partitioning fingerprints the adopted keys into the AAE
    /// index, so the node is immediately AAE-capable over its recovered
    /// contents. The node boots with the genesis `view` it was
    /// originally configured with: everything newer reaches it in band,
    /// through the [`Msg::Rejoin`] the control plane posts (which also
    /// arms its periodic timers — a mid-run node gets no `on_start`).
    pub fn with_engine(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        view: RingView<ReplicaId>,
        engine: Box<dyn storage::StorageEngine<M::State>>,
    ) -> Self {
        let mut node = Self::new(replica, mech, config, view);
        let mut data = DataStore::with_engine(engine);
        data.repartition(node.ring.token_points().collect());
        node.data = data;
        if node.config.dot_guard {
            if let Some((epoch, ceiling)) = node.data.load_reservation() {
                // A previous incarnation reserved up to `ceiling`; under
                // coarse durability the replayed states may sit *below*
                // dots that escaped to peers before the crash. Resume
                // minting strictly above the reservation and bump the
                // incarnation epoch (durably, so a double crash keeps
                // bumping).
                node.dot_epoch = epoch + 1;
                node.dot_ceiling = ceiling;
                node.dot_floor = ceiling;
                node.data.store_reservation(node.dot_epoch, ceiling);
            }
        }
        node
    }

    /// Creates a dormant spare server: hosted by the simulation but not a
    /// ring member. It ignores all traffic until a join announcement
    /// (delivered by the control plane) activates it.
    pub fn dormant(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        view: RingView<ReplicaId>,
    ) -> Self {
        let mut node = Self::new(replica, mech, config, view);
        node.active = false;
        node
    }

    /// A dormant spare on an existing storage engine — so a spare that
    /// later joins (and everything transferred to it) persists, and a
    /// crashed ex-spare recovers like any other member.
    pub fn dormant_with_engine(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        view: RingView<ReplicaId>,
        engine: Box<dyn storage::StorageEngine<M::State>>,
    ) -> Self {
        let mut node = Self::with_engine(replica, mech, config, view, engine);
        node.active = false;
        node
    }

    /// This server's replica id.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// The causality mechanism this node runs (drivers clone it into
    /// their [`NodeCtx`] impls for message sizing).
    pub fn mech(&self) -> &M {
        &self.mech
    }

    /// Per-message header overhead in bytes (driver contexts charge it
    /// on every send).
    pub fn header_bytes(&self) -> usize {
        self.config.header_bytes
    }

    /// The node's store configuration (quorum sizes, intervals, ring
    /// geometry) — harness audits read `n`/`vnodes` from here.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Per-class wire bytes/messages this node has sent.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// The per-key states this replica currently holds.
    pub fn data(&self) -> &DataStore<M::State> {
        &self.data
    }

    /// Forces the storage engine to make buffered writes durable —
    /// harness hook for graceful-shutdown scenarios (a crash, by
    /// contrast, is modelled by dropping the node *without* syncing,
    /// losing whatever the durability interval had not yet flushed).
    pub fn sync_storage(&mut self) {
        self.data.sync_storage();
    }

    /// The dot-reuse epoch guard's `(incarnation_epoch, counter_ceiling,
    /// mint_floor)` — audit hook for the crash-recovery suites.
    pub fn dot_guard_state(&self) -> (u64, u64, u64) {
        (self.dot_epoch, self.dot_ceiling, self.dot_floor)
    }

    /// Records `req` as a coordinated write; returns `false` when it
    /// was already seen within the dedupe window — the frame is a
    /// network-injected duplicate or stale replay and must be ignored,
    /// never re-minted (client retries always carry a fresh id).
    fn note_write_seen(&mut self, req: ReqId) -> bool {
        if !self.writes_seen.insert(req) {
            self.stats.dup_writes_ignored += 1;
            return false;
        }
        self.writes_seen_order.push_back(req);
        if self.writes_seen_order.len() > WRITE_DEDUPE_REQS {
            if let Some(old) = self.writes_seen_order.pop_front() {
                self.writes_seen.remove(&old);
            }
        }
        true
    }

    /// Coordinates the mechanism write that mints a fresh version,
    /// maintaining the dot-reuse epoch guard: minting is floored at the
    /// recovered counter ceiling, and before a mint may exceed the
    /// durably reserved ceiling a new reservation (with headroom) is
    /// fsynced — strictly before the minted dot escapes in any outgoing
    /// message, which is why this returns before the caller sends.
    fn mint_write(
        &mut self,
        key: &Key,
        origin: WriteOrigin,
        put_ctx: &M::Context,
        value: StampedValue,
    ) -> M::State {
        let mech = &self.mech;
        let floor = if self.config.dot_guard {
            self.dot_floor
        } else {
            0
        };
        let mut minted = None;
        let state = self
            .data
            .mutate(key, |st| {
                minted = mech.write_with_floor(st, origin, put_ctx, value, floor);
            })
            .clone();
        if self.config.dot_guard {
            if let Some(counter) = minted {
                if counter > self.dot_ceiling {
                    self.dot_ceiling = counter + self.config.dot_headroom;
                    self.data
                        .store_reservation(self.dot_epoch, self.dot_ceiling);
                }
            }
        }
        state
    }

    /// Whether this node is currently a serving cluster member.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Monotone version of this node's ring view (sum of member
    /// incarnations — grows with every membership change merged in).
    pub fn ring_epoch(&self) -> u64 {
        self.view.version()
    }

    /// The mergeable membership state this node currently routes under.
    pub fn view(&self) -> &RingView<ReplicaId> {
        &self.view
    }

    /// Digest of this node's ring view; equal digests mean identical
    /// merged membership states (the convergence check).
    pub fn view_digest(&self) -> u64 {
        self.view.digest()
    }

    /// Unacknowledged outbound range-transfer batches.
    pub fn transfer_backlog(&self) -> usize {
        self.outbound.len() + self.drain_dirty.len()
    }

    /// Whether a leave-drain has delivered every owed key range.
    pub fn drain_complete(&self) -> bool {
        self.leaving && self.outbound.is_empty() && self.drain_dirty.is_empty()
    }

    /// Direct state merge — used by the test harness's `converge()`, not
    /// by the protocol.
    pub fn merge_state_direct(&mut self, key: &[u8], state: &M::State) {
        let mech = &self.mech;
        self.data.mutate(key, |local| mech.merge(local, state));
    }

    /// Marks a peer down/up in this node's failure-detector view.
    pub fn set_peer_status(&mut self, peer: ReplicaId, up: bool) {
        if up {
            self.membership.mark_up(&peer);
        } else {
            self.membership.mark_down(&peer);
        }
    }

    /// Control-plane view synchronisation: merges `view` and rebuilds the
    /// routing state, without queuing any rebalance (no network context).
    /// With gossip dissemination and in-band re-admission this is a
    /// **safety valve**, not a correctness step — the harness only
    /// applies it when [`force_view_sync`] is configured.
    ///
    /// [`force_view_sync`]: crate::cluster::ClusterConfig::force_view_sync
    pub fn force_view(&mut self, view: &RingView<ReplicaId>) {
        if self.view.merge(view) {
            self.ring = self.view.to_ring(self.config.vnodes);
            self.data.repartition(self.ring.token_points().collect());
            self.reconcile_self_status();
        }
        self.membership.sync_members(&self.view.members());
    }

    /// Completes a leave after the drain: clears the (fully drained)
    /// store, hint obligations and timers, and returns to dormancy.
    ///
    /// # Panics
    ///
    /// Panics if the drain has not completed.
    pub fn finish_leave(&mut self) {
        assert!(self.drain_complete(), "finish_leave before drain completed");
        self.data.clear();
        self.hints.clear();
        self.pending.clear();
        self.timers.clear();
        self.outbound.clear();
        self.leaving = false;
        self.active = false;
    }

    /// Number of hint obligations currently held.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// The keys of all currently held hint obligations.
    pub fn hinted_keys(&self) -> Vec<Key> {
        self.hints.keys().map(|(k, _)| k.clone()).collect()
    }

    /// The `(key, intended owner)` pairs of all held hint obligations.
    pub fn hint_obligations(&self) -> Vec<(Key, ReplicaId)> {
        self.hints.keys().cloned().collect()
    }

    /// Total causal-metadata bytes across all keys at this replica.
    pub fn metadata_bytes(&self) -> usize {
        self.data.values().map(|s| self.mech.metadata_size(s)).sum()
    }

    /// Removes keys whose every surviving sibling is a tombstone,
    /// returning how many keys were reclaimed. Hint obligations for
    /// reclaimed keys are purged with them — a hint without backing data
    /// could never be handed off and would leak forever.
    ///
    /// Dropping a tombstone is only safe once it has reached every
    /// replica (otherwise anti-entropy would resurrect the deleted data
    /// from a replica that never saw the delete) — the caller is
    /// responsible for invoking this after convergence, as
    /// [`crate::cluster::Cluster::collect_garbage`] does.
    pub fn collect_garbage(&mut self) -> usize {
        let dead: Vec<Key> = self
            .data
            .iter()
            .filter(|(_, st)| {
                let (values, _) = self.mech.read(st);
                !values.is_empty() && values.iter().all(|v| v.tombstone)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            self.data.remove(k);
        }
        self.purge_orphan_hints();
        dead.len()
    }

    /// Drops hint obligations whose backing state is gone (reclaimed by
    /// garbage collection or moved away by a range transfer).
    fn purge_orphan_hints(&mut self) {
        let data = &self.data;
        self.hints.retain(|(k, _), _| data.contains_key(k));
    }

    /// Mean sibling count across keys (0 when no keys).
    pub fn mean_siblings(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let total: usize = self.data.values().map(|s| self.mech.sibling_count(s)).sum();
        total as f64 / self.data.len() as f64
    }

    /// Whether arc `idx` of the current ring is replicated by both this
    /// node and `peer` — i.e. whether its keys belong in a shared AAE
    /// exchange. Scoping anti-entropy to the shared replica set keeps
    /// AAE from planting copies on nodes that do not own them
    /// (whole-keyspace AAE would slowly turn every node into a replica
    /// of everything, defeating the residual-copy audit).
    fn arc_shared_with(&self, idx: usize, peer: ReplicaId) -> bool {
        let prefs = self.ring.arc_prefs(idx, self.config.n);
        prefs.contains(&self.replica) && prefs.contains(&peer)
    }

    /// Applies the data store's pending AAE refreshes (see
    /// [`DataStore::flush`]). The protocol runs this before every
    /// summary read; public so benches and tests can reach a flushed
    /// state explicitly.
    pub fn flush_aae_index(&mut self) {
        self.data.flush();
    }

    /// Root of the Merkle summary over the keys this node and `peer`
    /// both replicate: the XOR of the cached per-arc roots of the shared
    /// arcs — O(arcs), no keyspace scan, no state rehash. Reads the
    /// flushed index ([`Self::flush_aae_index`]); public so the AAE
    /// benchmarks can measure the per-tick cost directly.
    pub fn shared_summary_root(&self, peer: ReplicaId) -> u64 {
        let mut root = 0u64;
        for idx in 0..self.ring.arc_count() {
            if self.arc_shared_with(idx, peer) {
                root ^= self.data.arc_root(idx);
            }
        }
        root
    }

    /// The full Merkle summary shared with `peer`, assembled from the
    /// maintained per-arc summaries. Only built when roots already
    /// disagreed and a leaf exchange is actually needed.
    fn shared_summary(&self, peer: ReplicaId) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for idx in 0..self.ring.arc_count() {
            if self.arc_shared_with(idx, peer) {
                if let Some(s) = self.data.arc_summary(idx) {
                    m.extend_from(s);
                }
            }
        }
        m
    }

    /// The non-empty shared arcs and their cached roots — the first,
    /// cheap step of a delta anti-entropy exchange. Empty arcs are
    /// omitted: the receiver iterates its *own* shared arcs and treats a
    /// missing entry as root 0, which is exactly what an empty arc
    /// hashes to, so the comparison stays symmetric under aligned views.
    fn shared_arc_roots(&self, peer: ReplicaId) -> Vec<(u32, u64)> {
        let mut arcs = Vec::new();
        for idx in 0..self.ring.arc_count() {
            if self.arc_shared_with(idx, peer) {
                let root = self.data.arc_root(idx);
                if root != 0 {
                    arcs.push((idx as u32, root));
                }
            }
        }
        arcs
    }

    /// The Merkle summary shared with `peer`, restricted to `arcs` —
    /// the leaves a delta exchange sends once per-arc roots have
    /// narrowed the divergence down. Out-of-range or non-shared arc
    /// indices are skipped (they cannot occur under the digest guard,
    /// but a malformed index must not panic the node).
    fn shared_summary_scoped(&self, peer: ReplicaId, arcs: &[u32]) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for &idx in arcs {
            let idx = idx as usize;
            if idx < self.ring.arc_count() && self.arc_shared_with(idx, peer) {
                if let Some(s) = self.data.arc_summary(idx) {
                    m.extend_from(s);
                }
            }
        }
        m
    }

    /// From-scratch reference implementation of the shared summary: the
    /// pre-cache keyspace scan (per-key hash, uncached ring walk, state
    /// rehash). Used by [`Self::audit_aae_index`] as the equivalence
    /// oracle and by the AAE benchmarks as the before/after baseline.
    pub fn rebuild_shared_summary(&self, peer: ReplicaId) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for (k, s) in self.data.iter() {
            let prefs = self
                .ring
                .walk_preference_list_at(ring::hash_key(k), self.config.n);
            if prefs.contains(&self.replica) && prefs.contains(&peer) {
                m.set(k.clone(), fingerprint(s));
            }
        }
        m
    }

    /// Audits the incrementally maintained AAE state against a
    /// from-scratch rebuild: the data store's per-arc summaries, cached
    /// key points and state fingerprints ([`DataStore::audit_index`]),
    /// and the arc partition's agreement with the current ring. The
    /// incremental-vs-rebuild proptest oracle runs this on every member
    /// after arbitrary interleavings of puts/deletes/GC/transfers/view
    /// merges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit_aae_index(&self) -> Result<(), String> {
        if self.data.arc_bounds() != self.ring.arc_bounds() {
            return Err(format!(
                "replica {:?}: data partition has {} arcs, ring has {}",
                self.replica,
                self.data.arc_bounds().len(),
                self.ring.arc_count()
            ));
        }
        self.data
            .audit_index()
            .map_err(|e| format!("replica {:?}: {e}", self.replica))?;
        // the shared-summary comparison reads per-arc summaries, which
        // are only current after a flush; audit a flushed copy so the
        // check holds at any observation point without mutating the node
        let flushed = {
            let mut d = self.data.clone();
            d.flush();
            d
        };
        let assemble = |peer: ReplicaId| {
            let mut m = MerkleSummary::new();
            let mut root = 0u64;
            for idx in 0..self.ring.arc_count() {
                if self.arc_shared_with(idx, peer) {
                    root ^= flushed.arc_root(idx);
                    if let Some(s) = flushed.arc_summary(idx) {
                        m.extend_from(s);
                    }
                }
            }
            (m, root)
        };
        for peer in self.ring.nodes() {
            if *peer == self.replica {
                continue;
            }
            let rebuilt = self.rebuild_shared_summary(*peer);
            let (assembled, root) = assemble(*peer);
            if assembled.leaves() != rebuilt.leaves() || root != rebuilt.root() {
                return Err(format!(
                    "replica {:?}: shared summary with {peer:?} diverged \
                     (incremental {} keys root {root}, rebuilt {} keys root {})",
                    self.replica,
                    assembled.len(),
                    rebuilt.len(),
                    rebuilt.root()
                ));
            }
        }
        Ok(())
    }

    /// Sends through the driver and records what *it* charged: the
    /// context is the single source of truth for wire bytes
    /// ([`NodeCtx::send`] derives them from [`Msg::wire_size`] plus the
    /// header overhead), so accounting cannot drift per call site.
    fn send(&mut self, ctx: &mut impl NodeCtx<M>, to: NodeId, msg: Msg<M>) {
        let class = msg.class();
        let bytes = ctx.send(to, msg);
        self.wire.record(class, bytes);
    }

    fn active_replicas(&self, key: &[u8]) -> (Vec<ReplicaId>, Vec<(ReplicaId, ReplicaId)>) {
        self.membership
            .sloppy_preference_list_at(&self.ring, self.key_point(key), self.config.n)
    }

    /// The key's ring position. Hashing a (short) key is cheaper than a
    /// tree lookup, so per-request paths hash; bulk paths that already
    /// iterate the store read the cached per-slot point instead
    /// ([`DataStore::iter_points`]).
    fn key_point(&self, key: &[u8]) -> u64 {
        ring::hash_key(key)
    }

    /// Whether this node is in the preference list at ring position
    /// `point` (allocation-free arc-cache lookup).
    fn owns_point(&self, point: u64) -> bool {
        self.ring
            .preference_list_contains(point, self.config.n, &self.replica)
    }

    /// Whether this node is in the key's current preference list.
    fn owns(&self, key: &[u8]) -> bool {
        self.owns_point(self.key_point(key))
    }

    /// Post-merge hook: a leaving node owes every newly merged key to the
    /// new owners, even if it was queued (or acked) before.
    fn note_data_merged(&mut self, key: &[u8]) {
        if self.leaving {
            self.drain_dirty.insert(key.to_vec());
        }
    }

    /// Records who a locally held copy is really for: an explicit hint
    /// (the sloppy-quorum substitute case), or — when this node holds a
    /// key outside its own preference list with no hint — a self-assigned
    /// obligation to hand the copy to the key's current primary. Every
    /// state-bearing receive path runs through this, so no residual copy
    /// survives unaccounted: it is either owned, or it has a handoff
    /// obligation that retires it once acknowledged.
    fn note_hold_obligation(&mut self, key: &[u8], hint: Option<ReplicaId>) {
        if let Some(intended) = hint {
            if intended == self.replica {
                return; // the copy is for us — nothing to track
            }
            if self.ring.nodes().contains(&intended) {
                self.hints.entry((key.to_vec(), intended)).or_insert(None);
                return;
            }
            // the named owner is no longer a ring member (a stale
            // coordinator's view named it): an obligation aimed at it
            // could never be handed off — fall through to the
            // self-assigned path instead
        }
        let point = self.key_point(key);
        if !self.owns_point(point) {
            if let Some(primary) = self.ring.primary_at(point).copied() {
                if primary != self.replica {
                    self.hints.entry((key.to_vec(), primary)).or_insert(None);
                }
            }
        }
    }

    /// Merges a state received from a peer and records the hold
    /// obligation it implies (see [`Self::note_hold_obligation`]).
    fn absorb_remote_state(&mut self, key: &Key, state: &M::State, hint: Option<ReplicaId>) {
        let mech = &self.mech;
        self.data.mutate(key, |local| mech.merge(local, state));
        self.note_data_merged(key);
        self.note_hold_obligation(key, hint);
    }

    // --- ring-view gossip --------------------------------------------------

    /// Reacts to a peer's observed ring-view digest (request header,
    /// gossip digest, or AAE piggyback). Digests carry no order, so
    /// "behind" and "ahead" are meaningless — a mismatch starts a
    /// reconciliation that merges both ways:
    ///
    /// * **delta** (ring members, unless configured `Full`): send a
    ///   per-member summary ([`Msg::RingSummary`]); the peer answers
    ///   with only the entries the summary proves missing or dominated
    ///   ([`Msg::RingDelta`]), plus the members it wants back.
    /// * **full push** (clients and non-members, or `delta_views:
    ///   Full`): send the whole view; the receiver merges and pushes
    ///   back iff the sender's copy was incomplete
    ///   ([`Self::handle_ring_epoch`]).
    ///
    /// Either way both ends converge in at most one round-trip.
    fn note_peer_digest(&mut self, ctx: &mut impl NodeCtx<M>, from: NodeId, digest: u64) {
        if digest == self.view.digest() {
            return;
        }
        // A summary is only useful to a peer that speaks the delta
        // protocol — clients (never ring members) only absorb full
        // views, so they keep getting the push.
        let peer = ReplicaId(from.0);
        let use_summary = self.view.entry(&peer).is_some()
            && match self.config.delta_views {
                DeltaPolicy::Full => false,
                DeltaPolicy::Force => true,
                // below a handful of members the full view is at most a
                // few bytes larger than the summary — skip the extra
                // round-trip
                DeltaPolicy::Auto => self.view.entry_count() >= 3,
            };
        if use_summary {
            let entries = self.view.summary();
            self.send(ctx, from, Msg::RingSummary { entries });
        } else {
            let view = self.view.clone();
            self.send(ctx, from, Msg::RingEpoch { view });
        }
    }

    /// Answers a peer's per-member summary with the delta it proves
    /// necessary: entries the peer lacks or holds dominated, plus the
    /// members this node wants back. Falls back to a full view push when
    /// the delta would not be smaller (unless the policy forces deltas).
    fn handle_ring_summary(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        from: NodeId,
        summary: &[(ReplicaId, u64)],
    ) {
        let (entries, want) = self.view.delta_against(summary);
        if entries.is_empty() && want.is_empty() {
            return; // summaries matched: views already identical
        }
        let delta_bytes = wire::member_entries_len(&entries) + wire::replica_ids_len(&want);
        if self.config.delta_views != DeltaPolicy::Force
            && delta_bytes >= wire::view_len(&self.view)
        {
            let view = self.view.clone();
            self.send(ctx, from, Msg::RingEpoch { view });
        } else {
            self.send(ctx, from, Msg::RingDelta { entries, want });
        }
    }

    /// Merges a delta's entries through the same per-member join a full
    /// view merge uses ([`RingView::absorb_delta`]); entries where the
    /// *sender's* copy is the dominated one — plus any it asked for —
    /// are pushed back as a further delta, converging both ends.
    /// Push-backs only ever carry strictly dominating entries, so the
    /// exchange terminates.
    fn handle_ring_delta(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        from: NodeId,
        entries: &[(ReplicaId, ring::MemberEntry)],
        want: &[ReplicaId],
    ) {
        let (changed, push_back) = self.view.absorb_delta(entries, want);
        if changed {
            self.after_view_change(ctx);
        }
        if !push_back.is_empty() {
            self.send(
                ctx,
                from,
                Msg::RingDelta {
                    entries: push_back,
                    want: Vec::new(),
                },
            );
        }
    }

    /// Merges a pushed full view; if the sender's copy was missing
    /// entries this node holds ([`RingView::absorb`]), pushes the merged
    /// view back so the exchange leaves both ends identical.
    fn handle_ring_epoch(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        from: NodeId,
        view: &RingView<ReplicaId>,
    ) {
        let sender_lacks = self.merge_view(ctx, view).1;
        if sender_lacks {
            let merged = self.view.clone();
            self.send(ctx, from, Msg::RingEpoch { view: merged });
        }
    }

    /// One gossip round: sends this node's view digest to up to `fanout`
    /// distinct random up ring peers.
    fn gossip_once(&mut self, ctx: &mut impl NodeCtx<M>, fanout: usize) {
        let mut peers: Vec<ReplicaId> = self
            .membership
            .up_nodes()
            .into_iter()
            .filter(|p| *p != self.replica && self.ring.nodes().contains(p))
            .collect();
        if peers.is_empty() {
            return;
        }
        self.stats.gossip_rounds += 1;
        let digest = self.view.digest();
        for _ in 0..fanout.min(peers.len()) {
            let idx = ctx.rng().range_u64(0, peers.len() as u64) as usize;
            let peer = peers.swap_remove(idx);
            self.send(ctx, NodeId(peer.0), Msg::GossipDigest { digest });
        }
    }

    fn handle_gossip_timer(&mut self, ctx: &mut impl NodeCtx<M>) {
        self.gossip_once(ctx, 1);
        if self.config.gossip_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.gossip_interval);
            self.timers.insert(t, TimerKind::Gossip);
        }
    }

    /// Reconciles this node's lifecycle flags with what the merged view
    /// says about it: a `Leaving`/`Removed` entry starts (or keeps) the
    /// drain; an `Up`/`Joining` entry that beat a stale `Leaving` one is
    /// an in-band re-admission — stop draining but keep the unacked
    /// transfer backlog. The retry machinery lets those batches finish on
    /// their own: on ack, keys this (re-admitted) node owns again are
    /// simply kept, while keys it holds without owning — e.g. residual
    /// copies queued for retirement before the leave — are still dropped,
    /// so no copy goes back to being unaccounted.
    fn reconcile_self_status(&mut self) {
        if !self.active {
            return;
        }
        match self.view.status(&self.replica) {
            Some(MemberStatus::Leaving | MemberStatus::Removed) => self.leaving = true,
            Some(MemberStatus::Up | MemberStatus::Joining) => self.leaving = false,
            None => {}
        }
    }

    /// Merges a learned ring view into this node's; on change, rebuilds
    /// the ring, reconciles membership (new members start up, departed
    /// members are forgotten, failure-detector marks survive) and this
    /// node's own lifecycle ([`Self::reconcile_self_status`]), retargets
    /// hint obligations aimed at departed nodes, queues the data motion
    /// the *pre/post-merge ownership diff* implies (donations to owners
    /// that gained ranges, retirement of residual copies this node holds
    /// but no longer owns), and pushes the view on eagerly. Returns
    /// `(changed, sender_lacks)` as reported by [`RingView::absorb`].
    fn merge_view(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        view: &RingView<ReplicaId>,
    ) -> (bool, bool) {
        let (changed, sender_lacks) = self.view.absorb(view);
        if changed {
            self.after_view_change(ctx);
        }
        (changed, sender_lacks)
    }

    /// Everything adopting a changed view implies, regardless of how the
    /// change arrived (full view push or delta): rebuild routing state,
    /// reconcile membership and lifecycle, retarget hints, queue the
    /// ownership-diff data motion, and gossip the news on.
    fn after_view_change(&mut self, ctx: &mut impl NodeCtx<M>) {
        let old_ring = std::mem::replace(&mut self.ring, self.view.to_ring(self.config.vnodes));
        self.data.repartition(self.ring.token_points().collect());
        let members = self.view.members();
        self.membership.sync_members(&members);
        self.reconcile_self_status();
        // hints aimed at a non-member can never be handed off; retarget
        // each such obligation to the key's new primary (scanning the
        // hints themselves, not just the old ring's members, also cures
        // obligations a stale coordinator aimed at an already-gone node)
        let stale_intendeds: BTreeSet<ReplicaId> = self
            .hints
            .keys()
            .map(|(_, intended)| *intended)
            .filter(|intended| !members.contains(intended))
            .collect();
        for gone in stale_intendeds {
            self.retarget_hints(gone);
        }
        if self.active {
            // transfers aimed at a departed member can never be acked:
            // drop those jobs — queue_rebalance below re-plans every
            // still-held key (non-owned keys go to their current primary)
            self.outbound.retain(|_, job| members.contains(&job.to));
            self.queue_rebalance(ctx, &old_ring);
            if self.leaving {
                // the rebalance doubles as the drain plan; make sure the
                // retry timer is armed even when nothing queued yet
                self.ensure_transfer_timer(ctx);
            }
            // eager epidemic push: a new view spreads at message latency,
            // with the periodic digest timer as the partition-proof
            // backstop
            self.gossip_once(ctx, 2);
        }
    }

    /// Moves every hint obligation aimed at `gone` to the key's current
    /// primary (dropping it when this node *is* the primary).
    fn retarget_hints(&mut self, gone: ReplicaId) {
        let retarget: Vec<Key> = self
            .hints
            .keys()
            .filter(|(_, intended)| *intended == gone)
            .map(|(k, _)| k.clone())
            .collect();
        for key in retarget {
            self.hints.remove(&(key.clone(), gone));
            if let Some(primary) = self.ring.primary_at(self.key_point(&key)).copied() {
                if primary != self.replica {
                    self.hints.entry((key, primary)).or_insert(None);
                }
            }
        }
    }

    /// Plans the data motion a view change implies, over every held key:
    ///
    /// * **donation** — owners that *gained* the key (in the new
    ///   preference list, not in the old) are streamed a copy, so a
    ///   joiner receives its ranges from whoever holds them;
    /// * **residual retirement** — a key this node holds but no longer
    ///   owns is additionally streamed to its current primary, and
    ///   dropped once acknowledged ([`Self::handle_transfer_ack`]), so
    ///   copies acquired via AAE, read repair, or old ownership do not
    ///   persist forever on non-owners.
    ///
    /// A leaving node owns nothing under the new ring, so this doubles as
    /// the drain plan.
    fn queue_rebalance(&mut self, ctx: &mut impl NodeCtx<M>, old_ring: &HashRing<ReplicaId>) {
        let mut per_target: BTreeMap<ReplicaId, Vec<Key>> = BTreeMap::new();
        for (key, point, _) in self.data.iter_points() {
            // both rings' walks come from their arc caches: a binary
            // search plus a slice read per key, using the point stamped
            // when the key was stored (no per-key rehash or token walk)
            let new_walk = self.ring.full_walk_at(point);
            let new_owners = &new_walk[..self.config.n.min(new_walk.len())];
            let old_walk = old_ring.full_walk_at(point);
            let old_owners = &old_walk[..self.config.n.min(old_walk.len())];
            let mut targets: Vec<ReplicaId> = new_owners
                .iter()
                .filter(|o| !old_owners.contains(o))
                .copied()
                .collect();
            if !new_owners.contains(&self.replica) {
                // residual copy: guarantee it lands on a current owner
                // even when the range's replica set is otherwise
                // unchanged
                if let Some(primary) = new_owners.first() {
                    if !targets.contains(primary) {
                        targets.push(*primary);
                    }
                }
            }
            for t in targets {
                if t != self.replica {
                    per_target.entry(t).or_default().push(key.clone());
                }
            }
        }
        let mut queued = false;
        for (t, keys) in per_target {
            for id in self.queue_transfer(t, keys) {
                self.send_transfer(ctx, id);
                queued = true;
            }
        }
        if queued {
            self.ensure_transfer_timer(ctx);
        }
    }

    fn arm_request_timer(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let t = ctx.set_timer(self.config.request_timeout);
        self.timers.insert(t, TimerKind::Request(req));
    }

    /// Advisorily cancels the timeout timer of a request that retired
    /// with every response in (the simulator still fires it into a
    /// no-op; the threaded runtime unschedules it).
    fn cancel_request_timer(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let stale: Vec<TimerId> = self
            .timers
            .iter()
            .filter(|(_, k)| **k == TimerKind::Request(req))
            .map(|(t, _)| *t)
            .collect();
        for t in stale {
            self.timers.remove(&t);
            ctx.cancel_timer(t);
        }
    }

    fn handle_client_get(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        from: NodeId,
        req: ReqId,
        key: Key,
        digest: u64,
    ) {
        self.note_peer_digest(ctx, from, digest);
        let (active, subs) = self.active_replicas(&key);
        if active.is_empty() {
            self.stats.quorum_timeouts += 1;
            self.send(
                ctx,
                from,
                Msg::ClientGetResp {
                    req,
                    ok: false,
                    values: Vec::new(),
                    ctx: M::Context::default(),
                },
            );
            return;
        }
        let owner = active.contains(&self.replica);
        // The coordinator's own store participates only when it is an
        // active replica of the key; a non-owner assembles the quorum
        // purely from real owners.
        let (acc, responses, seen) = if owner {
            let local = self.data.get(&key).cloned().unwrap_or_default();
            let fp = fingerprint(&local);
            (local, 1, vec![(self.replica, fp)])
        } else {
            self.stats.remote_coordinations += 1;
            (M::State::default(), 0, Vec::new())
        };
        self.pending.insert(
            req,
            Pending::Get {
                key: key.clone(),
                client: from,
                acc,
                responses,
                expected: active.len(),
                replied: false,
                owner,
                seen,
                subs,
            },
        );
        for peer in &active {
            if *peer != self.replica {
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::RepGet {
                        req,
                        key: key.clone(),
                    },
                );
            }
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_get(ctx, req);
    }

    fn try_complete_get(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        // phase 1: reply to the client as soon as R responses are in
        let mut reply: Option<(NodeId, Vec<StampedValue>, M::Context)> = None;
        if let Some(Pending::Get {
            client,
            acc,
            responses,
            expected,
            replied,
            ..
        }) = self.pending.get_mut(&req)
        {
            if !*replied && *responses >= self.config.r.min(*expected) {
                *replied = true;
                let (values, read_ctx) = self.mech.read(acc);
                reply = Some((*client, values, read_ctx));
            }
        }
        if let Some((client, values, read_ctx)) = reply {
            self.stats.gets_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientGetResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        // phase 2: once every replica answered, retire and read-repair
        let done = matches!(
            self.pending.get(&req),
            Some(Pending::Get { responses, expected, replied, .. })
                if *responses >= *expected && *replied
        );
        if done {
            let Some(Pending::Get {
                key,
                acc,
                seen,
                owner,
                subs,
                ..
            }) = self.pending.remove(&req)
            else {
                return;
            };
            self.cancel_request_timer(ctx, req);
            self.finish_read_repair(ctx, &key, acc, &seen, owner, &subs);
        }
    }

    fn finish_read_repair(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        key: &[u8],
        merged: M::State,
        seen: &[(ReplicaId, u64)],
        owner: bool,
        subs: &[(ReplicaId, ReplicaId)],
    ) {
        let hint_for = |peer: &ReplicaId| {
            subs.iter()
                .find(|(_, fallback)| fallback == peer)
                .map(|(intended, _)| *intended)
        };
        // An owner folds the merged state into its own store first; a
        // non-owner coordinator must not keep any state for the key.
        let canonical = if owner {
            let mech = &self.mech;
            let folded = self
                .data
                .mutate(key, |local| mech.merge(local, &merged))
                .clone();
            self.note_data_merged(key);
            // the coordinator itself may be a sloppy fallback for a down
            // owner: track that copy like any other hinted state
            self.note_hold_obligation(key, hint_for(&self.replica));
            folded
        } else {
            merged
        };
        if !self.config.read_repair {
            return;
        }
        let target_fp = fingerprint(&canonical);
        for (peer, fp) in seen {
            if *peer != self.replica && *fp != target_fp {
                self.stats.read_repairs += 1;
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::ReadRepair {
                        key: key.to_vec(),
                        state: canonical.clone(),
                        hint: hint_for(peer),
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_client_put(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        from: NodeId,
        req: ReqId,
        key: Key,
        value: StampedValue,
        put_ctx: M::Context,
        digest: u64,
    ) {
        self.note_peer_digest(ctx, from, digest);
        if !self.note_write_seen(req) {
            return;
        }
        let (active, substitutions) = self.active_replicas(&key);
        if active.is_empty() {
            self.stats.quorum_timeouts += 1;
            self.send(
                ctx,
                from,
                Msg::ClientPutResp {
                    req,
                    ok: false,
                    values: Vec::new(),
                    ctx: M::Context::default(),
                },
            );
            return;
        }
        let owner = active.contains(&self.replica);
        let expected = active.len();
        let hint_for = |peer: &ReplicaId| {
            substitutions
                .iter()
                .find(|(_, fallback)| fallback == peer)
                .map(|(intended, _)| *intended)
        };
        if owner {
            let client = ClientId(value.id.client.0);
            let origin = WriteOrigin::new(self.replica, client);
            let state = self.mint_write(&key, origin, &put_ctx, value);
            self.note_data_merged(&key);
            // a coordinator standing in for a down owner holds its copy
            // under a hint obligation, like any other fallback
            self.note_hold_obligation(&key, hint_for(&self.replica));
            self.pending.insert(
                req,
                Pending::Put {
                    key: key.clone(),
                    client: from,
                    acks: 1,
                    expected,
                    replied: false,
                    owner: true,
                    // owners re-read their own store at completion; only
                    // remote coordination needs the state carried here
                    state: M::State::default(),
                    fanout: Vec::new(),
                },
            );
            for peer in &active {
                if *peer == self.replica {
                    continue;
                }
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::RepPut {
                        req,
                        key: key.clone(),
                        state: state.clone(),
                        hint: hint_for(peer),
                    },
                );
            }
        } else {
            // Not an owner: the dot must be minted from an owner's
            // counter, so delegate the write to the first active owner
            // and fan its post-write state out to the rest once known.
            self.stats.remote_coordinations += 1;
            let writer = active[0];
            let fanout: Vec<(ReplicaId, Option<ReplicaId>)> = active[1..]
                .iter()
                .map(|peer| (*peer, hint_for(peer)))
                .collect();
            self.pending.insert(
                req,
                Pending::Put {
                    key: key.clone(),
                    client: from,
                    acks: 0,
                    expected,
                    replied: false,
                    owner: false,
                    state: M::State::default(),
                    fanout,
                },
            );
            self.send(
                ctx,
                NodeId(writer.0),
                Msg::RepWrite {
                    req,
                    key,
                    value,
                    ctx: put_ctx,
                    hint: hint_for(&writer),
                },
            );
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_put(ctx, req);
    }

    fn try_complete_put(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let Some(Pending::Put {
            key,
            client,
            acks,
            expected,
            replied,
            owner,
            state,
            ..
        }) = self.pending.get_mut(&req)
        else {
            return;
        };
        if !*replied && *acks >= self.config.w.min(*expected) {
            *replied = true;
            let key = key.clone();
            let client = *client;
            // return_body: an owner reads its own (freshest) state; a
            // remote coordinator reads the state the delegated owner
            // returned.
            let state = if *owner {
                self.data.get(&key).cloned().unwrap_or_default()
            } else {
                state.clone()
            };
            let (values, read_ctx) = self.mech.read(&state);
            self.stats.puts_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientPutResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        let retire = matches!(
            self.pending.get(&req),
            Some(Pending::Put { acks, expected, replied, .. })
                if *acks >= *expected && *replied
        );
        if retire {
            self.pending.remove(&req);
            self.cancel_request_timer(ctx, req);
        }
    }

    fn handle_request_timeout(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        match p {
            Pending::Get {
                client,
                replied,
                key,
                acc,
                seen,
                owner,
                subs,
                ..
            } => {
                let client = *client;
                let replied = *replied;
                let key = key.clone();
                let merged = acc.clone();
                let seen = seen.clone();
                let owner = *owner;
                let subs = subs.clone();
                self.pending.remove(&req);
                if replied {
                    // reply already sent; late repair with what arrived
                    self.finish_read_repair(ctx, &key, merged, &seen, owner, &subs);
                } else {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientGetResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
            Pending::Put {
                client, replied, ..
            } => {
                let client = *client;
                let replied = *replied;
                self.pending.remove(&req);
                if !replied {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientPutResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
        }
    }

    fn handle_aae_timer(&mut self, ctx: &mut impl NodeCtx<M>) {
        // pick a random up peer and start an exchange
        let peers: Vec<ReplicaId> = self
            .membership
            .up_nodes()
            .into_iter()
            .filter(|p| *p != self.replica && self.ring.nodes().contains(p))
            .collect();
        if !peers.is_empty() {
            let peer = *ctx.rng().pick(&peers);
            self.stats.aae_rounds += 1;
            self.data.flush();
            let root = self.shared_summary_root(peer);
            self.send(
                ctx,
                NodeId(peer.0),
                Msg::AaeRoot {
                    root,
                    digest: self.view.digest(),
                },
            );
        }
        // re-arm
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.anti_entropy_interval);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
    }

    fn handle_handoff_timer(&mut self, ctx: &mut impl NodeCtx<M>) {
        let now = ctx.now();
        let retry = self.config.handoff_retry_interval;
        // a hint is due when its intended owner is up and no handoff is
        // in flight (or the in-flight one is old enough to retry)
        let due: Vec<(Key, ReplicaId)> = self
            .hints
            .iter()
            .filter(|((_, intended), inflight)| {
                self.membership.is_up(intended)
                    && inflight.is_none_or(|(sent_at, _)| now >= sent_at + retry)
            })
            .map(|(k, _)| k.clone())
            .collect();
        // coalesce due obligations per intended owner; the per-key
        // in-flight records keep retry pacing per *key*, so a batch
        // retry resends only the keys whose in-flight window expired
        let mut per_target: BTreeMap<ReplicaId, Vec<(Key, M::State)>> = BTreeMap::new();
        for (key, intended) in due {
            match self.data.get(&key) {
                Some(state) => {
                    let state = state.clone();
                    let fp = self.data.leaf_of(&key).expect("state just read");
                    self.hints.insert((key.clone(), intended), Some((now, fp)));
                    per_target.entry(intended).or_default().push((key, state));
                }
                None => {
                    // the backing state is gone (GC or range transfer):
                    // the obligation can never be fulfilled — drop it
                    self.hints.remove(&(key, intended));
                }
            }
        }
        let batch = self.config.handoff_batch_keys.max(1);
        for (intended, mut entries) in per_target {
            while !entries.is_empty() {
                let rest = entries.split_off(entries.len().min(batch));
                let chunk = std::mem::replace(&mut entries, rest);
                self.send(ctx, NodeId(intended.0), Msg::Handoff { entries: chunk });
            }
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
    }

    // --- elastic membership ------------------------------------------------

    fn arm_periodic_timers(&mut self, ctx: &mut impl NodeCtx<M>) {
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            // stagger first AAE by replica id to avoid thundering herd
            let first = simnet::Duration::from_micros(
                self.config.anti_entropy_interval.as_micros() + u64::from(self.replica.0) * 1_000,
            );
            let t = ctx.set_timer(first);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
        if self.config.gossip_interval > simnet::Duration::ZERO {
            // stagger like AAE so the fleet's digests do not phase-lock
            let first = simnet::Duration::from_micros(
                self.config.gossip_interval.as_micros() + u64::from(self.replica.0) * 700,
            );
            let t = ctx.set_timer(first);
            self.timers.insert(t, TimerKind::Gossip);
        }
    }

    /// Arms the periodic timers only if none are running — the rejoin
    /// path of a crash-recovered node, which was built mid-run and got
    /// no `on_start`.
    fn ensure_periodic_timers(&mut self, ctx: &mut impl NodeCtx<M>) {
        let armed = self.timers.values().any(|k| {
            matches!(
                k,
                TimerKind::AntiEntropy | TimerKind::Handoff | TimerKind::Gossip
            )
        });
        if !armed {
            self.arm_periodic_timers(ctx);
        }
    }

    fn ensure_transfer_timer(&mut self, ctx: &mut impl NodeCtx<M>) {
        if self.timers.values().any(|k| *k == TimerKind::Transfer) {
            return;
        }
        let t = ctx.set_timer(self.config.transfer_retry_interval);
        self.timers.insert(t, TimerKind::Transfer);
    }

    /// Queues `keys` to `to` as one or more bounded transfer batches
    /// (states snapshotted by fingerprint; resent until acknowledged),
    /// returning the new batch ids.
    fn queue_transfer(&mut self, to: ReplicaId, keys: Vec<Key>) -> Vec<u64> {
        // snapshot by the cached state fingerprint — no rehash, no clone
        let entries: Vec<(Key, u64)> = keys
            .into_iter()
            .filter_map(|k| self.data.leaf_of(&k).map(|fp| (k, fp)))
            .collect();
        let mut ids = Vec::new();
        for chunk in entries.chunks(self.config.transfer_batch_keys.max(1)) {
            let id = self.next_transfer;
            self.next_transfer += 1;
            self.outbound.insert(
                id,
                TransferJob {
                    to,
                    keys: chunk.to_vec(),
                },
            );
            ids.push(id);
        }
        ids
    }

    fn send_transfer(&mut self, ctx: &mut impl NodeCtx<M>, id: u64) {
        let Some(job) = self.outbound.get(&id) else {
            return;
        };
        if !self.membership.is_routable(&job.to) {
            // don't flood a peer the failure detector marks down: the
            // batch stays queued and the transfer timer retries it once
            // the peer recovers (mirrors the handoff in-flight guard)
            return;
        }
        let to = NodeId(job.to.0);
        let entries: Vec<(Key, M::State)> = job
            .keys
            .iter()
            .filter_map(|(k, _)| self.data.get(k).map(|s| (k.clone(), s.clone())))
            .collect();
        if entries.is_empty() {
            // every key in the batch is gone (GC or a prior drop): the
            // obligation is moot
            self.outbound.remove(&id);
            return;
        }
        // count the *actual* send, so retries show up and in/out totals
        // stay comparable under loss
        self.stats.transfers_out += 1;
        self.send(ctx, to, Msg::RangeTransfer { id, entries });
    }

    /// Applies a control-plane membership announcement. Only the
    /// *subject* of the change receives one; every other process learns
    /// the view transitively through gossip. Lifecycle effects — start
    /// draining on a leave, stop on a re-admission — fall out of
    /// [`Self::merge_view`]'s self-status reconciliation, so a node that
    /// learns about its *own* change transitively behaves identically.
    fn handle_announce(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        view: RingView<ReplicaId>,
        who: ReplicaId,
        joining: bool,
    ) {
        let wakes = joining
            && who == self.replica
            && !self.active
            && view
                .status(&self.replica)
                .is_some_and(MemberStatus::in_ring);
        if !(self.active || wakes) {
            return; // dormant spares only wake for their own join
        }
        if wakes {
            self.active = true;
            self.leaving = false;
            self.membership.mark_up(&self.replica);
            self.merge_view(ctx, &view);
            self.arm_periodic_timers(ctx);
            return;
        }
        self.merge_view(ctx, &view);
    }

    fn handle_transfer_ack(&mut self, ctx: &mut impl NodeCtx<M>, id: u64) {
        let Some(job) = self.outbound.remove(&id) else {
            return;
        };
        let mut requeue: Vec<Key> = Vec::new();
        for (key, fp) in job.keys {
            if self.owns(&key) {
                continue; // still an owner: the copy stays either way
            }
            match self.data.leaf_of(&key) {
                None => {}
                Some(leaf) if leaf == fp => {
                    // the range moved away and the new owner acked this
                    // exact state: safe to drop our copy
                    self.data.remove(&key);
                }
                Some(_) => {
                    // the state advanced after the snapshot — resend the
                    // fresher state before it can be dropped
                    requeue.push(key);
                }
            }
        }
        self.purge_orphan_hints();
        if !requeue.is_empty() {
            let mut queued = false;
            for id in self.queue_transfer(job.to, requeue) {
                self.send_transfer(ctx, id);
                queued = true;
            }
            if queued {
                self.ensure_transfer_timer(ctx);
            }
        }
    }

    fn handle_transfer_timer(&mut self, ctx: &mut impl NodeCtx<M>) {
        // drain keys written since the last tick to their current owners
        let dirty: Vec<Key> = std::mem::take(&mut self.drain_dirty).into_iter().collect();
        let mut per_target: BTreeMap<ReplicaId, Vec<Key>> = BTreeMap::new();
        for key in dirty {
            let point = self.key_point(&key);
            for t in self.ring.full_walk_at(point).iter().take(self.config.n) {
                if *t != self.replica {
                    per_target.entry(*t).or_default().push(key.clone());
                }
            }
        }
        for (t, keys) in per_target {
            self.queue_transfer(t, keys);
        }
        // resend every unacked batch
        let ids: Vec<u64> = self.outbound.keys().copied().collect();
        for id in ids {
            self.send_transfer(ctx, id);
        }
        if !self.outbound.is_empty() || !self.drain_dirty.is_empty() {
            let t = ctx.set_timer(self.config.transfer_retry_interval);
            self.timers.insert(t, TimerKind::Transfer);
        }
    }

    /// Entry point: dispatches one message.
    pub fn on_message(&mut self, ctx: &mut impl NodeCtx<M>, from: NodeId, msg: Msg<M>) {
        if !self.active {
            // A dormant node serves no data, but it stays a good ring
            // citizen: it wakes for its own join, passively merges views,
            // and answers digest mismatches (e.g. clients still routing
            // to a retired leaver) with its own view.
            match msg {
                Msg::JoinAnnounce { view, who, joining } => {
                    self.handle_announce(ctx, view, who, joining);
                }
                Msg::RingEpoch { view } => {
                    self.handle_ring_epoch(ctx, from, &view);
                }
                Msg::RingSummary { entries } => {
                    self.handle_ring_summary(ctx, from, &entries);
                }
                Msg::RingDelta { entries, want } => {
                    self.handle_ring_delta(ctx, from, &entries, &want);
                }
                Msg::GossipDigest { digest }
                | Msg::AaeRoot { digest, .. }
                | Msg::ClientGet { digest, .. }
                | Msg::ClientPut { digest, .. } => {
                    self.note_peer_digest(ctx, from, digest);
                }
                _ => {}
            }
            return;
        }
        match msg {
            Msg::ClientGet { req, key, digest } => {
                self.handle_client_get(ctx, from, req, key, digest)
            }
            Msg::ClientPut {
                req,
                key,
                value,
                ctx: put_ctx,
                digest,
            } => self.handle_client_put(ctx, from, req, key, value, put_ctx, digest),
            Msg::RepGet { req, key } => {
                let state = self.data.get(&key).cloned().unwrap_or_default();
                self.send(ctx, from, Msg::RepGetResp { req, key, state });
            }
            Msg::RepGetResp { req, key: _, state } => {
                if let Some(Pending::Get {
                    acc,
                    responses,
                    seen,
                    ..
                }) = self.pending.get_mut(&req)
                {
                    let fp = fingerprint(&state);
                    seen.push((ReplicaId(from.0), fp));
                    self.mech.merge(acc, &state);
                    *responses += 1;
                    self.try_complete_get(ctx, req);
                }
            }
            Msg::RepPut {
                req,
                key,
                state,
                hint,
            } => {
                self.absorb_remote_state(&key, &state, hint);
                self.send(ctx, from, Msg::RepPutAck { req });
            }
            Msg::RepPutAck { req } => {
                if let Some(Pending::Put { acks, .. }) = self.pending.get_mut(&req) {
                    *acks += 1;
                    self.try_complete_put(ctx, req);
                }
            }
            Msg::RepWrite {
                req,
                key,
                value,
                ctx: put_ctx,
                hint,
            } => {
                // delegated write from a non-owner coordinator: mint the
                // dot here and hand the post-write state back — once per
                // request id (a duplicated or replayed delegation must
                // not mint again)
                if !self.note_write_seen(req) {
                    return;
                }
                let client = ClientId(value.id.client.0);
                let origin = WriteOrigin::new(self.replica, client);
                let state = self.mint_write(&key, origin, &put_ctx, value);
                self.note_data_merged(&key);
                self.note_hold_obligation(&key, hint);
                self.send(ctx, from, Msg::RepWriteResp { req, key, state });
            }
            Msg::RepWriteResp { req, key: _, state } => {
                let mut sends: Vec<(ReplicaId, Option<ReplicaId>)> = Vec::new();
                let mut fan_key: Key = Vec::new();
                if let Some(Pending::Put {
                    key,
                    acks,
                    state: pstate,
                    fanout,
                    ..
                }) = self.pending.get_mut(&req)
                {
                    *pstate = state.clone();
                    *acks += 1;
                    fan_key.clone_from(key);
                    sends.append(fanout);
                }
                for (peer, hint) in sends {
                    self.send(
                        ctx,
                        NodeId(peer.0),
                        Msg::RepPut {
                            req,
                            key: fan_key.clone(),
                            state: state.clone(),
                            hint,
                        },
                    );
                }
                self.try_complete_put(ctx, req);
            }
            Msg::ReadRepair { key, state, hint } => {
                self.absorb_remote_state(&key, &state, hint);
            }
            Msg::AaeRoot { root, digest } => {
                // the root doubles as a gossip digest carrier
                self.note_peer_digest(ctx, from, digest);
                let peer = ReplicaId(from.0);
                // cached per-arc roots XOR-combine: comparing costs
                // O(dirty + arcs), the full summary is only assembled on
                // mismatch
                self.data.flush();
                if self.shared_summary_root(peer) != root {
                    // "Shared" is only well-defined under identical
                    // views: answering a misaligned root with leaves
                    // built under OUR view makes the initiator diff them
                    // under ITS view — in the worst case (peer absent
                    // from our ring mid-churn) an empty push that the
                    // initiator answers by shipping every key it thinks
                    // we share. Skip the round; note_peer_digest above
                    // already started the realignment and the next AAE
                    // tick retries with aligned views.
                    if digest != self.view.digest() {
                        return;
                    }
                    let use_arcs = match self.config.delta_aae {
                        DeltaPolicy::Full => false,
                        DeltaPolicy::Force => true,
                        // with only a handful of arcs the root list
                        // saves little over the leaves themselves
                        DeltaPolicy::Auto => self.ring.arc_count() >= 8,
                    };
                    if use_arcs {
                        let arcs = self.shared_arc_roots(peer);
                        let digest = self.view.digest();
                        self.send(ctx, from, Msg::AaeArcRoots { arcs, digest });
                    } else {
                        let leaves = self.shared_summary(peer).leaves();
                        let digest = self.view.digest();
                        self.send(
                            ctx,
                            from,
                            Msg::AaeLeaves {
                                leaves,
                                arcs: None,
                                digest,
                            },
                        );
                    }
                }
            }
            Msg::AaeArcRoots { arcs, digest } => {
                // we initiated this round; the responder's shared root
                // differed and it answered with its per-arc roots
                if digest != self.view.digest() {
                    // views moved between the root and arc steps: arc
                    // indices no longer align — abort, realign views, and
                    // let the next AAE tick retry
                    self.note_peer_digest(ctx, from, digest);
                    return;
                }
                let peer = ReplicaId(from.0);
                self.data.flush();
                let theirs: BTreeMap<u32, u64> = arcs.into_iter().collect();
                let mut differing: Vec<u32> = Vec::new();
                for idx in 0..self.ring.arc_count() {
                    if self.arc_shared_with(idx, peer) {
                        let mine = self.data.arc_root(idx);
                        let their_root = theirs.get(&(idx as u32)).copied().unwrap_or(0);
                        if mine != their_root {
                            differing.push(idx as u32);
                        }
                    }
                }
                if differing.is_empty() {
                    // shared roots differed but every arc agrees — can
                    // only happen transiently (e.g. flush timing); the
                    // next round settles it
                    return;
                }
                // divergence is an initiator-side statistic, counted here
                // on the delta path (and on receiving full leaves below)
                self.stats.aae_divergent += 1;
                // send even when our scoped summary is empty: the peer
                // may hold keys in these arcs that we lack entirely
                let leaves = self.shared_summary_scoped(peer, &differing).leaves();
                self.send(
                    ctx,
                    from,
                    Msg::AaeLeaves {
                        leaves,
                        arcs: Some(differing),
                        digest,
                    },
                );
            }
            Msg::AaeLeaves {
                leaves,
                arcs,
                digest,
            } => {
                if digest != self.view.digest() {
                    // leaves (scoped or full) are only meaningful under
                    // the view they were built by; realign and retry
                    // next tick
                    self.note_peer_digest(ctx, from, digest);
                    return;
                }
                self.note_peer_digest(ctx, from, digest);
                self.data.flush();
                let peer = ReplicaId(from.0);
                let mine = match &arcs {
                    // delta exchange: compare only within the arcs the
                    // initiator proved divergent
                    Some(list) => self.shared_summary_scoped(peer, list),
                    None => self.shared_summary(peer),
                };
                let mut theirs = MerkleSummary::new();
                for (k, h) in leaves {
                    theirs.set(k, h);
                }
                // keys where we differ in either direction
                let mut keys = mine.diff(&theirs); // they have, we differ/lack
                for k in theirs.diff(&mine) {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                if !keys.is_empty() && arcs.is_none() {
                    // full-push form: this node initiated the round, so
                    // the divergence is counted here (the delta form
                    // counts it when the arc roots differ)
                    self.stats.aae_divergent += 1;
                }
                let states: Vec<(Key, M::State)> = keys
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                if !states.is_empty() || !keys.is_empty() {
                    self.send(ctx, from, Msg::AaeStates { states, want: keys });
                }
            }
            Msg::AaeStates { states, want } => {
                for (k, s) in states {
                    self.absorb_remote_state(&k, &s, None);
                }
                let back: Vec<(Key, M::State)> = want
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                self.send(ctx, from, Msg::AaeStatesResp { states: back });
            }
            Msg::AaeStatesResp { states } => {
                for (k, s) in states {
                    self.absorb_remote_state(&k, &s, None);
                }
            }
            Msg::Handoff { entries } => {
                let keys: Vec<Key> = entries.iter().map(|(k, _)| k.clone()).collect();
                for (k, s) in entries {
                    self.absorb_remote_state(&k, &s, None);
                }
                self.send(ctx, from, Msg::HandoffAck { keys });
            }
            Msg::HandoffAck { keys } => {
                let intended = ReplicaId(from.0);
                // per-key settlement: a batch ack retires exactly the
                // keys whose sent snapshot the owner now holds, and
                // re-arms the rest individually
                for key in keys {
                    let Some(inflight) = self.hints.remove(&(key.clone(), intended)) else {
                        continue;
                    };
                    match (inflight, self.data.leaf_of(&key)) {
                        (Some((_, sent_fp)), Some(fp)) if fp == sent_fp => {
                            // the intended owner holds exactly what we
                            // sent: the obligation is met, and a copy we
                            // do not own is retired rather than lingering
                            // as an untracked residual
                            self.stats.handoffs += 1;
                            if !self.owns(&key) {
                                self.data.remove(&key);
                                self.purge_orphan_hints();
                            }
                        }
                        (_, None) => {
                            // backing data is gone (GC or a range
                            // transfer): the obligation is moot
                        }
                        _ => {
                            // the local state advanced past the sent
                            // snapshot (or this ack matches no tracked
                            // send): the obligation stands for the
                            // fresher state — hand it off again later
                            self.hints.insert((key, intended), None);
                        }
                    }
                }
            }
            Msg::JoinAnnounce { view, who, joining } => {
                self.handle_announce(ctx, view, who, joining)
            }
            Msg::RangeTransfer { id, entries } => {
                let batch_keys = entries.len();
                for (k, s) in entries {
                    self.absorb_remote_state(&k, &s, None);
                }
                let window = self.transfers_seen.entry(from).or_default();
                if let std::collections::btree_map::Entry::Vacant(e) = window.seen.entry(id) {
                    e.insert(batch_keys);
                    self.stats.transfers_in += 1;
                    window.keys += batch_keys;
                    // ids are monotone per donor: only a recent window can
                    // still be in flight, so bound the dedupe memory — by
                    // keys covered, not id count, since batch sizes vary
                    // (a duplicate older than the window would merely
                    // double-count a statistic, never corrupt state)
                    while window.keys > TRANSFER_DEDUPE_KEYS && window.seen.len() > 8 {
                        if let Some((_, n)) = window.seen.pop_first() {
                            window.keys -= n;
                        }
                    }
                }
                self.send(ctx, from, Msg::TransferAck { id });
            }
            Msg::TransferAck { id } => self.handle_transfer_ack(ctx, id),
            Msg::RingEpoch { view } => {
                self.handle_ring_epoch(ctx, from, &view);
            }
            Msg::Rejoin { view } => {
                // In-band re-admission of this node: the carried view
                // holds a fresh `Up` incarnation for us that beats the
                // stale `Leaving` entry; merge_view cancels the drain
                // (keeping the unacked transfer backlog) and re-plans
                // ownership, and gossip spreads the re-admission from
                // here — no harness view synchronisation.
                self.membership.mark_up(&self.replica);
                self.merge_view(ctx, &view);
                // A node that (re)booted mid-run — crash recovery —
                // never saw `on_start`: arm its periodic timers here so
                // the recovered replica gossips, anti-entropies and
                // hands off again. Idempotent: a live node re-admitted
                // after a timed-out drain already has them.
                self.ensure_periodic_timers(ctx);
            }
            Msg::RingSummary { entries } => {
                self.handle_ring_summary(ctx, from, &entries);
            }
            Msg::RingDelta { entries, want } => {
                self.handle_ring_delta(ctx, from, &entries, &want);
            }
            Msg::GossipDigest { digest } => {
                self.note_peer_digest(ctx, from, digest);
            }
            // client-facing responses never arrive at servers
            Msg::ClientGetResp { .. } | Msg::ClientPutResp { .. } => {}
        }
    }

    /// Entry point: starts periodic timers.
    pub fn on_start(&mut self, ctx: &mut impl NodeCtx<M>) {
        if self.active {
            self.arm_periodic_timers(ctx);
        }
    }

    /// Entry point: dispatches one timer.
    pub fn on_timer(&mut self, ctx: &mut impl NodeCtx<M>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerKind::Request(req)) => self.handle_request_timeout(ctx, req),
            Some(TimerKind::AntiEntropy) => self.handle_aae_timer(ctx),
            Some(TimerKind::Handoff) => self.handle_handoff_timer(ctx),
            Some(TimerKind::Transfer) => self.handle_transfer_timer(ctx),
            Some(TimerKind::Gossip) => self.handle_gossip_timer(ctx),
            None => {}
        }
    }
}
