//! [`StoreNode`]: a replica server — ownership-aware request
//! coordination, replication, read repair, anti-entropy, hinted handoff,
//! and elastic membership (live join/leave with key-range transfer).

use std::collections::{BTreeMap, BTreeSet};

use dvv::mechanisms::{Mechanism, WriteOrigin};
use dvv::{ClientId, ReplicaId};
use ring::{HashRing, Membership, NodeStatus};
use simnet::{NodeId, ProcessCtx, TimerId};

use crate::config::StoreConfig;
use crate::merkle::{fingerprint, MerkleSummary};
use crate::messages::{Msg, ReqId};
use crate::value::{Key, StampedValue};

/// Counters a server maintains for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// GETs coordinated to success.
    pub gets_ok: u64,
    /// PUTs coordinated to success.
    pub puts_ok: u64,
    /// Requests that timed out waiting for a quorum.
    pub quorum_timeouts: u64,
    /// Read repairs pushed.
    pub read_repairs: u64,
    /// Anti-entropy exchanges initiated.
    pub aae_rounds: u64,
    /// Initiated anti-entropy exchanges that found divergent keys.
    pub aae_divergent: u64,
    /// Hinted states handed off to their intended owner.
    pub handoffs: u64,
    /// Requests coordinated without local participation because this node
    /// was not in the key's preference list.
    pub remote_coordinations: u64,
    /// Range-transfer batches sent (join donations and leave drains).
    pub transfers_out: u64,
    /// Range-transfer batches received and merged.
    pub transfers_in: u64,
}

/// Coordinator-side bookkeeping for one in-flight request.
#[derive(Debug)]
enum Pending<M: Mechanism<StampedValue>> {
    Get {
        key: Key,
        client: NodeId,
        acc: M::State,
        responses: usize,
        expected: usize,
        replied: bool,
        /// Whether this coordinator is in the key's active preference
        /// list (and therefore counted its local read as a response).
        owner: bool,
        /// replica → fingerprint of the state it returned (for repair)
        seen: Vec<(ReplicaId, u64)>,
    },
    Put {
        key: Key,
        client: NodeId,
        acks: usize,
        expected: usize,
        replied: bool,
        /// See [`Pending::Get::owner`].
        owner: bool,
        /// Post-write state known to the coordinator (`return_body`
        /// source when coordinating remotely).
        state: M::State,
        /// Replication fan-out deferred until the delegated owner returns
        /// the post-write state (remote coordination only).
        fanout: Vec<(ReplicaId, Option<ReplicaId>)>,
    },
}

/// What a firing timer means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Request(ReqId),
    AntiEntropy,
    Handoff,
    Transfer,
}

/// One unacknowledged outbound range-transfer batch.
///
/// Key states are fingerprinted when the batch is queued; on ack, a key
/// is dropped (when no longer owned) only if its state is unchanged —
/// otherwise the fresher state is re-queued, so no write merged after the
/// snapshot can be lost to a drop.
#[derive(Debug)]
struct TransferJob {
    to: ReplicaId,
    keys: Vec<(Key, u64)>,
}

/// A replica server process.
///
/// Node `i` of the simulation hosts replica `ReplicaId(i)`; clients live
/// on higher node ids. All request coordination follows the Dynamo/Riak
/// pattern; the causality mechanism `M` is the only pluggable part.
///
/// Coordination is **ownership-aware**: the node counts its own local
/// read/write toward R/W quorums only when it appears in the key's
/// active preference list. Otherwise it coordinates purely remotely — no
/// local write, no self-response — delegating the dot-minting write to
/// the first active owner ([`Msg::RepWrite`]). This matters both for
/// quorum strength (a non-owner must not substitute for a real replica)
/// and for elastic membership, where a node that just left the ring
/// keeps coordinating stale client requests without polluting its store.
#[derive(Debug)]
pub struct StoreNode<M: Mechanism<StampedValue>> {
    replica: ReplicaId,
    mech: M,
    config: StoreConfig,
    ring: HashRing<ReplicaId>,
    membership: Membership<ReplicaId>,
    data: BTreeMap<Key, M::State>,
    /// Hinted states held for down replicas: `(key, intended) → ()` —
    /// the state itself lives in `data`; this records the obligation.
    hints: BTreeMap<(Key, ReplicaId), ()>,
    pending: BTreeMap<ReqId, Pending<M>>,
    timers: BTreeMap<TimerId, TimerKind>,
    /// Whether this node is a serving cluster member. Spare capacity is
    /// hosted dormant (`false`) and activated by a join announcement.
    active: bool,
    /// Whether this node is draining its ranges prior to leaving.
    leaving: bool,
    /// Unacknowledged outbound range transfers, by transfer id.
    outbound: BTreeMap<u64, TransferJob>,
    next_transfer: u64,
    /// Keys written while leaving, awaiting (re-)drain.
    drain_dirty: BTreeSet<Key>,
    /// Membership announcement to rebroadcast until the change settles.
    announce: Option<(u64, Vec<ReplicaId>, ReplicaId, bool)>,
    stats: NodeStats,
}

impl<M: Mechanism<StampedValue>> StoreNode<M> {
    /// Creates the replica server for `replica`.
    pub fn new(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        ring: HashRing<ReplicaId>,
        membership: Membership<ReplicaId>,
    ) -> Self {
        config.validate();
        StoreNode {
            replica,
            mech,
            config,
            ring,
            membership,
            data: BTreeMap::new(),
            hints: BTreeMap::new(),
            pending: BTreeMap::new(),
            timers: BTreeMap::new(),
            active: true,
            leaving: false,
            outbound: BTreeMap::new(),
            next_transfer: 0,
            drain_dirty: BTreeSet::new(),
            announce: None,
            stats: NodeStats::default(),
        }
    }

    /// Creates a dormant spare server: hosted by the simulation but not a
    /// ring member. It ignores all traffic until a join announcement
    /// (delivered by the control plane) activates it.
    pub fn dormant(
        replica: ReplicaId,
        mech: M,
        config: StoreConfig,
        ring: HashRing<ReplicaId>,
        membership: Membership<ReplicaId>,
    ) -> Self {
        let mut node = Self::new(replica, mech, config, ring, membership);
        node.active = false;
        node
    }

    /// This server's replica id.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The per-key states this replica currently holds.
    pub fn data(&self) -> &BTreeMap<Key, M::State> {
        &self.data
    }

    /// Whether this node is currently a serving cluster member.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The ring epoch this node currently routes under.
    pub fn ring_epoch(&self) -> u64 {
        self.ring.epoch()
    }

    /// Unacknowledged outbound range-transfer batches.
    pub fn transfer_backlog(&self) -> usize {
        self.outbound.len() + self.drain_dirty.len()
    }

    /// Whether a leave-drain has delivered every owed key range.
    pub fn drain_complete(&self) -> bool {
        self.leaving && self.outbound.is_empty() && self.drain_dirty.is_empty()
    }

    /// Direct state merge — used by the test harness's `converge()`, not
    /// by the protocol.
    pub fn merge_state_direct(&mut self, key: &[u8], state: &M::State) {
        let local = self.data.entry(key.to_vec()).or_default();
        self.mech.merge(local, state);
    }

    /// Marks a peer down/up in this node's failure-detector view.
    pub fn set_peer_status(&mut self, peer: ReplicaId, up: bool) {
        if up {
            self.membership.mark_up(&peer);
        } else {
            self.membership.mark_down(&peer);
        }
    }

    /// Control-plane view synchronisation: adopts `(members, epoch)` when
    /// newer, reconciles membership (transition states settle to `Up`,
    /// failure-detector `Down` marks survive), and retires any pending
    /// announcement. The harness calls this on every process once a
    /// membership change completes.
    pub fn sync_view(&mut self, members: &[ReplicaId], epoch: u64) {
        if epoch > self.ring.epoch() {
            self.ring = HashRing::from_members(members.iter().copied(), self.ring.vnodes(), epoch);
        }
        self.membership.sync_members(members);
        for m in members {
            if matches!(
                self.membership.status(m),
                Some(NodeStatus::Joining | NodeStatus::Leaving)
            ) {
                self.membership.mark_up(m);
            }
        }
        if self
            .announce
            .as_ref()
            .is_some_and(|(e, ..)| *e <= self.ring.epoch())
        {
            self.announce = None;
        }
    }

    /// Aborts an unfinished leave (the control plane re-admitted this
    /// node): stops draining and drops the pending announcement and
    /// transfer backlog. Data already transferred stays merged at the
    /// targets (harmless — merges are monotone); data not yet sent stays
    /// here, where it is once again owned.
    pub fn cancel_leave(&mut self) {
        self.leaving = false;
        self.announce = None;
        self.outbound.clear();
        self.drain_dirty.clear();
    }

    /// Completes a leave after the drain: clears the (fully drained)
    /// store, hint obligations and timers, and returns to dormancy.
    ///
    /// # Panics
    ///
    /// Panics if the drain has not completed.
    pub fn finish_leave(&mut self) {
        assert!(self.drain_complete(), "finish_leave before drain completed");
        self.data.clear();
        self.hints.clear();
        self.pending.clear();
        self.timers.clear();
        self.outbound.clear();
        self.announce = None;
        self.leaving = false;
        self.active = false;
    }

    /// Number of hint obligations currently held.
    pub fn hint_count(&self) -> usize {
        self.hints.len()
    }

    /// The keys of all currently held hint obligations.
    pub fn hinted_keys(&self) -> Vec<Key> {
        self.hints.keys().map(|(k, _)| k.clone()).collect()
    }

    /// Total causal-metadata bytes across all keys at this replica.
    pub fn metadata_bytes(&self) -> usize {
        self.data.values().map(|s| self.mech.metadata_size(s)).sum()
    }

    /// Removes keys whose every surviving sibling is a tombstone,
    /// returning how many keys were reclaimed. Hint obligations for
    /// reclaimed keys are purged with them — a hint without backing data
    /// could never be handed off and would leak forever.
    ///
    /// Dropping a tombstone is only safe once it has reached every
    /// replica (otherwise anti-entropy would resurrect the deleted data
    /// from a replica that never saw the delete) — the caller is
    /// responsible for invoking this after convergence, as
    /// [`crate::cluster::Cluster::collect_garbage`] does.
    pub fn collect_garbage(&mut self) -> usize {
        let dead: Vec<Key> = self
            .data
            .iter()
            .filter(|(_, st)| {
                let (values, _) = self.mech.read(st);
                !values.is_empty() && values.iter().all(|v| v.tombstone)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            self.data.remove(k);
        }
        self.purge_orphan_hints();
        dead.len()
    }

    /// Drops hint obligations whose backing state is gone (reclaimed by
    /// garbage collection or moved away by a range transfer).
    fn purge_orphan_hints(&mut self) {
        let data = &self.data;
        self.hints.retain(|(k, _), ()| data.contains_key(k));
    }

    /// Mean sibling count across keys (0 when no keys).
    pub fn mean_siblings(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let total: usize = self.data.values().map(|s| self.mech.sibling_count(s)).sum();
        total as f64 / self.data.len() as f64
    }

    fn merkle_summary(&self) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for (k, s) in &self.data {
            m.set(k.clone(), fingerprint(s));
        }
        m
    }

    fn send(&self, ctx: &mut ProcessCtx<'_, Msg<M>>, to: NodeId, msg: Msg<M>) {
        let bytes = msg.wire_size(&self.mech) + self.config.header_bytes;
        ctx.send(to, msg, bytes);
    }

    fn active_replicas(&self, key: &[u8]) -> (Vec<ReplicaId>, Vec<(ReplicaId, ReplicaId)>) {
        self.membership
            .sloppy_preference_list(&self.ring, key, self.config.n)
    }

    /// Whether this node is in the key's current preference list.
    fn owns(&self, key: &[u8]) -> bool {
        self.ring
            .preference_list(key, self.config.n)
            .contains(&self.replica)
    }

    /// Post-merge hook: a leaving node owes every newly merged key to the
    /// new owners, even if it was queued (or acked) before.
    fn note_data_merged(&mut self, key: &Key) {
        if self.leaving {
            self.drain_dirty.insert(key.clone());
        }
    }

    /// Pushes our ring view to a peer that routed with a stale epoch.
    fn note_request_epoch(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, from: NodeId, epoch: u64) {
        if epoch < self.ring.epoch() {
            self.send(
                ctx,
                from,
                Msg::RingEpoch {
                    epoch: self.ring.epoch(),
                    members: self.ring.nodes().to_vec(),
                },
            );
        }
    }

    fn arm_request_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let t = ctx.set_timer(self.config.request_timeout);
        self.timers.insert(t, TimerKind::Request(req));
    }

    fn handle_client_get(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        from: NodeId,
        req: ReqId,
        key: Key,
        epoch: u64,
    ) {
        self.note_request_epoch(ctx, from, epoch);
        let (active, _) = self.active_replicas(&key);
        if active.is_empty() {
            self.stats.quorum_timeouts += 1;
            self.send(
                ctx,
                from,
                Msg::ClientGetResp {
                    req,
                    ok: false,
                    values: Vec::new(),
                    ctx: M::Context::default(),
                },
            );
            return;
        }
        let owner = active.contains(&self.replica);
        // The coordinator's own store participates only when it is an
        // active replica of the key; a non-owner assembles the quorum
        // purely from real owners.
        let (acc, responses, seen) = if owner {
            let local = self.data.get(&key).cloned().unwrap_or_default();
            let fp = fingerprint(&local);
            (local, 1, vec![(self.replica, fp)])
        } else {
            self.stats.remote_coordinations += 1;
            (M::State::default(), 0, Vec::new())
        };
        self.pending.insert(
            req,
            Pending::Get {
                key: key.clone(),
                client: from,
                acc,
                responses,
                expected: active.len(),
                replied: false,
                owner,
                seen,
            },
        );
        for peer in &active {
            if *peer != self.replica {
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::RepGet {
                        req,
                        key: key.clone(),
                    },
                );
            }
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_get(ctx, req);
    }

    fn try_complete_get(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        // phase 1: reply to the client as soon as R responses are in
        let mut reply: Option<(NodeId, Vec<StampedValue>, M::Context)> = None;
        if let Some(Pending::Get {
            client,
            acc,
            responses,
            expected,
            replied,
            ..
        }) = self.pending.get_mut(&req)
        {
            if !*replied && *responses >= self.config.r.min(*expected) {
                *replied = true;
                let (values, read_ctx) = self.mech.read(acc);
                reply = Some((*client, values, read_ctx));
            }
        }
        if let Some((client, values, read_ctx)) = reply {
            self.stats.gets_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientGetResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        // phase 2: once every replica answered, retire and read-repair
        let done = matches!(
            self.pending.get(&req),
            Some(Pending::Get { responses, expected, replied, .. })
                if *responses >= *expected && *replied
        );
        if done {
            let Some(Pending::Get {
                key,
                acc,
                seen,
                owner,
                ..
            }) = self.pending.remove(&req)
            else {
                return;
            };
            self.finish_read_repair(ctx, &key, acc, &seen, owner);
        }
    }

    fn finish_read_repair(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        key: &[u8],
        merged: M::State,
        seen: &[(ReplicaId, u64)],
        owner: bool,
    ) {
        // An owner folds the merged state into its own store first; a
        // non-owner coordinator must not keep any state for the key.
        let canonical = if owner {
            let local = self.data.entry(key.to_vec()).or_default();
            self.mech.merge(local, &merged);
            self.data.get(key).cloned().unwrap_or_default()
        } else {
            merged
        };
        if !self.config.read_repair {
            return;
        }
        let target_fp = fingerprint(&canonical);
        for (peer, fp) in seen {
            if *peer != self.replica && *fp != target_fp {
                self.stats.read_repairs += 1;
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::ReadRepair {
                        key: key.to_vec(),
                        state: canonical.clone(),
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_client_put(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        from: NodeId,
        req: ReqId,
        key: Key,
        value: StampedValue,
        put_ctx: M::Context,
        epoch: u64,
    ) {
        self.note_request_epoch(ctx, from, epoch);
        let (active, substitutions) = self.active_replicas(&key);
        if active.is_empty() {
            self.stats.quorum_timeouts += 1;
            self.send(
                ctx,
                from,
                Msg::ClientPutResp {
                    req,
                    ok: false,
                    values: Vec::new(),
                    ctx: M::Context::default(),
                },
            );
            return;
        }
        let owner = active.contains(&self.replica);
        let expected = active.len();
        let hint_for = |peer: &ReplicaId| {
            substitutions
                .iter()
                .find(|(_, fallback)| fallback == peer)
                .map(|(intended, _)| *intended)
        };
        if owner {
            let client = ClientId(value.id.client.0);
            let state = self.data.entry(key.clone()).or_default();
            self.mech.write(
                state,
                WriteOrigin::new(self.replica, client),
                &put_ctx,
                value,
            );
            let state = state.clone();
            self.note_data_merged(&key);
            self.pending.insert(
                req,
                Pending::Put {
                    key: key.clone(),
                    client: from,
                    acks: 1,
                    expected,
                    replied: false,
                    owner: true,
                    // owners re-read their own store at completion; only
                    // remote coordination needs the state carried here
                    state: M::State::default(),
                    fanout: Vec::new(),
                },
            );
            for peer in &active {
                if *peer == self.replica {
                    continue;
                }
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::RepPut {
                        req,
                        key: key.clone(),
                        state: state.clone(),
                        hint: hint_for(peer),
                    },
                );
            }
        } else {
            // Not an owner: the dot must be minted from an owner's
            // counter, so delegate the write to the first active owner
            // and fan its post-write state out to the rest once known.
            self.stats.remote_coordinations += 1;
            let writer = active[0];
            let fanout: Vec<(ReplicaId, Option<ReplicaId>)> = active[1..]
                .iter()
                .map(|peer| (*peer, hint_for(peer)))
                .collect();
            self.pending.insert(
                req,
                Pending::Put {
                    key: key.clone(),
                    client: from,
                    acks: 0,
                    expected,
                    replied: false,
                    owner: false,
                    state: M::State::default(),
                    fanout,
                },
            );
            self.send(
                ctx,
                NodeId(writer.0),
                Msg::RepWrite {
                    req,
                    key,
                    value,
                    ctx: put_ctx,
                    hint: hint_for(&writer),
                },
            );
        }
        self.arm_request_timer(ctx, req);
        self.try_complete_put(ctx, req);
    }

    fn try_complete_put(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let Some(Pending::Put {
            key,
            client,
            acks,
            expected,
            replied,
            owner,
            state,
            ..
        }) = self.pending.get_mut(&req)
        else {
            return;
        };
        if !*replied && *acks >= self.config.w.min(*expected) {
            *replied = true;
            let key = key.clone();
            let client = *client;
            // return_body: an owner reads its own (freshest) state; a
            // remote coordinator reads the state the delegated owner
            // returned.
            let state = if *owner {
                self.data.get(&key).cloned().unwrap_or_default()
            } else {
                state.clone()
            };
            let (values, read_ctx) = self.mech.read(&state);
            self.stats.puts_ok += 1;
            self.send(
                ctx,
                client,
                Msg::ClientPutResp {
                    req,
                    ok: true,
                    values,
                    ctx: read_ctx,
                },
            );
        }
        if let Some(Pending::Put {
            acks,
            expected,
            replied,
            ..
        }) = self.pending.get(&req)
        {
            if *acks >= *expected && *replied {
                self.pending.remove(&req);
            }
        }
    }

    fn handle_request_timeout(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, req: ReqId) {
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        match p {
            Pending::Get {
                client,
                replied,
                key,
                acc,
                seen,
                owner,
                ..
            } => {
                let client = *client;
                let replied = *replied;
                let key = key.clone();
                let merged = acc.clone();
                let seen = seen.clone();
                let owner = *owner;
                self.pending.remove(&req);
                if replied {
                    // reply already sent; late repair with what arrived
                    self.finish_read_repair(ctx, &key, merged, &seen, owner);
                } else {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientGetResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
            Pending::Put {
                client, replied, ..
            } => {
                let client = *client;
                let replied = *replied;
                self.pending.remove(&req);
                if !replied {
                    self.stats.quorum_timeouts += 1;
                    self.send(
                        ctx,
                        client,
                        Msg::ClientPutResp {
                            req,
                            ok: false,
                            values: Vec::new(),
                            ctx: M::Context::default(),
                        },
                    );
                }
            }
        }
    }

    fn handle_aae_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        // pick a random up peer and start an exchange
        let peers: Vec<ReplicaId> = self
            .membership
            .up_nodes()
            .into_iter()
            .filter(|p| *p != self.replica && self.ring.nodes().contains(p))
            .collect();
        if !peers.is_empty() {
            let peer = *ctx.rng().pick(&peers);
            self.stats.aae_rounds += 1;
            let root = self.merkle_summary().root();
            self.send(ctx, NodeId(peer.0), Msg::AaeRoot { root });
        }
        // re-arm
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.anti_entropy_interval);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
    }

    fn handle_handoff_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        let due: Vec<(Key, ReplicaId)> = self
            .hints
            .keys()
            .filter(|(_, intended)| self.membership.is_up(intended))
            .cloned()
            .collect();
        for (key, intended) in due {
            match self.data.get(&key) {
                Some(state) => {
                    let state = state.clone();
                    self.send(
                        ctx,
                        NodeId(intended.0),
                        Msg::Handoff {
                            key: key.clone(),
                            state,
                        },
                    );
                }
                None => {
                    // the backing state is gone (GC or range transfer):
                    // the obligation can never be fulfilled — drop it
                    self.hints.remove(&(key, intended));
                }
            }
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
    }

    // --- elastic membership ------------------------------------------------

    fn arm_periodic_timers(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        if self.config.anti_entropy_interval > simnet::Duration::ZERO {
            // stagger first AAE by replica id to avoid thundering herd
            let first = simnet::Duration::from_micros(
                self.config.anti_entropy_interval.as_micros() + u64::from(self.replica.0) * 1_000,
            );
            let t = ctx.set_timer(first);
            self.timers.insert(t, TimerKind::AntiEntropy);
        }
        if self.config.handoff_interval > simnet::Duration::ZERO {
            let t = ctx.set_timer(self.config.handoff_interval);
            self.timers.insert(t, TimerKind::Handoff);
        }
    }

    fn ensure_transfer_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        if self.timers.values().any(|k| *k == TimerKind::Transfer) {
            return;
        }
        let t = ctx.set_timer(self.config.transfer_retry_interval);
        self.timers.insert(t, TimerKind::Transfer);
    }

    /// Queues a transfer batch of `keys` to `to` (states snapshotted by
    /// fingerprint; resent until acknowledged).
    fn queue_transfer(&mut self, to: ReplicaId, keys: Vec<Key>) -> Option<u64> {
        let entries: Vec<(Key, u64)> = keys
            .into_iter()
            .filter_map(|k| self.data.get(&k).map(|s| (k.clone(), fingerprint(s))))
            .collect();
        if entries.is_empty() {
            return None;
        }
        let id = self.next_transfer;
        self.next_transfer += 1;
        self.outbound.insert(id, TransferJob { to, keys: entries });
        self.stats.transfers_out += 1;
        Some(id)
    }

    fn send_transfer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, id: u64) {
        let Some(job) = self.outbound.get(&id) else {
            return;
        };
        let to = NodeId(job.to.0);
        let entries: Vec<(Key, M::State)> = job
            .keys
            .iter()
            .filter_map(|(k, _)| self.data.get(k).map(|s| (k.clone(), s.clone())))
            .collect();
        self.send(ctx, to, Msg::RangeTransfer { id, entries });
    }

    fn broadcast_announce(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        let Some((epoch, members, who, joining)) = self.announce.clone() else {
            return;
        };
        for peer in &members {
            if *peer != self.replica {
                self.send(
                    ctx,
                    NodeId(peer.0),
                    Msg::JoinAnnounce {
                        epoch,
                        members: members.clone(),
                        who,
                        joining,
                    },
                );
            }
        }
    }

    /// Applies a membership announcement: adopt the new ring, then act by
    /// role — the subject activates (join) or starts draining (leave);
    /// other members donate the ranges a joiner gained, or retarget hint
    /// obligations aimed at a leaver.
    fn handle_announce(
        &mut self,
        ctx: &mut ProcessCtx<'_, Msg<M>>,
        epoch: u64,
        members: Vec<ReplicaId>,
        who: ReplicaId,
        joining: bool,
    ) {
        if epoch <= self.ring.epoch() {
            return; // stale or duplicate announcement
        }
        if !(self.active || joining && who == self.replica) {
            return; // dormant spares only wake for their own join
        }
        let old_ring = self.ring.clone();
        self.ring = HashRing::from_members(members.iter().copied(), old_ring.vnodes(), epoch);
        self.membership.sync_members(&members);
        if joining {
            self.membership.set_status(&who, NodeStatus::Joining);
        }
        if who == self.replica {
            self.announce = Some((epoch, members, who, joining));
            if joining {
                self.active = true;
                self.leaving = false;
                self.arm_periodic_timers(ctx);
            } else {
                self.leaving = true;
                self.plan_drain(&old_ring);
            }
            self.broadcast_announce(ctx);
            let ids: Vec<u64> = self.outbound.keys().copied().collect();
            for id in ids {
                self.send_transfer(ctx, id);
            }
            self.ensure_transfer_timer(ctx);
        } else if joining {
            // Donate the ranges the joiner now owns and we owned before.
            let moved: Vec<ring::RangeDiff<ReplicaId>> =
                HashRing::owned_ranges_diff(&old_ring, &self.ring, self.config.n)
                    .into_iter()
                    .filter(|d| {
                        d.new_owners.contains(&who)
                            && !d.old_owners.contains(&who)
                            && d.old_owners.contains(&self.replica)
                    })
                    .collect();
            let keys: Vec<Key> = self
                .data
                .keys()
                .filter(|k| moved.iter().any(|d| d.contains_key(k)))
                .cloned()
                .collect();
            if let Some(id) = self.queue_transfer(who, keys) {
                self.send_transfer(ctx, id);
                self.ensure_transfer_timer(ctx);
            }
        } else {
            // A peer is leaving: hints meant for it can never be handed
            // off; retarget each obligation to the key's new primary.
            let retarget: Vec<Key> = self
                .hints
                .keys()
                .filter(|(_, intended)| *intended == who)
                .map(|(k, _)| k.clone())
                .collect();
            for key in retarget {
                self.hints.remove(&(key.clone(), who));
                if let Some(primary) = self.ring.primary(&key) {
                    if primary != self.replica {
                        self.hints.insert((key, primary), ());
                    }
                }
            }
        }
    }

    /// Plans the leave-drain: every held key goes to the owners that
    /// gained it (or, if ownership is otherwise unchanged, to the new
    /// primary, so at least one current owner is guaranteed a copy).
    fn plan_drain(&mut self, old_ring: &HashRing<ReplicaId>) {
        let mut per_target: BTreeMap<ReplicaId, Vec<Key>> = BTreeMap::new();
        for key in self.data.keys().cloned().collect::<Vec<_>>() {
            let old_owners = old_ring.preference_list(&key, self.config.n);
            let new_owners = self.ring.preference_list(&key, self.config.n);
            let gained: Vec<ReplicaId> = new_owners
                .iter()
                .filter(|o| !old_owners.contains(o))
                .copied()
                .collect();
            let targets = if gained.is_empty() {
                new_owners.into_iter().take(1).collect()
            } else {
                gained
            };
            for t in targets {
                if t != self.replica {
                    per_target.entry(t).or_default().push(key.clone());
                }
            }
        }
        for (t, keys) in per_target {
            self.queue_transfer(t, keys);
        }
    }

    fn handle_transfer_ack(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, id: u64) {
        let Some(job) = self.outbound.remove(&id) else {
            return;
        };
        let mut requeue: Vec<Key> = Vec::new();
        for (key, fp) in job.keys {
            if self.owns(&key) {
                continue; // still an owner: the copy stays either way
            }
            match self.data.get(&key) {
                None => {}
                Some(st) if fingerprint(st) == fp => {
                    // the range moved away and the new owner acked this
                    // exact state: safe to drop our copy
                    self.data.remove(&key);
                }
                Some(_) => {
                    // the state advanced after the snapshot — resend the
                    // fresher state before it can be dropped
                    requeue.push(key);
                }
            }
        }
        self.purge_orphan_hints();
        if !requeue.is_empty() {
            if let Some(id) = self.queue_transfer(job.to, requeue) {
                self.send_transfer(ctx, id);
                self.ensure_transfer_timer(ctx);
            }
        }
    }

    fn handle_transfer_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        // drop a retired announcement (view superseded or settled)
        if self
            .announce
            .as_ref()
            .is_some_and(|(e, ..)| *e < self.ring.epoch())
        {
            self.announce = None;
        }
        // drain keys written since the last tick to their current owners
        let dirty: Vec<Key> = std::mem::take(&mut self.drain_dirty).into_iter().collect();
        let mut per_target: BTreeMap<ReplicaId, Vec<Key>> = BTreeMap::new();
        for key in dirty {
            for t in self.ring.preference_list(&key, self.config.n) {
                if t != self.replica {
                    per_target.entry(t).or_default().push(key.clone());
                }
            }
        }
        for (t, keys) in per_target {
            self.queue_transfer(t, keys);
        }
        // rebroadcast the announcement and resend every unacked batch
        self.broadcast_announce(ctx);
        let ids: Vec<u64> = self.outbound.keys().copied().collect();
        for id in ids {
            self.send_transfer(ctx, id);
        }
        if self.announce.is_some() || !self.outbound.is_empty() || !self.drain_dirty.is_empty() {
            let t = ctx.set_timer(self.config.transfer_retry_interval);
            self.timers.insert(t, TimerKind::Transfer);
        }
    }

    /// Entry point: dispatches one message.
    pub fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, from: NodeId, msg: Msg<M>) {
        if !self.active {
            // dormant spares only wake for a join announcement
            if let Msg::JoinAnnounce {
                epoch,
                members,
                who,
                joining,
            } = msg
            {
                self.handle_announce(ctx, epoch, members, who, joining);
            }
            return;
        }
        match msg {
            Msg::ClientGet { req, key, epoch } => {
                self.handle_client_get(ctx, from, req, key, epoch)
            }
            Msg::ClientPut {
                req,
                key,
                value,
                ctx: put_ctx,
                epoch,
            } => self.handle_client_put(ctx, from, req, key, value, put_ctx, epoch),
            Msg::RepGet { req, key } => {
                let state = self.data.get(&key).cloned().unwrap_or_default();
                self.send(ctx, from, Msg::RepGetResp { req, key, state });
            }
            Msg::RepGetResp { req, key: _, state } => {
                if let Some(Pending::Get {
                    acc,
                    responses,
                    seen,
                    ..
                }) = self.pending.get_mut(&req)
                {
                    let fp = fingerprint(&state);
                    seen.push((ReplicaId(from.0), fp));
                    self.mech.merge(acc, &state);
                    *responses += 1;
                    self.try_complete_get(ctx, req);
                }
            }
            Msg::RepPut {
                req,
                key,
                state,
                hint,
            } => {
                let local = self.data.entry(key.clone()).or_default();
                self.mech.merge(local, &state);
                if let Some(intended) = hint {
                    self.hints.insert((key.clone(), intended), ());
                }
                self.note_data_merged(&key);
                self.send(ctx, from, Msg::RepPutAck { req });
            }
            Msg::RepPutAck { req } => {
                if let Some(Pending::Put { acks, .. }) = self.pending.get_mut(&req) {
                    *acks += 1;
                    self.try_complete_put(ctx, req);
                }
            }
            Msg::RepWrite {
                req,
                key,
                value,
                ctx: put_ctx,
                hint,
            } => {
                // delegated write from a non-owner coordinator: mint the
                // dot here and hand the post-write state back
                let client = ClientId(value.id.client.0);
                let state = self.data.entry(key.clone()).or_default();
                self.mech.write(
                    state,
                    WriteOrigin::new(self.replica, client),
                    &put_ctx,
                    value,
                );
                let state = state.clone();
                if let Some(intended) = hint {
                    self.hints.insert((key.clone(), intended), ());
                }
                self.note_data_merged(&key);
                self.send(ctx, from, Msg::RepWriteResp { req, key, state });
            }
            Msg::RepWriteResp { req, key: _, state } => {
                let mut sends: Vec<(ReplicaId, Option<ReplicaId>)> = Vec::new();
                let mut fan_key: Key = Vec::new();
                if let Some(Pending::Put {
                    key,
                    acks,
                    state: pstate,
                    fanout,
                    ..
                }) = self.pending.get_mut(&req)
                {
                    *pstate = state.clone();
                    *acks += 1;
                    fan_key.clone_from(key);
                    sends.append(fanout);
                }
                for (peer, hint) in sends {
                    self.send(
                        ctx,
                        NodeId(peer.0),
                        Msg::RepPut {
                            req,
                            key: fan_key.clone(),
                            state: state.clone(),
                            hint,
                        },
                    );
                }
                self.try_complete_put(ctx, req);
            }
            Msg::ReadRepair { key, state } => {
                let local = self.data.entry(key.clone()).or_default();
                self.mech.merge(local, &state);
                self.note_data_merged(&key);
            }
            Msg::AaeRoot { root } => {
                let mine = self.merkle_summary();
                if mine.root() != root {
                    self.send(
                        ctx,
                        from,
                        Msg::AaeLeaves {
                            leaves: mine.leaves(),
                        },
                    );
                }
            }
            Msg::AaeLeaves { leaves } => {
                // we initiated this round; the responder's root differed
                let mine = self.merkle_summary();
                let mut theirs = MerkleSummary::new();
                for (k, h) in leaves {
                    theirs.set(k, h);
                }
                // keys where we differ in either direction
                let mut keys = mine.diff(&theirs); // they have, we differ/lack
                for k in theirs.diff(&mine) {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                if !keys.is_empty() {
                    // divergence is an initiator-side statistic, so that
                    // per-node divergent/rounds ratios stay meaningful
                    self.stats.aae_divergent += 1;
                }
                let states: Vec<(Key, M::State)> = keys
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                self.send(ctx, from, Msg::AaeStates { states, want: keys });
            }
            Msg::AaeStates { states, want } => {
                for (k, s) in states {
                    let local = self.data.entry(k.clone()).or_default();
                    self.mech.merge(local, &s);
                    self.note_data_merged(&k);
                }
                let back: Vec<(Key, M::State)> = want
                    .iter()
                    .filter_map(|k| self.data.get(k).map(|s| (k.clone(), s.clone())))
                    .collect();
                self.send(ctx, from, Msg::AaeStatesResp { states: back });
            }
            Msg::AaeStatesResp { states } => {
                for (k, s) in states {
                    let local = self.data.entry(k.clone()).or_default();
                    self.mech.merge(local, &s);
                    self.note_data_merged(&k);
                }
            }
            Msg::Handoff { key, state } => {
                let local = self.data.entry(key.clone()).or_default();
                self.mech.merge(local, &state);
                self.note_data_merged(&key);
                self.send(ctx, from, Msg::HandoffAck { key });
            }
            Msg::HandoffAck { key } => {
                let intended = ReplicaId(from.0);
                if self.hints.remove(&(key, intended)).is_some() {
                    self.stats.handoffs += 1;
                }
            }
            Msg::JoinAnnounce {
                epoch,
                members,
                who,
                joining,
            } => self.handle_announce(ctx, epoch, members, who, joining),
            Msg::RangeTransfer { id, entries } => {
                for (k, s) in entries {
                    let local = self.data.entry(k.clone()).or_default();
                    self.mech.merge(local, &s);
                    self.note_data_merged(&k);
                }
                self.stats.transfers_in += 1;
                self.send(ctx, from, Msg::TransferAck { id });
            }
            Msg::TransferAck { id } => self.handle_transfer_ack(ctx, id),
            Msg::RingEpoch { epoch, members } => {
                if epoch > self.ring.epoch() {
                    self.ring =
                        HashRing::from_members(members.iter().copied(), self.ring.vnodes(), epoch);
                    self.membership.sync_members(&members);
                }
            }
            // client-facing responses never arrive at servers
            Msg::ClientGetResp { .. } | Msg::ClientPutResp { .. } => {}
        }
    }

    /// Entry point: starts periodic timers.
    pub fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        if self.active {
            self.arm_periodic_timers(ctx);
        }
    }

    /// Entry point: dispatches one timer.
    pub fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(TimerKind::Request(req)) => self.handle_request_timeout(ctx, req),
            Some(TimerKind::AntiEntropy) => self.handle_aae_timer(ctx),
            Some(TimerKind::Handoff) => self.handle_handoff_timer(ctx),
            Some(TimerKind::Transfer) => self.handle_transfer_timer(ctx),
            None => {}
        }
    }
}
