//! [`NodeCtx`]: the driver-agnostic node↔network boundary.
//!
//! [`StoreNode`](crate::node::StoreNode) and
//! [`ClientNode`](crate::client::ClientNode) are written against this
//! trait rather than a concrete driver, so the *same* protocol logic
//! runs on two backends:
//!
//! * [`SimCtx`] — the deterministic discrete-event simulator
//!   ([`simnet::Simulation`]), kept as the oracle-checked harness;
//! * the multi-threaded in-process runtime (the `runtime` crate), which
//!   provides its own implementation over real threads, channels, and a
//!   monotonic clock.
//!
//! The trait is also the **single source of truth for wire bytes**:
//! [`NodeCtx::send`] derives each message's size from
//! [`Msg::wire_size`] plus the configured per-message header overhead
//! and returns it to the caller, so the per-class accounting audited by
//! the wire-parity suite cannot drift per call site.

use dvv::mechanisms::Mechanism;
use simnet::{Duration, NodeId, ProcessCtx, SimRng, SimTime, TimerId};

use crate::messages::Msg;
use crate::value::StampedValue;

/// The capabilities a store or client node sees while handling an event,
/// independent of which driver is hosting it.
///
/// Contract, shared by all drivers:
///
/// * [`now`](Self::now) is monotone non-decreasing across a node's
///   events (virtual time on the simulator, a monotonic clock on the
///   threaded runtime).
/// * [`rng`](Self::rng) is a per-node seeded stream; all of a node's
///   nondeterminism must come from it.
/// * [`send`](Self::send) sizes the message itself and returns the wire
///   bytes charged (payload + header); delivery may be delayed, dropped,
///   or reordered by the driver's network.
/// * [`set_timer`](Self::set_timer) ids are unique per node; timers
///   scheduled for the same instant fire in insertion order.
/// * [`cancel_timer`](Self::cancel_timer) is advisory: a driver may
///   still fire a cancelled timer (the simulator does), so nodes must
///   ignore unknown timer ids — which they already do by keeping their
///   own `TimerId → kind` maps.
pub trait NodeCtx<M: Mechanism<StampedValue>> {
    /// The hosting node's id.
    fn id(&self) -> NodeId;

    /// Current time (virtual or monotonic-wall, driver-dependent).
    fn now(&self) -> SimTime;

    /// This node's private RNG stream.
    fn rng(&mut self) -> &mut SimRng;

    /// Sends `msg` to `to`, deriving its wire size internally
    /// ([`Msg::wire_size`] + header bytes). Returns the bytes charged so
    /// the node can record them in its per-class ledger.
    fn send(&mut self, to: NodeId, msg: Msg<M>) -> usize;

    /// Schedules a timer after `delay`; the returned id is handed back to
    /// the node's `on_timer` when it fires.
    fn set_timer(&mut self, delay: Duration) -> TimerId;

    /// Best-effort cancellation of a pending timer. Drivers that cannot
    /// unschedule (the simulator) may still deliver the fire; nodes must
    /// treat an unknown id as a no-op.
    fn cancel_timer(&mut self, timer: TimerId);

    /// Adds a free-form annotation (trace note on the simulator).
    fn note(&mut self, text: String);
}

/// [`NodeCtx`] implementation over the discrete-event simulator's
/// [`ProcessCtx`] — the original driver, now one of two.
///
/// Holds a clone of the mechanism (mechanisms are cheap, usually
/// zero-sized) and the configured header overhead so [`NodeCtx::send`]
/// can size messages without borrowing the node.
#[derive(Debug)]
pub struct SimCtx<'c, 'a, M: Mechanism<StampedValue>> {
    inner: &'c mut ProcessCtx<'a, Msg<M>>,
    mech: M,
    header_bytes: usize,
}

impl<'c, 'a, M: Mechanism<StampedValue>> SimCtx<'c, 'a, M> {
    /// Wraps a simulator process context.
    pub fn new(inner: &'c mut ProcessCtx<'a, Msg<M>>, mech: M, header_bytes: usize) -> Self {
        SimCtx {
            inner,
            mech,
            header_bytes,
        }
    }
}

impl<M: Mechanism<StampedValue>> NodeCtx<M> for SimCtx<'_, '_, M> {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn rng(&mut self) -> &mut SimRng {
        self.inner.rng()
    }

    fn send(&mut self, to: NodeId, msg: Msg<M>) -> usize {
        let bytes = msg.wire_size(&self.mech) + self.header_bytes;
        self.inner.send(to, msg, bytes);
        bytes
    }

    fn set_timer(&mut self, delay: Duration) -> TimerId {
        self.inner.set_timer(delay)
    }

    fn cancel_timer(&mut self, _timer: TimerId) {
        // The simulator's event queue has no removal; the fire is
        // delivered and ignored by the node's own timer map. Keeping the
        // event preserves bit-for-bit determinism of existing runs.
    }

    fn note(&mut self, text: String) {
        self.inner.note(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::MsgClass;
    use dvv::mechanisms::DvvMechanism;
    use simnet::{NetworkConfig, Process, Simulation};

    /// A minimal process proving the adapter charges exactly
    /// `wire_size + header_bytes` — the single-source-of-truth property.
    struct Probe {
        header_bytes: usize,
        sent_bytes: Vec<usize>,
    }

    impl Process for Probe {
        type Msg = Msg<DvvMechanism>;

        fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Self::Msg>) {
            let mut c = SimCtx::new(ctx, DvvMechanism, self.header_bytes);
            if c.id() != NodeId(0) {
                return;
            }
            let msg = Msg::GossipDigest { digest: 42 };
            assert_eq!(msg.class(), MsgClass::Membership);
            let expect = msg.wire_size(&DvvMechanism) + self.header_bytes;
            let charged = c.send(NodeId(1), msg);
            assert_eq!(charged, expect);
            self.sent_bytes.push(charged);
        }

        fn on_message(&mut self, _: &mut ProcessCtx<'_, Self::Msg>, _: NodeId, _: Self::Msg) {}
    }

    #[test]
    fn sim_ctx_derives_bytes_from_wire_size() {
        let mut sim = Simulation::new(
            1,
            NetworkConfig::default(),
            vec![
                Probe {
                    header_bytes: 16,
                    sent_bytes: vec![],
                },
                Probe {
                    header_bytes: 16,
                    sent_bytes: vec![],
                },
            ],
        );
        sim.run_to_quiescence();
        let charged = sim.process(0).sent_bytes[0];
        assert!(charged > 16, "payload sized, not just header");
        // the network observed the same byte count the sender was charged
        assert_eq!(sim.network().stats().bytes_delivered, charged as u64);
    }
}
