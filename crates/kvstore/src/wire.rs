//! Byte-level codecs for the store's wire protocol.
//!
//! [`crate::messages::Msg::wire_size`] used to be hand-counted constants
//! that drifted from reality; this module makes the accounting honest by
//! construction: every composite field has a `put_*` encoder and a
//! matching `*_len`, and `Msg::encode` / `Msg::wire_size` are built from
//! the same helpers, so the parity property `wire_size == encode().len()`
//! holds for every variant.
//!
//! Mechanism states and contexts are sim-internal Rust values whose wire
//! form the paper's evaluation *models* via [`Mechanism::metadata_size`]
//! — those travel as length-prefixed opaque blobs of exactly the modeled
//! size ([`put_blob`]), keeping byte accounting faithful without forcing
//! `Encode` onto every mechanism.
//!
//! Composite fields reuse the delta codecs in [`dvv::encode`]: sorted-id
//! gap deltas for member/arc/want lists, bit-packed value runs for
//! summaries and roots, and shared-prefix key deltas for leaf and entry
//! lists.

use dvv::encode::{
    get_id_value_pairs, get_sorted_ids, id_value_pairs_len, put_id_value_pairs, put_sorted_ids,
    put_varint, sorted_ids_len, varint_len, Decoder,
};
use dvv::DecodeError;
use dvv::ReplicaId;
use ring::{MemberEntry, MemberStatus, RingView};

use crate::value::Key;

/// Fixed width of request ids, digests, Merkle roots and transfer ids:
/// these are uniform 64-bit values (hashes, or ids with high bits set),
/// where a varint would cost more than it saves.
pub const U64_LEN: usize = 8;

/// Appends a fixed-width little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads back a [`put_u64`] value.
///
/// # Errors
///
/// [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
pub fn get_u64(d: &mut Decoder<'_>) -> Result<u64, DecodeError> {
    let bytes = d.bytes(U64_LEN)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Appends a length-prefixed key.
pub fn put_key(buf: &mut Vec<u8>, key: &[u8]) {
    put_varint(buf, key.len() as u64);
    buf.extend_from_slice(key);
}

/// Exact size of [`put_key`]'s output.
#[must_use]
pub fn key_len(key: &[u8]) -> usize {
    varint_len(key.len() as u64) + key.len()
}

/// Reads back a [`put_key`] key.
///
/// # Errors
///
/// [`DecodeError::UnexpectedEnd`] on truncation.
pub fn get_key(d: &mut Decoder<'_>) -> Result<Key, DecodeError> {
    let len = d.varint()? as usize;
    Ok(d.bytes(len)?.to_vec())
}

/// Appends a modeled opaque blob: a length prefix and exactly `size`
/// placeholder bytes. Used for mechanism states and contexts, whose
/// byte form the sim models rather than serialises.
pub fn put_blob(buf: &mut Vec<u8>, size: usize) {
    put_varint(buf, size as u64);
    buf.resize(buf.len() + size, 0);
}

/// Exact size of [`put_blob`]'s output.
#[must_use]
pub fn blob_len(size: usize) -> usize {
    varint_len(size as u64) + size
}

/// Appends an optional hinted-handoff target: a presence byte, then the
/// replica id as a varint.
pub fn put_hint(buf: &mut Vec<u8>, hint: Option<ReplicaId>) {
    match hint {
        None => buf.push(0),
        Some(r) => {
            buf.push(1);
            put_varint(buf, u64::from(r.0));
        }
    }
}

/// Exact size of [`put_hint`]'s output.
#[must_use]
pub fn hint_len(hint: Option<ReplicaId>) -> usize {
    1 + hint.map_or(0, |r| varint_len(u64::from(r.0)))
}

/// Reads back a [`put_hint`] target.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input, including an out-of-range
/// presence byte.
pub fn get_hint(d: &mut Decoder<'_>) -> Result<Option<ReplicaId>, DecodeError> {
    match d.byte()? {
        0 => Ok(None),
        1 => {
            let id = d.varint()?;
            u32::try_from(id)
                .map(|r| Some(ReplicaId(r)))
                .map_err(|_| DecodeError::InvalidValue {
                    reason: "hint replica id out of range",
                })
        }
        _ => Err(DecodeError::InvalidValue {
            reason: "hint presence byte must be 0 or 1",
        }),
    }
}

/// Reads back a flag byte written as `u8::from(bool)`.
///
/// # Errors
///
/// [`DecodeError::InvalidValue`] on anything but 0 or 1.
pub fn get_bool(d: &mut Decoder<'_>) -> Result<bool, DecodeError> {
    match d.byte()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::InvalidValue {
            reason: "flag byte must be 0 or 1",
        }),
    }
}

/// Appends a sorted replica-id list as gap deltas.
pub fn put_replica_ids(buf: &mut Vec<u8>, ids: &[ReplicaId]) {
    let raw: Vec<u64> = ids.iter().map(|r| u64::from(r.0)).collect();
    put_sorted_ids(buf, &raw);
}

/// Exact size of [`put_replica_ids`]'s output.
#[must_use]
pub fn replica_ids_len(ids: &[ReplicaId]) -> usize {
    let raw: Vec<u64> = ids.iter().map(|r| u64::from(r.0)).collect();
    sorted_ids_len(&raw)
}

/// Reads back a [`put_replica_ids`] list.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_replica_ids(d: &mut Decoder<'_>) -> Result<Vec<ReplicaId>, DecodeError> {
    get_sorted_ids(d)?
        .into_iter()
        .map(|id| {
            u32::try_from(id)
                .map(ReplicaId)
                .map_err(|_| DecodeError::InvalidValue {
                    reason: "replica id out of range",
                })
        })
        .collect()
}

/// Appends a sorted arc-index list as gap deltas.
pub fn put_arc_list(buf: &mut Vec<u8>, arcs: &[u32]) {
    let raw: Vec<u64> = arcs.iter().map(|a| u64::from(*a)).collect();
    put_sorted_ids(buf, &raw);
}

/// Exact size of [`put_arc_list`]'s output.
#[must_use]
pub fn arc_list_len(arcs: &[u32]) -> usize {
    let raw: Vec<u64> = arcs.iter().map(|a| u64::from(*a)).collect();
    sorted_ids_len(&raw)
}

/// Reads back a [`put_arc_list`] list.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_arc_list(d: &mut Decoder<'_>) -> Result<Vec<u32>, DecodeError> {
    get_sorted_ids(d)?
        .into_iter()
        .map(|id| {
            u32::try_from(id).map_err(|_| DecodeError::InvalidValue {
                reason: "arc index out of range",
            })
        })
        .collect()
}

/// Appends sorted `(replica, summary-key)` pairs — a view summary — as
/// gap-delta ids plus a bit-packed key run.
pub fn put_summary(buf: &mut Vec<u8>, summary: &[(ReplicaId, u64)]) {
    let pairs: Vec<(u64, u64)> = summary.iter().map(|(r, k)| (u64::from(r.0), *k)).collect();
    put_id_value_pairs(buf, &pairs);
}

/// Exact size of [`put_summary`]'s output.
#[must_use]
pub fn summary_len(summary: &[(ReplicaId, u64)]) -> usize {
    let pairs: Vec<(u64, u64)> = summary.iter().map(|(r, k)| (u64::from(r.0), *k)).collect();
    id_value_pairs_len(&pairs)
}

/// Reads back a [`put_summary`] summary.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_summary(d: &mut Decoder<'_>) -> Result<Vec<(ReplicaId, u64)>, DecodeError> {
    get_id_value_pairs(d)?
        .into_iter()
        .map(|(id, k)| {
            u32::try_from(id)
                .map(|r| (ReplicaId(r), k))
                .map_err(|_| DecodeError::InvalidValue {
                    reason: "replica id out of range",
                })
        })
        .collect()
}

/// Appends sorted `(arc, root)` pairs as gap-delta indices plus a
/// bit-packed root run.
pub fn put_arc_roots(buf: &mut Vec<u8>, arcs: &[(u32, u64)]) {
    let pairs: Vec<(u64, u64)> = arcs.iter().map(|(a, r)| (u64::from(*a), *r)).collect();
    put_id_value_pairs(buf, &pairs);
}

/// Exact size of [`put_arc_roots`]'s output.
#[must_use]
pub fn arc_roots_len(arcs: &[(u32, u64)]) -> usize {
    let pairs: Vec<(u64, u64)> = arcs.iter().map(|(a, r)| (u64::from(*a), *r)).collect();
    id_value_pairs_len(&pairs)
}

/// Reads back a [`put_arc_roots`] list.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_arc_roots(d: &mut Decoder<'_>) -> Result<Vec<(u32, u64)>, DecodeError> {
    get_id_value_pairs(d)?
        .into_iter()
        .map(|(a, r)| {
            u32::try_from(a)
                .map(|a| (a, r))
                .map_err(|_| DecodeError::InvalidValue {
                    reason: "arc index out of range",
                })
        })
        .collect()
}

/// Appends member entries — the ring-view body and the `RingDelta`
/// payload share this form: gap-delta member ids, per-member varint
/// incarnations, and 2-bit-packed statuses.
pub fn put_member_entries(buf: &mut Vec<u8>, entries: &[(ReplicaId, MemberEntry)]) {
    let ids: Vec<u64> = entries.iter().map(|(r, _)| u64::from(r.0)).collect();
    put_sorted_ids(buf, &ids);
    for (_, e) in entries {
        put_varint(buf, e.incarnation);
    }
    let mut w = dvv::encode::BitWriter::new(buf);
    for (_, e) in entries {
        w.write(u64::from(e.status.wire_tag()), 2);
    }
    w.finish();
}

/// Exact size of [`put_member_entries`]'s output.
#[must_use]
pub fn member_entries_len(entries: &[(ReplicaId, MemberEntry)]) -> usize {
    let ids: Vec<u64> = entries.iter().map(|(r, _)| u64::from(r.0)).collect();
    sorted_ids_len(&ids)
        + entries
            .iter()
            .map(|(_, e)| varint_len(e.incarnation))
            .sum::<usize>()
        + dvv::encode::bitpacked_len(entries.len(), 2)
}

/// Reads back a [`put_member_entries`] list.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input, including an unknown status
/// tag.
pub fn get_member_entries(
    d: &mut Decoder<'_>,
) -> Result<Vec<(ReplicaId, MemberEntry)>, DecodeError> {
    let ids = get_sorted_ids(d)?;
    let mut incarnations = Vec::with_capacity(ids.len());
    for _ in 0..ids.len() {
        incarnations.push(d.varint()?);
    }
    let mut r = dvv::encode::BitReader::new(d);
    let mut out = Vec::with_capacity(ids.len());
    for (id, incarnation) in ids.into_iter().zip(incarnations) {
        let tag = r.read(2)? as u8;
        let status = MemberStatus::from_wire_tag(tag).ok_or(DecodeError::InvalidValue {
            reason: "unknown member status tag",
        })?;
        let replica = u32::try_from(id).map_err(|_| DecodeError::InvalidValue {
            reason: "replica id out of range",
        })?;
        out.push((
            ReplicaId(replica),
            MemberEntry {
                incarnation,
                status,
            },
        ));
    }
    Ok(out)
}

/// Appends a full ring view (its entry map, tombstones included).
pub fn put_view(buf: &mut Vec<u8>, view: &RingView<ReplicaId>) {
    let entries: Vec<(ReplicaId, MemberEntry)> = view.iter().map(|(n, e)| (*n, *e)).collect();
    put_member_entries(buf, &entries);
}

/// Exact size of [`put_view`]'s output.
#[must_use]
pub fn view_len(view: &RingView<ReplicaId>) -> usize {
    let entries: Vec<(ReplicaId, MemberEntry)> = view.iter().map(|(n, e)| (*n, *e)).collect();
    member_entries_len(&entries)
}

/// Reads back a [`put_view`] ring view.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_view(d: &mut Decoder<'_>) -> Result<RingView<ReplicaId>, DecodeError> {
    let mut view = RingView::new();
    for (r, e) in get_member_entries(d)? {
        view.set(r, e.incarnation, e.status);
    }
    Ok(view)
}

/// Appends a bare key list (want lists, batched handoff acks) as
/// shared-prefix deltas.
pub fn put_key_list(buf: &mut Vec<u8>, keys: &[Key]) {
    put_varint(buf, keys.len() as u64);
    let mut prev: &[u8] = &[];
    for k in keys {
        let lcp = common_prefix(prev, k);
        put_varint(buf, lcp as u64);
        put_varint(buf, (k.len() - lcp) as u64);
        buf.extend_from_slice(&k[lcp..]);
        prev = k;
    }
}

/// Exact size of [`put_key_list`]'s output.
#[must_use]
pub fn key_list_len(keys: &[Key]) -> usize {
    let mut n = varint_len(keys.len() as u64);
    let mut prev: &[u8] = &[];
    for k in keys {
        let lcp = common_prefix(prev, k);
        n += varint_len(lcp as u64) + varint_len((k.len() - lcp) as u64) + (k.len() - lcp);
        prev = k;
    }
    n
}

/// Reads back a [`put_key_list`] list.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_key_list(d: &mut Decoder<'_>) -> Result<Vec<Key>, DecodeError> {
    let n = d.varint()? as usize;
    let mut out: Vec<Key> = Vec::with_capacity(n.min(d.remaining() / 2 + 1));
    let mut prev: Vec<u8> = Vec::new();
    for _ in 0..n {
        let lcp = d.varint()? as usize;
        if lcp > prev.len() {
            return Err(DecodeError::InvalidValue {
                reason: "key prefix longer than previous key",
            });
        }
        let suffix_len = d.varint()? as usize;
        let suffix = d.bytes(suffix_len)?;
        let mut k = prev[..lcp].to_vec();
        k.extend_from_slice(suffix);
        out.push(k.clone());
        prev = k;
    }
    Ok(out)
}

/// Appends a `(key, opaque blob)` entry list — transfers, handoffs and
/// AAE state pushes: shared-prefix-delta keys, each followed by a
/// modeled state blob of the given size.
pub fn put_keyed_blobs(buf: &mut Vec<u8>, items: &[(&Key, usize)]) {
    put_varint(buf, items.len() as u64);
    let mut prev: &[u8] = &[];
    for (k, size) in items {
        let lcp = common_prefix(prev, k);
        put_varint(buf, lcp as u64);
        put_varint(buf, (k.len() - lcp) as u64);
        buf.extend_from_slice(&k[lcp..]);
        put_blob(buf, *size);
        prev = k;
    }
}

/// Exact size of [`put_keyed_blobs`]'s output.
#[must_use]
pub fn keyed_blobs_len(items: &[(&Key, usize)]) -> usize {
    let mut n = varint_len(items.len() as u64);
    let mut prev: &[u8] = &[];
    for (k, size) in items {
        let lcp = common_prefix(prev, k);
        n += varint_len(lcp as u64)
            + varint_len((k.len() - lcp) as u64)
            + (k.len() - lcp)
            + blob_len(*size);
        prev = k;
    }
    n
}

pub(crate) fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_codec_roundtrips_and_is_compact() {
        let mut view: RingView<ReplicaId> =
            RingView::from_members([ReplicaId(0), ReplicaId(1), ReplicaId(2)]);
        view.bump(&ReplicaId(1), MemberStatus::Leaving);
        view.bump(&ReplicaId(7), MemberStatus::Joining);
        let mut buf = Vec::new();
        put_view(&mut buf, &view);
        assert_eq!(buf.len(), view_len(&view));
        let mut d = Decoder::new(&buf);
        let back = get_view(&mut d).unwrap();
        assert_eq!(d.remaining(), 0);
        assert_eq!(back, view);
        assert_eq!(back.digest(), view.digest());
        // 4 entries in ~11 bytes, vs 13/entry under the old flat model
        assert!(buf.len() <= 12, "got {}", buf.len());
    }

    #[test]
    fn member_entries_reject_bad_status_tag() {
        // handcraft: 1 id, incarnation 1, status bits = 3 is valid
        // (Removed); only decoding relies on from_wire_tag, so corrupt
        // the packed byte to an unreachable value via a 2-entry run
        // where the second entry's bits stay in the same byte
        let entries = vec![
            (
                ReplicaId(0),
                MemberEntry {
                    incarnation: 1,
                    status: MemberStatus::Up,
                },
            ),
            (
                ReplicaId(1),
                MemberEntry {
                    incarnation: 1,
                    status: MemberStatus::Up,
                },
            ),
        ];
        let mut buf = Vec::new();
        put_member_entries(&mut buf, &entries);
        let mut d = Decoder::new(&buf);
        assert_eq!(get_member_entries(&mut d).unwrap(), entries);
    }

    #[test]
    fn summary_and_arc_roots_roundtrip() {
        let summary = vec![(ReplicaId(0), 5u64), (ReplicaId(2), 9), (ReplicaId(9), 4)];
        let mut buf = Vec::new();
        put_summary(&mut buf, &summary);
        assert_eq!(buf.len(), summary_len(&summary));
        let mut d = Decoder::new(&buf);
        assert_eq!(get_summary(&mut d).unwrap(), summary);

        let arcs = vec![(3u32, 0xdead_beef_u64), (17, 42), (900, u64::MAX)];
        let mut buf = Vec::new();
        put_arc_roots(&mut buf, &arcs);
        assert_eq!(buf.len(), arc_roots_len(&arcs));
        let mut d = Decoder::new(&buf);
        assert_eq!(get_arc_roots(&mut d).unwrap(), arcs);
    }

    #[test]
    fn key_list_roundtrips_with_prefix_compression() {
        let keys: Vec<Key> = (0..20)
            .map(|i| format!("key:{i:03}").into_bytes())
            .collect();
        let mut buf = Vec::new();
        put_key_list(&mut buf, &keys);
        assert_eq!(buf.len(), key_list_len(&keys));
        let mut d = Decoder::new(&buf);
        assert_eq!(get_key_list(&mut d).unwrap(), keys);
        assert!(
            buf.len() < keys.iter().map(|k| k.len() + 2).sum::<usize>(),
            "prefix deltas must beat flat keys"
        );
    }

    #[test]
    fn keyed_blobs_size_matches_encoding() {
        let k1: Key = b"alpha".to_vec();
        let k2: Key = b"alpine".to_vec();
        let items = vec![(&k1, 30usize), (&k2, 7)];
        let mut buf = Vec::new();
        put_keyed_blobs(&mut buf, &items);
        assert_eq!(buf.len(), keyed_blobs_len(&items));
    }

    #[test]
    fn fixed_and_hint_fields_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 3);
        put_hint(&mut buf, None);
        put_hint(&mut buf, Some(ReplicaId(300)));
        put_key(&mut buf, b"k1");
        assert_eq!(
            buf.len(),
            U64_LEN + hint_len(None) + hint_len(Some(ReplicaId(300))) + key_len(b"k1")
        );
        let mut d = Decoder::new(&buf);
        assert_eq!(get_u64(&mut d).unwrap(), u64::MAX - 3);
        assert_eq!(d.byte().unwrap(), 0);
        assert_eq!(d.byte().unwrap(), 1);
        assert_eq!(d.varint().unwrap(), 300);
        assert_eq!(get_key(&mut d).unwrap(), b"k1".to_vec());
        assert_eq!(d.remaining(), 0);
    }
}
