//! Store and client configuration.

use simnet::Duration;

/// How eagerly a node uses the incremental (delta) form of a wire
/// protocol that also has a full-push form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeltaPolicy {
    /// Always push full state (the pre-delta wire protocol).
    Full,
    /// Use the delta form when its size heuristics say it will pay off;
    /// fall back to the full push otherwise.
    #[default]
    Auto,
    /// Always use the delta form when it is *correct* to do so —
    /// size heuristics are ignored, but correctness guards (e.g. the
    /// view-alignment digest check before comparing arc indices) still
    /// apply. Soak lanes run this to pin delta/full equivalence.
    Force,
}

impl DeltaPolicy {
    /// Reads a policy from the `DELTA_PROTOCOLS` environment variable
    /// (`full` | `auto` | `force`), defaulting to `Auto` when unset or
    /// unrecognised. Churn suites apply this so the nightly soak lane
    /// can force the delta paths on without a code change.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DELTA_PROTOCOLS").as_deref() {
            Ok("full") => DeltaPolicy::Full,
            Ok("force") => DeltaPolicy::Force,
            _ => DeltaPolicy::Auto,
        }
    }
}

/// Replication and protocol parameters of the store (Riak's N/R/W model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Replication factor: each key lives on `n` replicas.
    pub n: usize,
    /// Read quorum: a GET succeeds after `r` replica responses.
    pub r: usize,
    /// Write quorum: a PUT succeeds after `w` replica acks (the
    /// coordinator's own apply counts as one).
    pub w: usize,
    /// Coordinator-side deadline for assembling a quorum.
    pub request_timeout: Duration,
    /// Period of the anti-entropy timer on each server (0 disables).
    pub anti_entropy_interval: Duration,
    /// Whether coordinators push the merged state back to stale replicas
    /// after a GET.
    pub read_repair: bool,
    /// Period of the hinted-handoff retry timer (0 disables).
    pub handoff_interval: Duration,
    /// How long a sent handoff stays *in flight* before the handoff
    /// timer may re-send it. Without this guard a slow or unreachable
    /// intended owner would receive a duplicate `Handoff` on every
    /// handoff tick.
    pub handoff_retry_interval: Duration,
    /// Retry period for unacknowledged range transfers during a
    /// join/leave.
    pub transfer_retry_interval: Duration,
    /// Period of the ring-view gossip timer on each server (0 disables
    /// the periodic timer; view digests still piggyback on anti-entropy
    /// roots and adopting a new view still pushes eagerly).
    pub gossip_interval: Duration,
    /// Fixed per-message envelope overhead in bytes (headers, key, ids).
    pub header_bytes: usize,
    /// Virtual nodes per server on the hash ring a node rebuilds from an
    /// adopted ring view.
    pub vnodes: u32,
    /// How ring-view gossip reconciles digest mismatches: full view
    /// pushes, or two-step summary/delta exchanges.
    pub delta_views: DeltaPolicy,
    /// How anti-entropy narrows a shared-root mismatch: a full leaf
    /// push, or per-arc root exchange first and leaves only for the
    /// arcs that differ.
    pub delta_aae: DeltaPolicy,
    /// Maximum keys per range-transfer batch.
    pub transfer_batch_keys: usize,
    /// Maximum keys per hinted-handoff batch.
    pub handoff_batch_keys: usize,
    /// Whether the dot-reuse epoch guard is active: before minting a dot
    /// counter past its durably reserved ceiling, a node fsyncs a new
    /// reservation, and after a crash-recovery minting resumes strictly
    /// above the recovered ceiling. Disabling this (tests only) recreates
    /// the pre-guard hazard: under group-sync durability a crash can roll
    /// counters back below dots peers already hold, and a post-recovery
    /// write re-mints an escaped dot for a different value.
    pub dot_guard: bool,
    /// Counter headroom each dot reservation covers: one reservation
    /// fsync amortises over this many mints.
    pub dot_headroom: u64,
}

impl Default for StoreConfig {
    /// Riak-like defaults: N=3, R=2, W=2, 50ms timeout, AAE every 500ms.
    fn default() -> Self {
        StoreConfig {
            n: 3,
            r: 2,
            w: 2,
            request_timeout: Duration::from_millis(50),
            anti_entropy_interval: Duration::from_millis(500),
            read_repair: true,
            handoff_interval: Duration::from_millis(200),
            handoff_retry_interval: Duration::from_millis(600),
            transfer_retry_interval: Duration::from_millis(25),
            gossip_interval: Duration::from_millis(100),
            header_bytes: 16,
            vnodes: 32,
            delta_views: DeltaPolicy::default(),
            delta_aae: DeltaPolicy::default(),
            transfer_batch_keys: 64,
            handoff_batch_keys: 32,
            dot_guard: true,
            dot_headroom: 1024,
        }
    }
}

impl StoreConfig {
    /// Validates quorum relationships.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `w` is zero or exceeds `n`.
    pub fn validate(&self) {
        assert!(self.n > 0, "replication factor must be positive");
        assert!(
            (1..=self.n).contains(&self.r),
            "read quorum must be within 1..=n"
        );
        assert!(
            (1..=self.n).contains(&self.w),
            "write quorum must be within 1..=n"
        );
        assert!(self.vnodes > 0, "a node must own at least one token");
        assert!(
            self.transfer_batch_keys > 0,
            "transfer batches must hold at least one key"
        );
        assert!(
            self.handoff_batch_keys > 0,
            "handoff batches must hold at least one key"
        );
        assert!(
            !self.dot_guard || self.dot_headroom > 0,
            "the dot guard needs positive counter headroom"
        );
    }

    /// Returns a copy with both delta policies set from the
    /// `DELTA_PROTOCOLS` environment variable ([`DeltaPolicy::from_env`]).
    /// Applied explicitly by the churn suites rather than centrally, so
    /// tests that pin a specific policy stay pinned.
    #[must_use]
    pub fn with_env_delta(mut self) -> Self {
        let policy = DeltaPolicy::from_env();
        self.delta_views = policy;
        self.delta_aae = policy;
        self
    }
}

/// Client session parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientConfig {
    /// Read-modify-write cycles each client performs.
    pub cycles: u32,
    /// Think time between cycles.
    pub think_time: Duration,
    /// Payload bytes per write.
    pub value_size: usize,
    /// Number of keys in the workload key space.
    pub key_count: usize,
    /// Zipf exponent of key popularity (0 = uniform).
    pub zipf_alpha: f64,
    /// Client-side deadline for one request before retrying.
    pub request_timeout: Duration,
    /// Retries per request before giving up on the cycle.
    pub max_retries: u32,
    /// Probability that a cycle's write is a delete (tombstone) instead
    /// of a value write.
    pub delete_fraction: f64,
    /// Probability that a cycle is read-only (GET without the following
    /// PUT) — the read-heavy mixes of YCSB-style workloads.
    pub read_only_fraction: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            cycles: 20,
            think_time: Duration::from_millis(5),
            value_size: 64,
            key_count: 8,
            zipf_alpha: 1.0,
            request_timeout: Duration::from_millis(100),
            max_retries: 3,
            delete_fraction: 0.0,
            read_only_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_riak_profile() {
        let c = StoreConfig::default();
        c.validate();
        assert_eq!((c.n, c.r, c.w), (3, 2, 2));
        assert!(c.read_repair);
    }

    #[test]
    #[should_panic(expected = "read quorum")]
    fn oversized_read_quorum_rejected() {
        StoreConfig {
            r: 4,
            ..StoreConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "write quorum")]
    fn zero_write_quorum_rejected() {
        StoreConfig {
            w: 0,
            ..StoreConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_n_rejected() {
        StoreConfig {
            n: 0,
            r: 1,
            w: 1,
            ..StoreConfig::default()
        }
        .validate();
    }

    #[test]
    fn client_defaults_sane() {
        let c = ClientConfig::default();
        assert!(c.cycles > 0);
        assert!(c.key_count > 0);
    }
}
