//! [`DataStore`]: a replica's per-key states with a persistent,
//! ownership-partitioned anti-entropy index.
//!
//! Every stored key is stamped once with its ring hash point and the
//! fingerprint of its current state, and every mutation updates one
//! per-arc [`MerkleSummary`] in place — so building the summary a peer
//! exchange needs is a matter of *selecting* arcs, not scanning the
//! keyspace. The arcs are the ring's token arcs ([`ring::HashRing::
//! arc_bounds`]): on every arc a key's preference list is constant, so
//! "the keys this node and peer both replicate" is a union of whole
//! arcs, and (because Merkle roots XOR-combine, see
//! [`crate::merkle::MerkleSummary::root`]) its root is the XOR of the
//! selected arcs' cached roots.
//!
//! All mutation goes through [`DataStore::mutate`] / [`DataStore::
//! remove`] / [`DataStore::clear`], which keep the index consistent by
//! construction. Mutations are cheap: a write only marks its key
//! *dirty*; the fingerprint refresh and summary update are deferred to
//! [`DataStore::flush`], which the read points (anti-entropy tick/root
//! receipt, transfer snapshots, re-partition) run first — so a hot key
//! written a thousand times between AAE ticks is fingerprinted once,
//! and the write path never hashes a state. [`DataStore::audit_index`]
//! rebuilds everything from scratch and compares (modulo the pending
//! dirty refreshes, whose invariant it checks too), and is exercised by
//! the incremental-vs-rebuild proptest oracle.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

use ring::{arc_index, hash_key};

use crate::merkle::{fingerprint, MerkleSummary};
use crate::value::Key;

/// One stored key: its state plus the cached derivatives every hot path
/// would otherwise recompute (the ring hash point for ownership lookups,
/// the state fingerprint for AAE leaves and transfer/handoff guards).
#[derive(Clone, Debug)]
struct Slot<S> {
    state: S,
    /// `hash_key(key)` — stamped once when the key is first stored.
    point: u64,
    /// `fingerprint(state)` as of the last [`DataStore::flush`]; stale
    /// while the key sits in the dirty set.
    leaf: u64,
}

/// Index of the arc containing `point` — [`ring::arc_index`], the one
/// shared boundary/wrap convention, so this index buckets exactly like
/// the ring's own arc lookups.
fn arc_of(bounds: &[u64], point: u64) -> usize {
    arc_index(bounds, point)
}

/// A replica's per-key states plus the incrementally maintained per-arc
/// Merkle summaries (see the module docs).
#[derive(Clone, Debug)]
pub struct DataStore<S> {
    entries: BTreeMap<Key, Slot<S>>,
    /// The arc partition the summaries are keyed by — a copy of the
    /// current ring's [`ring::HashRing::arc_bounds`] (empty ⇒ one
    /// catch-all arc).
    bounds: Vec<u64>,
    /// One summary per arc, parallel to `bounds` (at least one).
    summaries: Vec<MerkleSummary>,
    /// Keys written since the last [`DataStore::flush`]: their slot
    /// `leaf` and summary entry are pending refresh. Keeping the write
    /// path to a set insert (instead of a state hash + summary update
    /// per write) is what lets the AAE index ride the client hot path
    /// for free — hot keys coalesce.
    dirty: BTreeSet<Key>,
}

impl<S> Default for DataStore<S> {
    fn default() -> Self {
        DataStore {
            entries: BTreeMap::new(),
            bounds: Vec::new(),
            summaries: vec![MerkleSummary::new()],
            dirty: BTreeSet::new(),
        }
    }
}

impl<S: Clone + Hash> DataStore<S> {
    /// Creates an empty store with a single catch-all arc.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The state stored for `key`, if any.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&S> {
        self.entries.get(key).map(|s| &s.state)
    }

    /// Whether `key` is stored.
    #[must_use]
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of stored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.entries.keys()
    }

    /// The stored states, in key order.
    pub fn values(&self) -> impl Iterator<Item = &S> {
        self.entries.values().map(|s| &s.state)
    }

    /// `(key, state)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &S)> {
        self.entries.iter().map(|(k, s)| (k, &s.state))
    }

    /// The cached ring hash point of `key`, if stored.
    #[must_use]
    pub fn point_of(&self, key: &[u8]) -> Option<u64> {
        self.entries.get(key).map(|s| s.point)
    }

    /// The state fingerprint of `key`, if stored: the cached leaf, or a
    /// fresh `fingerprint(state)` when the key has a refresh pending —
    /// either way equal to `fingerprint(self.get(key))`.
    #[must_use]
    pub fn leaf_of(&self, key: &[u8]) -> Option<u64> {
        self.entries.get(key).map(|s| {
            if self.dirty.contains(key) {
                fingerprint(&s.state)
            } else {
                s.leaf
            }
        })
    }

    /// Mutates (inserting a default first if absent) the state for
    /// `key` and marks it dirty; the fingerprint and summary refresh is
    /// deferred to [`DataStore::flush`]. Returns the post-mutation
    /// state.
    pub fn mutate(&mut self, key: &[u8], f: impl FnOnce(&mut S)) -> &S
    where
        S: Default,
    {
        let slot = self.entries.entry(key.to_vec()).or_insert_with(|| Slot {
            state: S::default(),
            point: hash_key(key),
            leaf: 0,
        });
        f(&mut slot.state);
        if !self.dirty.contains(key) {
            self.dirty.insert(key.to_vec());
        }
        &slot.state
    }

    /// `(key, cached point, state)` triples in key order — lets range
    /// planning read every key's ring position without per-key lookups
    /// or rehashing.
    pub fn iter_points(&self) -> impl Iterator<Item = (&Key, u64, &S)> {
        self.entries.iter().map(|(k, s)| (k, s.point, &s.state))
    }

    /// Applies every pending dirty refresh: re-fingerprints each dirty
    /// key and updates its arc summary. Run by every reader of the
    /// per-arc summaries (AAE tick and root receipt, re-partition) and
    /// O(dirty keys) — a hot key written many times between flushes is
    /// hashed once.
    pub fn flush(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        for key in std::mem::take(&mut self.dirty) {
            if let Some(slot) = self.entries.get_mut(&key) {
                slot.leaf = fingerprint(&slot.state);
                self.summaries[arc_of(&self.bounds, slot.point)].set(key, slot.leaf);
            }
        }
    }

    /// Whether any dirty refresh is pending (test/audit hook).
    #[must_use]
    pub fn has_pending_refresh(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Removes `key` (and its summary leaf). Returns whether it was
    /// stored.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        match self.entries.remove(key) {
            Some(slot) => {
                self.dirty.remove(key);
                self.summaries[arc_of(&self.bounds, slot.point)].remove(key);
                true
            }
            None => false,
        }
    }

    /// Drops every key and empties all summaries (the arc partition is
    /// kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dirty.clear();
        for s in &mut self.summaries {
            *s = MerkleSummary::new();
        }
    }

    /// Re-partitions the index for a new ring: adopts `bounds` (the new
    /// ring's arc boundaries) and re-buckets every stored key's cached
    /// `(point, leaf)` into the new per-arc summaries. O(keys · log
    /// arcs) after flushing the pending refreshes, paid only on view
    /// changes — no key is re-pointed.
    pub fn repartition(&mut self, bounds: Vec<u64>) {
        self.flush();
        self.bounds = bounds;
        self.summaries = vec![MerkleSummary::new(); self.bounds.len().max(1)];
        for (k, slot) in &self.entries {
            self.summaries[arc_of(&self.bounds, slot.point)].set(k.clone(), slot.leaf);
        }
    }

    /// The arc partition currently indexed (empty ⇒ one catch-all arc).
    #[must_use]
    pub fn arc_bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cached root of arc `idx` (0 for an out-of-range arc — the XOR
    /// identity, so absent arcs contribute nothing to a combined root).
    #[must_use]
    pub fn arc_root(&self, idx: usize) -> u64 {
        self.summaries.get(idx).map_or(0, MerkleSummary::root)
    }

    /// The maintained summary of arc `idx`, if in range.
    #[must_use]
    pub fn arc_summary(&self, idx: usize) -> Option<&MerkleSummary> {
        self.summaries.get(idx)
    }

    /// Rebuilds every cached derivative from scratch — key points, state
    /// fingerprints, per-arc summaries, roots — and compares them with
    /// the incrementally maintained ones (after functionally applying
    /// the pending dirty refreshes, whose own invariants are checked
    /// too). This is the safety net for the whole incremental-AAE
    /// refactor: any mutation path that forgets to mark its key dirty,
    /// or any flush that misses one, shows up here.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit_index(&self) -> Result<(), String> {
        // what flush() would produce, computed without mutating self
        let mut maintained_after_flush = self.summaries.clone();
        for key in &self.dirty {
            let Some(slot) = self.entries.get(key) else {
                return Err(format!("dirty key {key:?} is not stored"));
            };
            maintained_after_flush[arc_of(&self.bounds, slot.point)]
                .set_ref(key, fingerprint(&slot.state));
        }
        let mut fresh = vec![MerkleSummary::new(); self.summaries.len()];
        for (k, slot) in &self.entries {
            let point = hash_key(k);
            if slot.point != point {
                return Err(format!("key {k:?}: cached point {} != {point}", slot.point));
            }
            let leaf = fingerprint(&slot.state);
            if !self.dirty.contains(k) && slot.leaf != leaf {
                return Err(format!(
                    "clean key {k:?}: cached leaf {} != {leaf}",
                    slot.leaf
                ));
            }
            fresh[arc_of(&self.bounds, point)].set(k.clone(), leaf);
        }
        for (idx, (maintained, rebuilt)) in maintained_after_flush.iter().zip(&fresh).enumerate() {
            if maintained.leaves() != rebuilt.leaves() {
                return Err(format!(
                    "arc {idx}: maintained leaves {:?} != rebuilt {:?}",
                    maintained.leaves(),
                    rebuilt.leaves()
                ));
            }
            if maintained.root() != rebuilt.root() {
                return Err(format!(
                    "arc {idx}: maintained root {} != rebuilt {}",
                    maintained.root(),
                    rebuilt.root()
                ));
            }
        }
        Ok(())
    }
}

impl<'a, S: Clone + Hash> IntoIterator for &'a DataStore<S> {
    type Item = (&'a Key, &'a S);
    type IntoIter = Box<dyn Iterator<Item = (&'a Key, &'a S)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds4() -> Vec<u64> {
        vec![u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3, u64::MAX - 7]
    }

    #[test]
    fn mutate_remove_clear_keep_the_index_consistent() {
        let mut d: DataStore<u64> = DataStore::new();
        d.repartition(bounds4());
        for i in 0..50u8 {
            d.mutate(&[i], |s| *s += u64::from(i) + 1);
            assert!(d.audit_index().is_ok());
            if i % 7 == 0 {
                d.flush(); // audit must hold flushed and unflushed alike
                assert!(d.audit_index().is_ok());
            }
        }
        assert_eq!(d.len(), 50);
        for i in (0..50u8).step_by(3) {
            assert!(d.remove(&[i]));
            d.audit_index().expect("consistent after remove");
        }
        assert!(!d.remove(b"absent"));
        d.mutate(b"x", |s| *s = 9);
        assert_eq!(
            d.leaf_of(b"x"),
            Some(fingerprint(&9u64)),
            "leaf_of computes on demand while the key is dirty"
        );
        d.flush();
        assert!(!d.has_pending_refresh());
        assert_eq!(d.get(b"x"), Some(&9));
        assert_eq!(d.leaf_of(b"x"), Some(fingerprint(&9u64)));
        assert_eq!(d.point_of(b"x"), Some(hash_key(b"x")));
        d.clear();
        assert!(d.is_empty());
        assert!(!d.has_pending_refresh());
        d.audit_index().expect("consistent after clear");
    }

    #[test]
    fn flush_coalesces_repeated_writes_and_refreshes_summaries() {
        let mut d: DataStore<u64> = DataStore::new();
        for round in 1..=5u64 {
            d.mutate(b"hot", |s| *s = round);
        }
        assert!(d.has_pending_refresh());
        assert_eq!(
            d.arc_summary(0).unwrap().len(),
            0,
            "summary refresh is deferred until flush"
        );
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        assert_eq!(d.leaf_of(b"hot"), Some(fingerprint(&5u64)));
        d.audit_index().expect("consistent after flush");
        // flushing with nothing pending is a no-op
        let root = d.arc_root(0);
        d.flush();
        assert_eq!(d.arc_root(0), root);
        // a dirty key removed before the flush leaves no leaf behind
        d.mutate(b"gone", |s| *s = 1);
        d.remove(b"gone");
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        d.audit_index().expect("consistent after dirty remove");
    }

    #[test]
    fn repartition_rebuckets_without_losing_leaves() {
        let mut d: DataStore<u64> = DataStore::new();
        for i in 0..30u8 {
            d.mutate(&[i], |s| *s = u64::from(i));
        }
        d.flush();
        let single_root: u64 = d.arc_root(0);
        d.repartition(bounds4());
        d.audit_index().expect("consistent after repartition");
        let combined: u64 = (0..4).map(|i| d.arc_root(i)).fold(0, |a, r| a ^ r);
        assert_eq!(
            combined, single_root,
            "XOR of arc roots is partition-independent"
        );
        d.repartition(Vec::new());
        assert_eq!(d.arc_root(0), single_root);
        // repartition flushes pending refreshes before re-bucketing
        d.mutate(&[0], |s| *s = 99);
        d.repartition(bounds4());
        d.audit_index().expect("consistent after dirty repartition");
        assert!(!d.has_pending_refresh());
    }

    #[test]
    fn catch_all_arc_serves_the_empty_partition() {
        let mut d: DataStore<u64> = DataStore::new();
        assert!(d.arc_bounds().is_empty());
        d.mutate(b"k", |s| *s = 1);
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        assert_eq!(d.arc_root(7), 0, "out-of-range arcs read as empty");
        assert!(d.arc_summary(7).is_none());
    }
}
