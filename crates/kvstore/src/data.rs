//! [`DataStore`]: a replica's per-key states with a persistent,
//! ownership-partitioned anti-entropy index.
//!
//! Every stored key is stamped once with its ring hash point and the
//! fingerprint of its current state, and every mutation updates one
//! per-arc [`MerkleSummary`] in place — so building the summary a peer
//! exchange needs is a matter of *selecting* arcs, not scanning the
//! keyspace. The arcs are the ring's token arcs ([`ring::HashRing::
//! arc_bounds`]): on every arc a key's preference list is constant, so
//! "the keys this node and peer both replicate" is a union of whole
//! arcs, and (because Merkle roots XOR-combine, see
//! [`crate::merkle::MerkleSummary::root`]) its root is the XOR of the
//! selected arcs' cached roots.
//!
//! All mutation goes through [`DataStore::mutate`] / [`DataStore::
//! remove`] / [`DataStore::clear`], which keep the index consistent by
//! construction. Mutations are cheap: a write only marks its key
//! *dirty*; the fingerprint refresh and summary update are deferred to
//! [`DataStore::flush`], which the read points (anti-entropy tick/root
//! receipt, transfer snapshots, re-partition) run first — so a hot key
//! written a thousand times between AAE ticks is fingerprinted once,
//! and the write path never hashes a state. [`DataStore::audit_index`]
//! rebuilds everything from scratch and compares (modulo the pending
//! dirty refreshes, whose invariant it checks too), and is exercised by
//! the incremental-vs-rebuild proptest oracle.
//!
//! The states themselves live *below* this index, behind the
//! [`StorageEngine`] seam: the mutation doors forward state changes to
//! the engine and keep only `(point, leaf)` metadata here, so the whole
//! Merkle/arc-summary layer is backend-agnostic — an in-memory
//! [`MemEngine`](storage::MemEngine) by default, or a durable
//! [`LogEngine`](storage::LogEngine) whose replay-on-open rebuilds the
//! store after a crash (see [`DataStore::with_engine`]).

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

use ring::{arc_index, hash_key};
use storage::{MemEngine, StorageEngine};

use crate::merkle::{fingerprint, MerkleSummary};
use crate::value::Key;

/// The cached derivatives of one stored key that every hot path would
/// otherwise recompute: the ring hash point for ownership lookups, and
/// the state fingerprint for AAE leaves and transfer/handoff guards.
/// The state itself lives in the storage engine.
#[derive(Clone, Copy, Debug)]
struct KeyMeta {
    /// `hash_key(key)` — stamped once when the key is first stored.
    point: u64,
    /// `fingerprint(state)` as of the last [`DataStore::flush`]; stale
    /// while the key sits in the dirty set.
    leaf: u64,
}

/// Index of the arc containing `point` — [`ring::arc_index`], the one
/// shared boundary/wrap convention, so this index buckets exactly like
/// the ring's own arc lookups.
fn arc_of(bounds: &[u64], point: u64) -> usize {
    arc_index(bounds, point)
}

/// A replica's per-key states plus the incrementally maintained per-arc
/// Merkle summaries (see the module docs).
#[derive(Debug)]
pub struct DataStore<S: 'static> {
    /// Where the states live; all state mutation goes through here.
    engine: Box<dyn StorageEngine<S>>,
    /// Per-key `(point, leaf)` metadata, parallel to the engine's keys.
    index: BTreeMap<Key, KeyMeta>,
    /// The arc partition the summaries are keyed by — a copy of the
    /// current ring's [`ring::HashRing::arc_bounds`] (empty ⇒ one
    /// catch-all arc).
    bounds: Vec<u64>,
    /// One summary per arc, parallel to `bounds` (at least one).
    summaries: Vec<MerkleSummary>,
    /// Keys written since the last [`DataStore::flush`]: their cached
    /// `leaf` and summary entry are pending refresh. Keeping the write
    /// path to a set insert (instead of a state hash + summary update
    /// per write) is what lets the AAE index ride the client hot path
    /// for free — hot keys coalesce.
    dirty: BTreeSet<Key>,
}

/// Cloning snapshots the engine ([`StorageEngine::snapshot`]): the copy
/// is a detached in-memory image of the states — audits clone a store
/// to flush it hypothetically — and shares no durability with the
/// original.
impl<S> Clone for DataStore<S> {
    fn clone(&self) -> Self {
        DataStore {
            engine: self.engine.snapshot(),
            index: self.index.clone(),
            bounds: self.bounds.clone(),
            summaries: self.summaries.clone(),
            dirty: self.dirty.clone(),
        }
    }
}

impl<S: Clone + Send + 'static> Default for DataStore<S> {
    fn default() -> Self {
        Self::with_engine(Box::new(MemEngine::new()))
    }
}

impl<S: Clone + Hash + Send + 'static> DataStore<S> {
    /// Creates an empty in-memory store with a single catch-all arc.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S: Clone + Send + 'static> DataStore<S> {
    /// Builds a store on top of `engine`, adopting whatever it already
    /// holds (a durable engine arrives pre-populated from replay): all
    /// adopted keys are stamped with their ring point and marked dirty,
    /// so the first [`DataStore::flush`] — which re-partition runs —
    /// fingerprints them into the summaries.
    #[must_use]
    pub fn with_engine(engine: Box<dyn StorageEngine<S>>) -> Self {
        let mut index = BTreeMap::new();
        let mut dirty = BTreeSet::new();
        for (key, _) in engine.iter() {
            index.insert(
                key.clone(),
                KeyMeta {
                    point: hash_key(key),
                    leaf: 0,
                },
            );
            dirty.insert(key.clone());
        }
        DataStore {
            engine,
            index,
            bounds: Vec::new(),
            summaries: vec![MerkleSummary::new()],
            dirty,
        }
    }

    /// The backing engine's short name ("mem", "log").
    #[must_use]
    pub fn engine_kind(&self) -> &'static str {
        self.engine.kind()
    }

    /// Forces buffered engine writes to durable storage (no-op for the
    /// in-memory engine). Harness hook for graceful-shutdown scenarios.
    pub fn sync_storage(&mut self) {
        self.engine.sync();
    }

    /// The engine's dot-mint reservation `(epoch, ceiling)`, if any —
    /// [`storage::StorageEngine::load_reservation`].
    #[must_use]
    pub fn load_reservation(&self) -> Option<(u64, u64)> {
        self.engine.load_reservation()
    }

    /// Durably records the dot-mint reservation before minting into the
    /// reserved range — [`storage::StorageEngine::store_reservation`].
    pub fn store_reservation(&mut self, epoch: u64, ceiling: u64) {
        self.engine.store_reservation(epoch, ceiling);
    }
}

impl<S: Clone + Hash + Send + 'static> DataStore<S> {
    /// The state stored for `key`, if any.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<&S> {
        self.engine.get(key)
    }

    /// Whether `key` is stored.
    #[must_use]
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Number of stored keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The stored keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.index.keys()
    }

    /// The stored states, in key order.
    pub fn values(&self) -> impl Iterator<Item = &S> {
        self.engine.iter().map(|(_, s)| s)
    }

    /// `(key, state)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &S)> {
        self.engine.iter()
    }

    /// The cached ring hash point of `key`, if stored.
    #[must_use]
    pub fn point_of(&self, key: &[u8]) -> Option<u64> {
        self.index.get(key).map(|m| m.point)
    }

    /// The state fingerprint of `key`, if stored: the cached leaf, or a
    /// fresh `fingerprint(state)` when the key has a refresh pending —
    /// either way equal to `fingerprint(self.get(key))`.
    #[must_use]
    pub fn leaf_of(&self, key: &[u8]) -> Option<u64> {
        self.index.get(key).map(|m| {
            if self.dirty.contains(key) {
                fingerprint(self.engine.get(key).expect("indexed key is stored"))
            } else {
                m.leaf
            }
        })
    }

    /// Mutates (inserting a default first if absent) the state for
    /// `key` and marks it dirty; the fingerprint and summary refresh is
    /// deferred to [`DataStore::flush`]. Returns the post-mutation
    /// state.
    pub fn mutate(&mut self, key: &[u8], f: impl FnOnce(&mut S)) -> &S
    where
        S: Default,
    {
        self.index.entry(key.to_vec()).or_insert_with(|| KeyMeta {
            point: hash_key(key),
            leaf: 0,
        });
        if !self.dirty.contains(key) {
            self.dirty.insert(key.to_vec());
        }
        let mut f = Some(f);
        self.engine.apply(key, &mut S::default, &mut |state| {
            if let Some(f) = f.take() {
                f(state);
            }
        })
    }

    /// `(key, cached point, state)` triples in key order — lets range
    /// planning read every key's ring position without per-key lookups
    /// or rehashing.
    pub fn iter_points(&self) -> impl Iterator<Item = (&Key, u64, &S)> {
        self.engine
            .iter()
            .map(move |(k, s)| (k, self.index[k].point, s))
    }

    /// Applies every pending dirty refresh: re-fingerprints each dirty
    /// key and updates its arc summary. Run by every reader of the
    /// per-arc summaries (AAE tick and root receipt, re-partition) and
    /// O(dirty keys) — a hot key written many times between flushes is
    /// hashed once.
    pub fn flush(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        for key in std::mem::take(&mut self.dirty) {
            let Some(state) = self.engine.get(&key) else {
                continue;
            };
            let leaf = fingerprint(state);
            let Some(meta) = self.index.get_mut(&key) else {
                continue;
            };
            meta.leaf = leaf;
            let point = meta.point;
            self.summaries[arc_of(&self.bounds, point)].set(key, leaf);
        }
    }

    /// Whether any dirty refresh is pending (test/audit hook).
    #[must_use]
    pub fn has_pending_refresh(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Removes `key` (and its summary leaf). Returns whether it was
    /// stored.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        match self.index.remove(key) {
            Some(meta) => {
                self.engine.remove(key);
                self.dirty.remove(key);
                self.summaries[arc_of(&self.bounds, meta.point)].remove(key);
                true
            }
            None => false,
        }
    }

    /// Drops every key and empties all summaries (the arc partition is
    /// kept).
    pub fn clear(&mut self) {
        self.engine.clear();
        self.index.clear();
        self.dirty.clear();
        for s in &mut self.summaries {
            *s = MerkleSummary::new();
        }
    }

    /// Re-partitions the index for a new ring: adopts `bounds` (the new
    /// ring's arc boundaries) and re-buckets every stored key's cached
    /// `(point, leaf)` into the new per-arc summaries. O(keys · log
    /// arcs) after flushing the pending refreshes, paid only on view
    /// changes — no key is re-pointed.
    pub fn repartition(&mut self, bounds: Vec<u64>) {
        self.flush();
        self.bounds = bounds;
        self.summaries = vec![MerkleSummary::new(); self.bounds.len().max(1)];
        for (k, meta) in &self.index {
            self.summaries[arc_of(&self.bounds, meta.point)].set(k.clone(), meta.leaf);
        }
    }

    /// The arc partition currently indexed (empty ⇒ one catch-all arc).
    #[must_use]
    pub fn arc_bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cached root of arc `idx` (0 for an out-of-range arc — the XOR
    /// identity, so absent arcs contribute nothing to a combined root).
    #[must_use]
    pub fn arc_root(&self, idx: usize) -> u64 {
        self.summaries.get(idx).map_or(0, MerkleSummary::root)
    }

    /// The maintained summary of arc `idx`, if in range.
    #[must_use]
    pub fn arc_summary(&self, idx: usize) -> Option<&MerkleSummary> {
        self.summaries.get(idx)
    }

    /// Rebuilds every cached derivative from scratch — key points, state
    /// fingerprints, per-arc summaries, roots — and compares them with
    /// the incrementally maintained ones (after functionally applying
    /// the pending dirty refreshes, whose own invariants are checked
    /// too). This is the safety net for the whole incremental-AAE
    /// refactor: any mutation path that forgets to mark its key dirty,
    /// or any flush that misses one, shows up here. It also audits the
    /// engine seam: the index and the engine must hold the same keys.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit_index(&self) -> Result<(), String> {
        if self.engine.len() != self.index.len() {
            return Err(format!(
                "engine holds {} keys but index holds {}",
                self.engine.len(),
                self.index.len()
            ));
        }
        // what flush() would produce, computed without mutating self
        let mut maintained_after_flush = self.summaries.clone();
        for key in &self.dirty {
            let (Some(meta), Some(state)) = (self.index.get(key), self.engine.get(key)) else {
                return Err(format!("dirty key {key:?} is not stored"));
            };
            maintained_after_flush[arc_of(&self.bounds, meta.point)]
                .set_ref(key, fingerprint(state));
        }
        let mut fresh = vec![MerkleSummary::new(); self.summaries.len()];
        for (k, state) in self.engine.iter() {
            let Some(meta) = self.index.get(k) else {
                return Err(format!("stored key {k:?} is not indexed"));
            };
            let point = hash_key(k);
            if meta.point != point {
                return Err(format!("key {k:?}: cached point {} != {point}", meta.point));
            }
            let leaf = fingerprint(state);
            if !self.dirty.contains(k) && meta.leaf != leaf {
                return Err(format!(
                    "clean key {k:?}: cached leaf {} != {leaf}",
                    meta.leaf
                ));
            }
            fresh[arc_of(&self.bounds, point)].set(k.clone(), leaf);
        }
        for (idx, (maintained, rebuilt)) in maintained_after_flush.iter().zip(&fresh).enumerate() {
            if maintained.leaves() != rebuilt.leaves() {
                return Err(format!(
                    "arc {idx}: maintained leaves {:?} != rebuilt {:?}",
                    maintained.leaves(),
                    rebuilt.leaves()
                ));
            }
            if maintained.root() != rebuilt.root() {
                return Err(format!(
                    "arc {idx}: maintained root {} != rebuilt {}",
                    maintained.root(),
                    rebuilt.root()
                ));
            }
        }
        Ok(())
    }
}

impl<'a, S: Clone + Hash + Send + 'static> IntoIterator for &'a DataStore<S> {
    type Item = (&'a Key, &'a S);
    type IntoIter = Box<dyn Iterator<Item = (&'a Key, &'a S)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{scratch_dir, LogConfig, LogEngine};

    fn bounds4() -> Vec<u64> {
        vec![u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3, u64::MAX - 7]
    }

    #[test]
    fn mutate_remove_clear_keep_the_index_consistent() {
        let mut d: DataStore<u64> = DataStore::new();
        d.repartition(bounds4());
        for i in 0..50u8 {
            d.mutate(&[i], |s| *s += u64::from(i) + 1);
            assert!(d.audit_index().is_ok());
            if i % 7 == 0 {
                d.flush(); // audit must hold flushed and unflushed alike
                assert!(d.audit_index().is_ok());
            }
        }
        assert_eq!(d.len(), 50);
        for i in (0..50u8).step_by(3) {
            assert!(d.remove(&[i]));
            d.audit_index().expect("consistent after remove");
        }
        assert!(!d.remove(b"absent"));
        d.mutate(b"x", |s| *s = 9);
        assert_eq!(
            d.leaf_of(b"x"),
            Some(fingerprint(&9u64)),
            "leaf_of computes on demand while the key is dirty"
        );
        d.flush();
        assert!(!d.has_pending_refresh());
        assert_eq!(d.get(b"x"), Some(&9));
        assert_eq!(d.leaf_of(b"x"), Some(fingerprint(&9u64)));
        assert_eq!(d.point_of(b"x"), Some(hash_key(b"x")));
        d.clear();
        assert!(d.is_empty());
        assert!(!d.has_pending_refresh());
        d.audit_index().expect("consistent after clear");
    }

    #[test]
    fn flush_coalesces_repeated_writes_and_refreshes_summaries() {
        let mut d: DataStore<u64> = DataStore::new();
        for round in 1..=5u64 {
            d.mutate(b"hot", |s| *s = round);
        }
        assert!(d.has_pending_refresh());
        assert_eq!(
            d.arc_summary(0).unwrap().len(),
            0,
            "summary refresh is deferred until flush"
        );
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        assert_eq!(d.leaf_of(b"hot"), Some(fingerprint(&5u64)));
        d.audit_index().expect("consistent after flush");
        // flushing with nothing pending is a no-op
        let root = d.arc_root(0);
        d.flush();
        assert_eq!(d.arc_root(0), root);
        // a dirty key removed before the flush leaves no leaf behind
        d.mutate(b"gone", |s| *s = 1);
        d.remove(b"gone");
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        d.audit_index().expect("consistent after dirty remove");
    }

    #[test]
    fn repartition_rebuckets_without_losing_leaves() {
        let mut d: DataStore<u64> = DataStore::new();
        for i in 0..30u8 {
            d.mutate(&[i], |s| *s = u64::from(i));
        }
        d.flush();
        let single_root: u64 = d.arc_root(0);
        d.repartition(bounds4());
        d.audit_index().expect("consistent after repartition");
        let combined: u64 = (0..4).map(|i| d.arc_root(i)).fold(0, |a, r| a ^ r);
        assert_eq!(
            combined, single_root,
            "XOR of arc roots is partition-independent"
        );
        d.repartition(Vec::new());
        assert_eq!(d.arc_root(0), single_root);
        // repartition flushes pending refreshes before re-bucketing
        d.mutate(&[0], |s| *s = 99);
        d.repartition(bounds4());
        d.audit_index().expect("consistent after dirty repartition");
        assert!(!d.has_pending_refresh());
    }

    #[test]
    fn catch_all_arc_serves_the_empty_partition() {
        let mut d: DataStore<u64> = DataStore::new();
        assert!(d.arc_bounds().is_empty());
        d.mutate(b"k", |s| *s = 1);
        d.flush();
        assert_eq!(d.arc_summary(0).unwrap().len(), 1);
        assert_eq!(d.arc_root(7), 0, "out-of-range arcs read as empty");
        assert!(d.arc_summary(7).is_none());
    }

    #[test]
    fn clone_is_a_detached_snapshot() {
        let mut d: DataStore<u64> = DataStore::new();
        d.mutate(b"k", |s| *s = 1);
        let mut snap = d.clone();
        d.mutate(b"k", |s| *s = 2);
        assert_eq!(snap.get(b"k"), Some(&1));
        snap.flush();
        snap.audit_index().expect("snapshot flushes independently");
        assert!(d.has_pending_refresh(), "original dirtiness untouched");
    }

    #[test]
    fn with_engine_adopts_replayed_contents_and_index_holds() {
        let dir = scratch_dir("adopt");
        let path = dir.join("replica.log");
        {
            let mut log: LogEngine<u64> =
                LogEngine::open(&path, LogConfig::write_through()).unwrap();
            for i in 0..20u8 {
                log.apply(&[i], &mut || 0, &mut |s| *s = u64::from(i) * 3);
            }
        }
        let engine: LogEngine<u64> = LogEngine::open(&path, LogConfig::default()).unwrap();
        let mut d = DataStore::with_engine(Box::new(engine));
        assert_eq!(d.engine_kind(), "log");
        assert_eq!(d.len(), 20);
        assert!(d.has_pending_refresh(), "adopted keys await fingerprinting");
        d.repartition(bounds4());
        d.audit_index().expect("consistent after adoption flush");
        assert_eq!(d.get(&[7u8]), Some(&21));
        // an equivalent store built by replaying the same writes in
        // memory has identical leaves, roots and contents
        let mut mem: DataStore<u64> = DataStore::new();
        for i in 0..20u8 {
            mem.mutate(&[i], |s| *s = u64::from(i) * 3);
        }
        mem.repartition(bounds4());
        for idx in 0..4 {
            assert_eq!(d.arc_root(idx), mem.arc_root(idx), "arc {idx} root");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
