//! # kvstore — a Dynamo/Riak-style multi-version replicated KV store
//!
//! This crate is the "modified Riak" of the paper's evaluation: a
//! replicated, multi-version key-value store running on the deterministic
//! [`simnet`] simulator, **generic over the causality-tracking
//! mechanism** ([`dvv::mechanisms::Mechanism`]). Swapping the mechanism —
//! DVV, DVVSet, per-client VVs (± pruning), per-server VVs, causal
//! histories, last-writer-wins — changes *only* the causal metadata, so
//! every difference in behaviour, metadata size or latency is attributable
//! to the clock design. That is precisely the comparison the paper makes.
//!
//! ## Architecture
//!
//! * [`node::StoreNode`] — replica server: coordinates GETs (R-quorum,
//!   read repair) and PUTs (W-quorum, `return_body` contexts) with
//!   ownership-aware quorum accounting (a non-owner coordinator counts
//!   only true owner responses), serves replica traffic, runs
//!   Merkle-based anti-entropy, performs hinted handoff for down peers,
//!   and takes part in elastic membership: joins stream newly-owned key
//!   ranges in, leaves drain held ranges out, all over the simulated
//!   network with view-digest–stamped routing over mergeable ring views
//!   (concurrent membership changes merge; a timed-out leave is
//!   re-admitted in band).
//! * [`client::ClientNode`] — closed-loop client session: read-modify-
//!   write cycles against Zipf-distributed keys, with timeouts and
//!   retries; logs every write with the versions it had observed so the
//!   post-hoc [`oracle`] can reconstruct ground-truth causality.
//! * [`cluster::Cluster`] — wires servers + clients into a
//!   [`simnet::Simulation`], runs workloads, converges replicas, and
//!   produces [`oracle::AnomalyReport`]s and metadata statistics.
//! * [`ctx::NodeCtx`] — the driver-agnostic node↔network boundary. Both
//!   node types are generic over it, so the same protocol logic runs on
//!   the simulator (via [`ctx::SimCtx`]) and on the multi-threaded
//!   `runtime` crate.
//!
//! ## Quick example
//!
//! ```
//! use dvv::mechanisms::DvvMechanism;
//! use kvstore::cluster::{Cluster, ClusterConfig};
//!
//! let config = ClusterConfig {
//!     servers: 3,
//!     clients: 4,
//!     cycles_per_client: 5,
//!     ..ClusterConfig::default()
//! };
//! let mut cluster = Cluster::new(42, DvvMechanism, config);
//! cluster.run();
//! cluster.converge();
//! let report = cluster.anomaly_report();
//! assert_eq!(report.lost_updates, 0);
//! assert_eq!(report.false_concurrency, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod cluster;
pub mod config;
pub mod ctx;
pub mod data;
pub mod harness;
pub mod merkle;
pub mod messages;
pub mod node;
pub mod oracle;
pub mod value;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use config::{DeltaPolicy, StoreConfig};
pub use ctx::{NodeCtx, SimCtx};
pub use harness::FleetHarness;
pub use oracle::{AnomalyReport, Oracle};
pub use value::{Key, StampedValue, WriteId};
