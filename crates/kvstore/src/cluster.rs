//! [`Cluster`]: wires servers and clients into a simulation and provides
//! the measurement surface used by tests, examples and benchmarks.

use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use dvv::encode::Encode;
use dvv::mechanisms::Mechanism;
use dvv::{ClientId, ReplicaId};
use ring::{MemberStatus, RingView};
use simnet::{
    Duration, LinkFaults, NetworkConfig, NodeId, Process, ProcessCtx, SimTime, Simulation, TimerId,
};
use storage::{LogConfig, LogEngine, MemEngine, StorageEngine};
use workloads::Histogram;

use crate::client::ClientNode;
use crate::config::{ClientConfig, StoreConfig};
use crate::ctx::SimCtx;
use crate::harness::FleetHarness;
use crate::messages::{Msg, WireStats};
use crate::node::StoreNode;
use crate::oracle::{AnomalyReport, Oracle};
use crate::value::{Key, StampedValue, WriteId};

/// A simulation process: either a replica server or a client session.
///
/// The variants differ in size but each node holds exactly one for the
/// whole run, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StoreProc<M: Mechanism<StampedValue>> {
    /// Replica server.
    Server(StoreNode<M>),
    /// Client session.
    Client(ClientNode<M>),
}

impl<M: Mechanism<StampedValue>> Process for StoreProc<M> {
    type Msg = Msg<M>;

    fn on_start(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>) {
        match self {
            StoreProc::Server(s) => {
                let mut c = SimCtx::new(ctx, s.mech().clone(), s.header_bytes());
                s.on_start(&mut c)
            }
            StoreProc::Client(c) => {
                let mut sc = SimCtx::new(ctx, c.mech().clone(), c.header_bytes());
                c.on_start(&mut sc)
            }
        }
    }

    fn on_message(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, from: NodeId, msg: Msg<M>) {
        match self {
            StoreProc::Server(s) => {
                let mut c = SimCtx::new(ctx, s.mech().clone(), s.header_bytes());
                s.on_message(&mut c, from, msg)
            }
            StoreProc::Client(c) => {
                let mut sc = SimCtx::new(ctx, c.mech().clone(), c.header_bytes());
                c.on_message(&mut sc, from, msg)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProcessCtx<'_, Msg<M>>, timer: TimerId) {
        match self {
            StoreProc::Server(s) => {
                let mut c = SimCtx::new(ctx, s.mech().clone(), s.header_bytes());
                s.on_timer(&mut c, timer)
            }
            StoreProc::Client(c) => {
                let mut sc = SimCtx::new(ctx, c.mech().clone(), c.header_bytes());
                c.on_timer(&mut sc, timer)
            }
        }
    }
}

/// Builds the storage engine for a server slot — shared by initial
/// construction and crash recovery, so a restarted node re-opens
/// exactly the backend (and on-disk state) its predecessor wrote.
/// Cloneable and thread-safe: the threaded runtime hands it to worker
/// threads for in-thread respawn.
pub struct EngineFactory<M: Mechanism<StampedValue>> {
    #[allow(clippy::type_complexity)]
    build: Arc<dyn Fn(usize) -> Box<dyn StorageEngine<M::State>> + Send + Sync>,
}

impl<M: Mechanism<StampedValue>> Clone for EngineFactory<M> {
    fn clone(&self) -> Self {
        EngineFactory {
            build: Arc::clone(&self.build),
        }
    }
}

impl<M: Mechanism<StampedValue>> fmt::Debug for EngineFactory<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EngineFactory(..)")
    }
}

impl<M: Mechanism<StampedValue>> EngineFactory<M> {
    /// Wraps an arbitrary engine builder.
    pub fn new(
        build: impl Fn(usize) -> Box<dyn StorageEngine<M::State>> + Send + Sync + 'static,
    ) -> Self {
        EngineFactory {
            build: Arc::new(build),
        }
    }

    /// The standard durable layout: one [`LogEngine`] per server slot at
    /// `dir/node-<slot>.log`. Opening replays whatever a previous
    /// incarnation durably synced there.
    ///
    /// # Panics
    ///
    /// The built closure panics if the log cannot be opened (harness
    /// context: an unopenable disk is a test-environment failure).
    pub fn log_in(dir: impl Into<PathBuf>, cfg: LogConfig) -> Self
    where
        M::State: Encode,
    {
        let dir = dir.into();
        Self::new(move |slot| {
            Box::new(
                LogEngine::open(dir.join(format!("node-{slot}.log")), cfg)
                    .expect("open log engine"),
            )
        })
    }

    /// Builds the engine for server slot `slot`.
    #[must_use]
    pub fn build(&self, slot: usize) -> Box<dyn StorageEngine<M::State>> {
        (self.build)(slot)
    }
}

/// One phase of a declarative network-fault schedule: at virtual time
/// `at` (from run start) every link in the fleet switches to `faults`.
/// The counterpart of a scheduled crash (`runtime::CrashEvent`) or
/// connection kill (`transport`'s `ConnKill`) for the adversarial
/// message faults — a suite declares *when* the network turns hostile
/// (or clean again) instead of hand-driving the simulation.
#[derive(Clone, Copy, Debug)]
pub struct FaultPhase {
    /// Virtual time from run start at which the phase takes effect.
    pub at: Duration,
    /// Fault knobs every link runs with from `at` until the next phase.
    pub faults: LinkFaults,
}

/// Complete experiment configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replica servers.
    pub servers: usize,
    /// Number of additional *dormant* server slots hosted by the
    /// simulation but outside the ring, available to
    /// [`Cluster::add_node_live`]. Spares occupy node ids
    /// `servers..servers + spare_servers`; clients come after them.
    pub spare_servers: usize,
    /// Number of client sessions.
    pub clients: usize,
    /// Read-modify-write cycles per client.
    pub cycles_per_client: u32,
    /// Store protocol parameters.
    pub store: StoreConfig,
    /// Client session parameters (its `cycles` field is overridden by
    /// `cycles_per_client`).
    pub client: ClientConfig,
    /// Network characteristics.
    pub network: NetworkConfig,
    /// Declarative fault schedule, applied in order as virtual time
    /// passes each phase's `at` (see [`FaultPhase`]). Phases must be
    /// sorted by `at`; an empty schedule leaves the configured network
    /// untouched.
    pub fault_schedule: Vec<FaultPhase>,
    /// Hard stop on virtual time (guards against misconfigured runs).
    pub deadline: Duration,
    /// How long a live membership change is supervised before it is
    /// declared unsettled.
    pub membership_settle_budget: Duration,
    /// Safety valve: when `true`, [`Cluster::await_membership`]
    /// force-merges the control plane's view into every process after a
    /// change (the pre-gossip behaviour). The default leaves
    /// dissemination entirely to gossip — including the recovery from a
    /// timed-out drain, which is re-admitted in band ([`Msg::Rejoin`])
    /// — and only debug-asserts that settled views converged.
    pub force_view_sync: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 3,
            spare_servers: 0,
            clients: 4,
            cycles_per_client: 20,
            store: StoreConfig::default(),
            client: ClientConfig::default(),
            network: NetworkConfig::default(),
            fault_schedule: Vec::new(),
            deadline: Duration::from_secs(600),
            membership_settle_budget: Duration::from_secs(30),
            force_view_sync: false,
        }
    }
}

impl ClusterConfig {
    /// Returns a copy with every link's adversarial faults set from the
    /// `NET_FAULTS` environment variable: `hostile` switches on
    /// [`LinkFaults::hostile`] (duplication, reordering, stale replay)
    /// on the default link and all overrides; anything else leaves the
    /// network as configured. The churn suites apply this — like
    /// [`StoreConfig::with_env_delta`] — so the nightly soak lane can
    /// re-run them under a hostile network without a code change.
    #[must_use]
    pub fn with_env_net_faults(mut self) -> Self {
        if std::env::var("NET_FAULTS").as_deref() == Ok("hostile") {
            let faults = LinkFaults::hostile();
            self.network.default_link.faults = faults;
            for link in self.network.overrides.values_mut() {
                link.faults = faults;
            }
        }
        self
    }
}

/// Aggregated client latency statistics.
#[derive(Clone, Debug, Default)]
pub struct LatencyReport {
    /// All GET latencies (µs).
    pub get: Histogram,
    /// All PUT latencies (µs).
    pub put: Histogram,
    /// Cycles abandoned after retries.
    pub failed_cycles: u64,
    /// Request retries.
    pub retries: u64,
}

/// Metadata-size statistics over the converged store.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetadataReport {
    /// Total causal-metadata bytes across replicas and keys.
    pub total_bytes: usize,
    /// Mean metadata bytes per key per replica.
    pub mean_bytes_per_key: f64,
    /// Largest per-key metadata at any replica.
    pub max_bytes_per_key: usize,
    /// Mean sibling count per key.
    pub mean_siblings: f64,
    /// Largest sibling set.
    pub max_siblings: usize,
}

/// A running store cluster: `servers` replica nodes (plus optional
/// dormant spares) and `clients` session nodes on a simulated network.
///
/// Membership is **elastic and concurrent**: [`Cluster::begin_join`]
/// activates a spare slot and [`Cluster::begin_leave`] starts draining a
/// member — any number of changes may be announced before
/// [`Cluster::await_membership`] supervises them to completion, because
/// ring views version each member independently and *merge*
/// ([`ring::RingView`]): a join and a leave announced on different sides
/// of a partition converge instead of racing. Each change is announced
/// to its *subject* only, and every other process learns it transitively
/// by gossip (periodic digests, AAE piggybacks, eager pushes, and
/// request-digest mismatches). A leave whose drain cannot complete
/// within the supervision budget is re-admitted **in band**
/// ([`Msg::Rejoin`] under a fresh incarnation); force-synchronising the
/// views is a configurable safety valve
/// ([`ClusterConfig::force_view_sync`]), not a correctness step.
/// [`Cluster::add_node_live`] / [`Cluster::remove_node_live`] remain as
/// single-change conveniences (begin + await).
#[derive(Debug)]
pub struct Cluster<M: Mechanism<StampedValue>> {
    sim: Simulation<StoreProc<M>>,
    mech: M,
    servers: usize,
    server_slots: usize,
    clients: usize,
    /// Server slots currently in the ring.
    members: BTreeSet<usize>,
    /// The control plane's canonical mergeable view; every announcement
    /// mints its member entries from here.
    view: RingView<ReplicaId>,
    /// Joins announced but not yet supervised to completion.
    pending_joins: BTreeSet<usize>,
    /// Leaves announced but not yet drained/retired.
    pending_leaves: BTreeSet<usize>,
    store_n: usize,
    store_config: StoreConfig,
    deadline: SimTime,
    settle_budget: Duration,
    force_view_sync: bool,
    /// The view servers boot with — what a crash-recovered node knows
    /// before its in-band [`Msg::Rejoin`] catches it up.
    genesis_view: RingView<ReplicaId>,
    /// Per-slot storage engine builder; `None` means in-memory engines
    /// (a crashed node then restarts empty — the diskless baseline).
    engine_factory: Option<EngineFactory<M>>,
    /// Declarative fault schedule, with the index of the next phase not
    /// yet applied ([`Cluster::apply_due_fault_phases`]).
    fault_schedule: Vec<FaultPhase>,
    fault_phase_next: usize,
    /// Server slots currently crashed: an inert husk holds the slot and
    /// every link to it is severed until [`Cluster::restart_node`].
    crashed: BTreeSet<usize>,
}

impl<M: Mechanism<StampedValue>> Cluster<M> {
    /// Default virtual nodes per server on the cluster's hash ring
    /// (the actual count comes from [`StoreConfig::vnodes`], whose
    /// default matches this constant).
    pub const VNODES: u32 = 32;

    /// Builds a cluster on in-memory storage engines. All randomness
    /// derives from `seed`.
    pub fn new(seed: u64, mech: M, config: ClusterConfig) -> Self {
        Self::build(seed, mech, config, None)
    }

    /// Builds a cluster whose servers store through engines built by
    /// `factory` — the durable variant. A [`Cluster::crash_node`] /
    /// [`Cluster::restart_node`] cycle then rebuilds the node from the
    /// same factory, so a log-backed replica comes back with everything
    /// it durably synced before the crash.
    pub fn new_durable(
        seed: u64,
        mech: M,
        config: ClusterConfig,
        factory: EngineFactory<M>,
    ) -> Self {
        Self::build(seed, mech, config, Some(factory))
    }

    fn build(
        seed: u64,
        mech: M,
        config: ClusterConfig,
        engine_factory: Option<EngineFactory<M>>,
    ) -> Self {
        assert!(config.servers > 0, "need at least one server");
        config.store.validate();
        assert!(
            config.store.n <= config.servers,
            "replication factor exceeds server count"
        );
        let vnodes = config.store.vnodes;
        let server_slots = config.servers + config.spare_servers;
        let replicas: Vec<ReplicaId> = (0..config.servers as u32).map(ReplicaId).collect();
        let view = RingView::from_members(replicas.iter().copied());

        let engine = |slot: usize| -> Box<dyn StorageEngine<M::State>> {
            match &engine_factory {
                Some(f) => f.build(slot),
                None => Box::new(MemEngine::new()),
            }
        };
        let mut procs: Vec<StoreProc<M>> = Vec::with_capacity(server_slots + config.clients);
        for r in &replicas {
            procs.push(StoreProc::Server(StoreNode::with_engine(
                *r,
                mech.clone(),
                config.store,
                view.clone(),
                engine(r.0 as usize),
            )));
        }
        for spare in config.servers..server_slots {
            procs.push(StoreProc::Server(StoreNode::dormant_with_engine(
                ReplicaId(spare as u32),
                mech.clone(),
                config.store,
                view.clone(),
                engine(spare),
            )));
        }
        for j in 0..config.clients {
            let node_index = (server_slots + j) as u32;
            let mut client_cfg = config.client.clone();
            client_cfg.cycles = config.cycles_per_client;
            procs.push(StoreProc::Client(ClientNode::new(
                ClientId(j as u64),
                node_index,
                mech.clone(),
                client_cfg,
                config.store.n,
                config.store.header_bytes,
                view.clone(),
                vnodes,
            )));
        }
        let genesis_view = view.clone();
        Cluster {
            sim: Simulation::new(seed, config.network, procs),
            mech,
            servers: config.servers,
            server_slots,
            clients: config.clients,
            members: (0..config.servers).collect(),
            view,
            pending_joins: BTreeSet::new(),
            pending_leaves: BTreeSet::new(),
            store_n: config.store.n,
            store_config: config.store,
            deadline: SimTime::ZERO + config.deadline,
            settle_budget: config.membership_settle_budget,
            force_view_sync: config.force_view_sync,
            genesis_view,
            engine_factory,
            crashed: BTreeSet::new(),
            fault_schedule: config.fault_schedule,
            fault_phase_next: 0,
        }
    }

    /// The underlying simulation (for partitions, traces, time).
    pub fn sim(&self) -> &Simulation<StoreProc<M>> {
        &self.sim
    }

    /// Mutable access to the simulation (partitions, fault injection).
    pub fn sim_mut(&mut self) -> &mut Simulation<StoreProc<M>> {
        &mut self.sim
    }

    /// Read access to server `i`'s store node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a server index.
    pub fn server(&self, i: usize) -> &StoreNode<M> {
        match self.sim.process(i) {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => panic!("node {i} is a client"),
        }
    }

    /// Read access to client `j`'s session node.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not a client index.
    pub fn client(&self, j: usize) -> &ClientNode<M> {
        match self.sim.process(self.server_slots + j) {
            StoreProc::Client(c) => c,
            StoreProc::Server(_) => panic!("node {j} is a server"),
        }
    }

    /// Number of initial servers (spare slots excluded); with no elastic
    /// membership operations, identical to the member count.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// Total hosted server slots, including dormant spares.
    pub fn server_slot_count(&self) -> usize {
        self.server_slots
    }

    /// The server slots currently in the ring, in ascending order.
    pub fn member_slots(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// Monotone version of the control plane's canonical view (raised by
    /// every announcement: join, leave, re-admission, retirement).
    pub fn ring_epoch(&self) -> u64 {
        self.view.version()
    }

    /// Digest of the control plane's canonical view — the value every
    /// process's [`StoreNode::view_digest`] converges to.
    pub fn view_digest(&self) -> u64 {
        self.view.digest()
    }

    /// The control plane's canonical mergeable view.
    pub fn view(&self) -> &RingView<ReplicaId> {
        &self.view
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients
    }

    /// Marks `replica` down (or up) in every node's failure-detector view
    /// — a global, instantaneous detector, keeping experiments
    /// deterministic.
    pub fn set_replica_status(&mut self, replica: ReplicaId, up: bool) {
        for i in 0..(self.server_slots + self.clients) {
            match self.sim.process_mut(i) {
                StoreProc::Server(s) => s.set_peer_status(replica, up),
                StoreProc::Client(c) => c.set_peer_status(replica, up),
            }
        }
    }

    /// Force-merges the control plane's canonical view into every
    /// process. With gossip dissemination and in-band re-admission this
    /// is a **safety valve**, not part of any membership change's path:
    /// it runs only when [`ClusterConfig::force_view_sync`] is set.
    fn sync_all_views(&mut self) {
        let view = self.view.clone();
        for i in 0..(self.server_slots + self.clients) {
            match self.sim.process_mut(i) {
                StoreProc::Server(s) => s.force_view(&view),
                StoreProc::Client(c) => {
                    c.force_view(&view);
                }
            }
        }
    }

    /// Debug assertion that gossip alone already converged every member
    /// server's ring view — what `sync_all_views` used to force. Called
    /// on the happy path of a settled membership change.
    fn debug_assert_views_converged(&self) {
        for &i in &self.members {
            if self.crashed.contains(&i) {
                continue; // a crashed member cannot gossip
            }
            debug_assert_eq!(
                self.server_node(i).view_digest(),
                self.view.digest(),
                "server {i} did not converge to the current ring view via gossip"
            );
        }
    }

    fn server_node(&self, slot: usize) -> &StoreNode<M> {
        match self.sim.process(slot) {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => panic!("node {slot} is a client"),
        }
    }

    /// Runs the simulation in slices until `settled` holds for the
    /// cluster or `budget` of virtual time elapses. Returns whether the
    /// predicate was met.
    fn run_until_settled(&mut self, budget: Duration, settled: impl Fn(&Self) -> bool) -> bool {
        let deadline = self.sim.now() + budget;
        loop {
            if settled(self) {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let next = self.sim.now() + Duration::from_millis(5);
            self.sim.run_until(next.min(deadline));
        }
    }

    /// Announces a **live join** of the spare server slot `slot` without
    /// waiting for it to settle: the control plane mints a fresh
    /// `Joining` incarnation for the slot in its canonical view and
    /// posts the announcement to the joiner — and to the joiner *only*.
    /// Every other process learns the merged view by gossip; owners that
    /// merge it stream the ranges the joiner gained
    /// ([`Msg::RangeTransfer`]). Any number of changes may be begun
    /// before [`Cluster::await_membership`] supervises them — concurrent
    /// announcements merge.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a dormant spare slot (a member, or a
    /// leaver still mid-drain — cancel a drain by letting
    /// [`Cluster::await_membership`] time out into the in-band
    /// re-admission path instead).
    pub fn begin_join(&mut self, slot: usize) {
        assert!(slot < self.server_slots, "slot {slot} is not a server");
        assert!(!self.members.contains(&slot), "slot {slot} already joined");
        assert!(
            !self.pending_leaves.contains(&slot),
            "slot {slot} is mid-drain; await the leave before rejoining it"
        );
        let who = ReplicaId(slot as u32);
        self.members.insert(slot);
        self.pending_joins.insert(slot);
        self.view.bump(&who, MemberStatus::Joining);
        let view = self.view.clone();
        self.sim.post(
            NodeId(slot as u32),
            Msg::JoinAnnounce {
                view,
                who,
                joining: true,
            },
        );
    }

    /// Announces a **live leave** of member `slot` without waiting for
    /// the drain: the control plane mints a fresh `Leaving` incarnation
    /// for the slot and posts the announcement to the leaver only. The
    /// leaver merges the view, finds itself out of the ring, and starts
    /// draining every held key range to its successors; gossip spreads
    /// the view meanwhile. Supervision, retirement and the timed-out
    /// recovery live in [`Cluster::await_membership`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a member, or if removing it would leave
    /// fewer members than the replication factor (counting any other
    /// leave already begun).
    pub fn begin_leave(&mut self, slot: usize) {
        assert!(self.members.contains(&slot), "slot {slot} is not a member");
        assert!(
            self.members.len() > self.store_n,
            "removal would leave fewer members than the replication factor"
        );
        let who = ReplicaId(slot as u32);
        self.members.remove(&slot);
        self.pending_leaves.insert(slot);
        self.view.bump(&who, MemberStatus::Leaving);
        let view = self.view.clone();
        self.sim.post(
            NodeId(slot as u32),
            Msg::JoinAnnounce {
                view,
                who,
                joining: false,
            },
        );
    }

    /// Supervises every membership change begun so far to completion:
    /// runs the simulation until all announced views converged (by
    /// digest), every member's transfer backlog drained, and every
    /// leaver's drain completed — or the settle budget elapses.
    ///
    /// On success, drained leavers are retired (store cleared, entry
    /// tombstoned `Removed`) and settled joiners promoted to `Up`; the
    /// final statuses are seeded at one member and gossip spreads them,
    /// with supervision waiting for that last wave too. A leave whose
    /// drain did **not** complete is re-admitted *in band*: the control
    /// plane mints a fresh `Up` incarnation and posts [`Msg::Rejoin`] to
    /// the subject, whose gossip spreads the re-admission once
    /// connectivity allows — there is no forced view synchronisation
    /// (unless [`ClusterConfig::force_view_sync`] opts in).
    ///
    /// Returns whether everything settled and converged within budget.
    pub fn await_membership(&mut self) -> bool {
        let target = self.view.digest();
        let settled = self.run_until_settled(self.settle_budget, |c| {
            // crashed slots are excluded: they can neither drain nor
            // converge until restarted
            c.pending_leaves
                .iter()
                .filter(|s| !c.crashed.contains(s))
                .all(|&s| c.server_node(s).drain_complete())
                && c.members
                    .iter()
                    .filter(|i| !c.crashed.contains(i))
                    .all(|&i| {
                        let s = c.server_node(i);
                        s.view_digest() == target && s.transfer_backlog() == 0
                    })
        });
        let leaves: Vec<usize> = std::mem::take(&mut self.pending_leaves)
            .into_iter()
            .collect();
        let mut all_ok = settled;
        let mut final_wave = false;
        for slot in leaves {
            if self.crashed.contains(&slot) {
                // a crashed leaver can neither drain nor be re-admitted
                // until it restarts; keep the leave pending
                self.pending_leaves.insert(slot);
                all_ok = false;
                continue;
            }
            if self.server_node(slot).drain_complete() {
                // fully drained: retire the node and tombstone its entry
                // so the departure survives every future merge
                if let StoreProc::Server(s) = self.sim.process_mut(slot) {
                    s.finish_leave();
                }
                self.view
                    .bump(&ReplicaId(slot as u32), MemberStatus::Removed);
                final_wave = true;
            } else {
                // Drain timed out (typically a partition): re-admit the
                // leaver in band under a fresh incarnation. The `Up`
                // entry beats the stale `Leaving` one wherever it
                // arrives, so gossip alone re-converges the cluster once
                // connectivity allows — no forced view sync.
                self.members.insert(slot);
                self.view.bump(&ReplicaId(slot as u32), MemberStatus::Up);
                let view = self.view.clone();
                self.sim.post(NodeId(slot as u32), Msg::Rejoin { view });
                // deliver the announcement before returning, so the
                // subject is observably re-admitted (it keeps serving and
                // gossiping the fresh incarnation from here on)
                let next = self.sim.now() + Duration::from_millis(1);
                self.sim.run_until(next);
                all_ok = false;
            }
        }
        if settled {
            for slot in std::mem::take(&mut self.pending_joins) {
                // a join that went unsettled in an earlier await may have
                // been removed again since: its slot is no longer a
                // member, and promoting the stale entry would resurrect
                // a retired node into every ring view
                if !self.members.contains(&slot) {
                    continue;
                }
                self.view.bump(&ReplicaId(slot as u32), MemberStatus::Up);
                final_wave = true;
            }
        }
        // An unsettled join stays pending: the joiner keeps serving under
        // its `Joining` entry (in-ring, routable), and the next
        // `await_membership` that settles promotes it to `Up` — it is
        // never stranded in the transitional status with no path out.
        if final_wave {
            // seed the final statuses (Removed tombstones, Up
            // promotions) at one member; gossip spreads them
            let seed = *self.members.iter().next().expect("at least one member");
            let view = self.view.clone();
            self.sim.post(NodeId(seed as u32), Msg::RingEpoch { view });
            if all_ok {
                let target = self.view.digest();
                let converged = self.run_until_settled(self.settle_budget, |c| {
                    c.members
                        .iter()
                        .filter(|i| !c.crashed.contains(i))
                        .all(|&i| c.server_node(i).view_digest() == target)
                });
                all_ok = converged;
            }
        }
        if self.force_view_sync {
            self.sync_all_views();
        } else if all_ok {
            self.debug_assert_views_converged();
        }
        all_ok
    }

    /// Crashes server `slot` **with its disk**: the hosted node is
    /// dropped on the spot — taking with it every in-memory structure
    /// *and* whatever its storage engine had buffered past the last
    /// group sync, exactly like a real power cut — an inert husk holds
    /// the slot, every network link to it is severed, and the global
    /// failure detector marks it down. The slot stays a ring member
    /// (crash ≠ leave): its entry ages in peers' views until
    /// [`Cluster::restart_node`] brings it back.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a member or mid-drain leaver, or is
    /// already crashed.
    pub fn crash_node(&mut self, slot: usize) {
        assert!(
            self.members.contains(&slot) || self.pending_leaves.contains(&slot),
            "slot {slot} is not a serving member"
        );
        assert!(self.crashed.insert(slot), "slot {slot} is already crashed");
        let who = ReplicaId(slot as u32);
        // Dropping the node drops its engine with the un-synced tail
        // still in user space: that tail is genuinely lost. The husk is
        // dormant and fully disconnected — it can neither serve nor
        // gossip.
        let husk = StoreNode::dormant(
            who,
            self.mech.clone(),
            self.store_config,
            self.genesis_view.clone(),
        );
        *self.sim.process_mut(slot) = StoreProc::Server(husk);
        for other in 0..(self.server_slots + self.clients) {
            if other != slot {
                let net = self.sim.network_mut();
                net.block_link(NodeId(slot as u32), NodeId(other as u32));
                net.block_link(NodeId(other as u32), NodeId(slot as u32));
            }
        }
        self.set_replica_status(who, false);
    }

    /// Restarts a crashed server from its disk: rebuilds the node from
    /// the cluster's engine factory — a log-backed engine replays its
    /// durable record prefix on open — restores connectivity, and
    /// re-enters the fleet **in band**: the control plane mints a fresh
    /// `Up` incarnation and posts [`Msg::Rejoin`], which re-arms the
    /// recovered node's periodic timers and lets gossip spread the
    /// re-admission. No harness view synchronisation. Without an engine
    /// factory the node restarts empty (diskless baseline).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not crashed.
    pub fn restart_node(&mut self, slot: usize) {
        assert!(self.crashed.remove(&slot), "slot {slot} is not crashed");
        let who = ReplicaId(slot as u32);
        let engine: Box<dyn StorageEngine<M::State>> = match &self.engine_factory {
            Some(f) => f.build(slot),
            None => Box::new(MemEngine::new()),
        };
        let node = StoreNode::with_engine(
            who,
            self.mech.clone(),
            self.store_config,
            self.genesis_view.clone(),
            engine,
        );
        *self.sim.process_mut(slot) = StoreProc::Server(node);
        for other in 0..(self.server_slots + self.clients) {
            if other != slot {
                let net = self.sim.network_mut();
                net.unblock_link(NodeId(slot as u32), NodeId(other as u32));
                net.unblock_link(NodeId(other as u32), NodeId(slot as u32));
            }
        }
        self.set_replica_status(who, true);
        // The crash aborted any membership flow the node was mid-way
        // through; the fresh `Up` incarnation supersedes it.
        self.pending_joins.remove(&slot);
        self.pending_leaves.remove(&slot);
        self.members.insert(slot);
        self.view.bump(&who, MemberStatus::Up);
        let view = self.view.clone();
        self.sim.post(NodeId(slot as u32), Msg::Rejoin { view });
    }

    /// Server slots currently crashed.
    pub fn crashed_slots(&self) -> Vec<usize> {
        self.crashed.iter().copied().collect()
    }

    /// Forces server `slot`'s storage engine to sync its buffered
    /// writes — the graceful counterpart of [`Cluster::crash_node`]'s
    /// drop-without-sync (tests use it to pin down exactly which prefix
    /// a recovery must replay).
    pub fn sync_server_storage(&mut self, slot: usize) {
        match self.sim.process_mut(slot) {
            StoreProc::Server(s) => s.sync_storage(),
            StoreProc::Client(_) => panic!("node {slot} is a client"),
        }
    }

    /// Adds the spare server slot `slot` to the ring **live** and
    /// supervises the change to completion: [`Cluster::begin_join`]
    /// followed by [`Cluster::await_membership`]. The workload may keep
    /// running throughout.
    ///
    /// Returns whether every member merged the new view and the transfer
    /// protocol settled within the supervision budget. An unsettled join
    /// (e.g. a member partitioned away from every gossip path) is left
    /// to converge in the background — gossip keeps running.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a dormant spare slot.
    pub fn add_node_live(&mut self, slot: usize) -> bool {
        self.begin_join(slot);
        self.await_membership()
    }

    /// Removes member `slot` from the ring **live** and supervises the
    /// drain to completion: [`Cluster::begin_leave`] followed by
    /// [`Cluster::await_membership`]. The leaver streams every held key
    /// range to its successors and only retires (clearing its store)
    /// once every batch is acknowledged, so no acknowledged write can be
    /// lost to the departure.
    ///
    /// Returns whether the drain completed within the supervision budget
    /// (the node is retired if it did, and re-admitted in band via
    /// [`Msg::Rejoin`] if it did not).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a member, or if removing it would leave
    /// fewer members than the replication factor.
    pub fn remove_node_live(&mut self, slot: usize) -> bool {
        self.begin_leave(slot);
        self.await_membership() && !self.members.contains(&slot)
    }

    /// Applies every scheduled [`FaultPhase`] whose instant has been
    /// reached, in order.
    fn apply_due_fault_phases(&mut self) {
        while let Some(p) = self.fault_schedule.get(self.fault_phase_next) {
            if SimTime::ZERO + p.at > self.sim.now() {
                return;
            }
            self.sim.network_mut().set_faults(p.faults);
            self.fault_phase_next += 1;
        }
    }

    /// The instant of the next not-yet-applied fault phase, if any —
    /// run loops stop there so a phase lands exactly on time.
    fn next_fault_boundary(&self) -> Option<SimTime> {
        self.fault_schedule
            .get(self.fault_phase_next)
            .map(|p| SimTime::ZERO + p.at)
    }

    /// Runs until every client finishes its session (or the deadline).
    /// Returns whether all clients finished.
    pub fn run(&mut self) -> bool {
        loop {
            self.apply_due_fault_phases();
            let all_done = (0..self.clients).all(|j| self.client(j).is_done());
            if all_done {
                return true;
            }
            if self.sim.now() >= self.deadline {
                return false;
            }
            let mut next = self.sim.now() + Duration::from_millis(100);
            if let Some(b) = self.next_fault_boundary() {
                next = next.min(b);
            }
            self.sim.run_until(next.min(self.deadline));
        }
    }

    /// Runs the simulation for `span` of virtual time (e.g. to let AAE
    /// converge replicas through the protocol itself), honouring the
    /// fault schedule.
    pub fn run_for(&mut self, span: Duration) {
        let target = self.sim.now() + span;
        loop {
            self.apply_due_fault_phases();
            let next = match self.next_fault_boundary() {
                Some(b) if b < target => b,
                _ => target,
            };
            self.sim.run_until(next);
            if self.sim.now() >= target {
                self.apply_due_fault_phases();
                return;
            }
        }
    }

    /// Deterministically merges every key across all servers until a
    /// fixpoint — the "infinite anti-entropy" end state the audits are
    /// defined against. Bypasses the network (test-harness operation).
    /// (Generic implementation: [`FleetHarness::converge`].)
    pub fn converge(&mut self) {
        FleetHarness::converge(self);
    }

    /// Builds the ground-truth oracle from all client logs.
    /// (Generic implementation: [`FleetHarness::oracle`].)
    pub fn oracle(&self) -> Oracle {
        FleetHarness::oracle(self)
    }

    /// The surviving write ids for `key` at server `i` (tombstones
    /// included — they are writes).
    /// (Generic implementation: [`FleetHarness::surviving_at`].)
    pub fn surviving_at(&self, i: usize, key: &[u8]) -> BTreeSet<WriteId> {
        FleetHarness::surviving_at(self, i, key)
    }

    /// The application-visible (non-tombstone) values for `key` at
    /// server `i`.
    pub fn live_values_at(&self, i: usize, key: &[u8]) -> Vec<StampedValue> {
        let s = self.server(i);
        match s.data().get(key) {
            None => Vec::new(),
            Some(st) => {
                let (values, _) = self.mech.read(st);
                values.into_iter().filter(StampedValue::is_live).collect()
            }
        }
    }

    /// Reclaims fully-deleted keys on every server. Call only after
    /// [`Cluster::converge`]: premature collection would let anti-entropy
    /// resurrect deleted data. Returns keys reclaimed per server.
    pub fn collect_garbage(&mut self) -> Vec<usize> {
        self.member_slots()
            .into_iter()
            .map(|i| match self.sim.process_mut(i) {
                StoreProc::Server(s) => s.collect_garbage(),
                StoreProc::Client(_) => 0,
            })
            .collect()
    }

    /// Audits the converged store against the oracle. Call after
    /// [`Cluster::run`] + [`Cluster::converge`].
    /// (Generic implementation: [`FleetHarness::anomaly_report`].)
    pub fn anomaly_report(&self) -> AnomalyReport {
        FleetHarness::anomaly_report(self)
    }

    /// The union of surviving write ids for `key` across every current
    /// member — what the cluster as a whole still holds. Auditing this
    /// union against the oracle *before* convergence is the strongest
    /// no-loss check across membership changes: a write absent from the
    /// union is gone for good, since convergence can only merge what some
    /// member still has.
    pub fn surviving_union(&self, key: &[u8]) -> BTreeSet<WriteId> {
        let mut union = BTreeSet::new();
        for i in self.member_slots() {
            union.extend(self.surviving_at(i, key));
        }
        union
    }

    /// The residual-copy audit: every `(member slot, key)` pair where a
    /// member holds a key outside the key's current preference list.
    /// After a quiescent period (transfers acknowledged, hints handed
    /// off, no client traffic in flight) this must be empty — residual
    /// copies are either retired on transfer/handoff ack or carry a hint
    /// obligation that will retire them.
    /// (Generic implementation: [`FleetHarness::residual_copies`].)
    pub fn residual_copies(&self) -> Vec<(usize, Key)> {
        FleetHarness::residual_copies(self)
    }

    /// Aggregates all clients' latency statistics.
    /// (Generic implementation: [`FleetHarness::latency_report`].)
    pub fn latency_report(&self) -> LatencyReport {
        FleetHarness::latency_report(self)
    }

    /// Sums every node's per-class wire counters — servers (dormant
    /// spares included, since a retired leaver keeps gossiping) and
    /// clients. The cluster-wide bytes-on-the-wire ledger the wire
    /// bench reports from.
    /// (Generic implementation: [`FleetHarness::wire_report`].)
    pub fn wire_report(&self) -> WireStats {
        FleetHarness::wire_report(self)
    }

    /// Measures causal metadata across the (ideally converged) store.
    pub fn metadata_report(&self) -> MetadataReport {
        let mut out = MetadataReport::default();
        let mut key_instances = 0usize;
        for i in self.member_slots() {
            let s = self.server(i);
            for st in s.data().values() {
                let bytes = self.mech.metadata_size(st);
                let siblings = self.mech.sibling_count(st);
                out.total_bytes += bytes;
                out.max_bytes_per_key = out.max_bytes_per_key.max(bytes);
                out.max_siblings = out.max_siblings.max(siblings);
                out.mean_siblings += siblings as f64;
                key_instances += 1;
            }
        }
        if key_instances > 0 {
            out.mean_bytes_per_key = out.total_bytes as f64 / key_instances as f64;
            out.mean_siblings /= key_instances as f64;
        }
        out
    }
}

impl<M: Mechanism<StampedValue>> FleetHarness<M> for Cluster<M> {
    fn mechanism(&self) -> &M {
        &self.mech
    }

    fn member_servers(&self) -> Vec<usize> {
        self.member_slots()
    }

    /// All server slots, dormant spares included — a retired leaver
    /// keeps gossiping, so its ledger still counts.
    fn ledger_servers(&self) -> Vec<usize> {
        (0..self.server_slots).collect()
    }

    fn client_count(&self) -> usize {
        self.clients
    }

    fn server_ref(&self, i: usize) -> &StoreNode<M> {
        self.server(i)
    }

    fn server_mut_ref(&mut self, i: usize) -> &mut StoreNode<M> {
        match self.sim.process_mut(i) {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => panic!("node {i} is a client"),
        }
    }

    fn client_ref(&self, j: usize) -> &ClientNode<M> {
        self.client(j)
    }

    fn audit_view(&self) -> &RingView<ReplicaId> {
        &self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvv::mechanisms::DvvMechanism;

    fn small() -> ClusterConfig {
        ClusterConfig {
            servers: 3,
            clients: 3,
            cycles_per_client: 5,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn cluster_runs_to_completion() {
        let mut c = Cluster::new(1, DvvMechanism, small());
        assert!(c.run(), "all clients finish");
        assert!(c.sim().now() > SimTime::ZERO);
        for j in 0..3 {
            assert_eq!(c.client(j).cycles_done(), 5);
        }
    }

    #[test]
    fn dvv_cluster_is_anomaly_free() {
        let mut c = Cluster::new(2, DvvMechanism, small());
        assert!(c.run());
        c.converge();
        let report = c.anomaly_report();
        assert_eq!(report.total_writes, 15);
        assert!(report.is_clean(), "{report:?}");
        assert!(
            report.surviving_values >= report.keys,
            "at least one value per key"
        );
    }

    #[test]
    fn converge_is_idempotent_and_equalizes_servers() {
        let mut c = Cluster::new(3, DvvMechanism, small());
        c.run();
        c.converge();
        for key in c.oracle().keys() {
            let s0 = c.surviving_at(0, &key);
            for i in 1..c.server_count() {
                assert_eq!(s0, c.surviving_at(i, &key), "server {i} differs");
            }
        }
    }

    #[test]
    fn latency_and_metadata_reports_have_data() {
        let mut c = Cluster::new(4, DvvMechanism, small());
        c.run();
        c.converge();
        let lat = c.latency_report();
        assert!(lat.get.count() > 0);
        assert!(lat.put.count() > 0);
        assert!(lat.get.mean() > 0.0);
        let meta = c.metadata_report();
        assert!(meta.total_bytes > 0);
        assert!(meta.mean_siblings >= 1.0 - 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut c = Cluster::new(seed, DvvMechanism, small());
            c.run();
            c.converge();
            (
                c.sim().now(),
                c.anomaly_report(),
                c.sim().network().stats().delivered,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, 0);
    }

    #[test]
    #[should_panic(expected = "replication factor exceeds")]
    fn n_larger_than_servers_rejected() {
        let cfg = ClusterConfig {
            servers: 2,
            ..ClusterConfig::default()
        };
        let _ = Cluster::new(0, DvvMechanism, cfg);
    }
}
