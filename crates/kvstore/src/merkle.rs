//! A Merkle summary of a replica's keyspace, used by anti-entropy to
//! detect divergence cheaply before exchanging any state.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::value::Key;

/// Hashes any `Hash` state deterministically (fixed-key SipHash).
#[must_use]
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Mixes one `(key, leaf)` pair into the 64-bit contribution it XORs into
/// a summary's root. XOR-combining per-leaf mixes makes the root
/// maintainable in O(1) per mutation *and* independent of how the
/// keyspace is partitioned: the root of a union of disjoint summaries is
/// the XOR of their roots, which is what lets ownership-partitioned AAE
/// assemble a shared root from per-arc roots without touching any leaf.
fn leaf_mix(key: &[u8], leaf_hash: u64) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    leaf_hash.hash(&mut h);
    h.finish()
}

/// A two-level Merkle summary: per-key leaf hashes combined into a root.
///
/// Anti-entropy first exchanges roots (8 bytes); only on mismatch are the
/// leaf hashes exchanged (12–40 bytes per key), and only for keys whose
/// leaves differ is actual state shipped. This mirrors Riak's AAE trees,
/// flattened to two levels — sufficient for the simulated scale while
/// keeping message sizes honest.
///
/// # Examples
///
/// ```
/// use kvstore::merkle::MerkleSummary;
/// let mut a = MerkleSummary::new();
/// a.set(b"k1".to_vec(), 11);
/// let mut b = a.clone();
/// assert_eq!(a.root(), b.root());
/// b.set(b"k2".to_vec(), 22);
/// assert_ne!(a.root(), b.root());
/// assert_eq!(a.diff(&b), vec![b"k2".to_vec()]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MerkleSummary {
    leaves: BTreeMap<Key, u64>,
    /// XOR of [`leaf_mix`] over all leaves, maintained incrementally —
    /// [`MerkleSummary::root`] is O(1) instead of re-hashing every leaf.
    /// The empty summary's root is 0.
    root: u64,
}

impl MerkleSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        MerkleSummary::default()
    }

    /// Sets the leaf hash for `key`.
    pub fn set(&mut self, key: Key, leaf_hash: u64) {
        if let Some(old) = self.leaves.get_mut(&key) {
            if *old != leaf_hash {
                self.root ^= leaf_mix(&key, *old) ^ leaf_mix(&key, leaf_hash);
                *old = leaf_hash;
            }
            return;
        }
        self.root ^= leaf_mix(&key, leaf_hash);
        self.leaves.insert(key, leaf_hash);
    }

    /// [`MerkleSummary::set`] from a borrowed key: allocates only when
    /// the key is new to the summary (the per-write hot path overwrites
    /// an existing leaf far more often than it inserts one).
    pub fn set_ref(&mut self, key: &[u8], leaf_hash: u64) {
        if let Some(old) = self.leaves.get_mut(key) {
            if *old != leaf_hash {
                self.root ^= leaf_mix(key, *old) ^ leaf_mix(key, leaf_hash);
                *old = leaf_hash;
            }
            return;
        }
        self.root ^= leaf_mix(key, leaf_hash);
        self.leaves.insert(key.to_vec(), leaf_hash);
    }

    /// Removes a key's leaf.
    pub fn remove(&mut self, key: &[u8]) {
        if let Some(old) = self.leaves.remove(key) {
            self.root ^= leaf_mix(key, old);
        }
    }

    /// Copies every leaf of `other` into this summary — used to assemble
    /// one summary from disjoint per-arc summaries when a leaf exchange
    /// is actually needed (roots alone combine by XOR, see [`leaf_mix`]).
    pub fn extend_from(&mut self, other: &MerkleSummary) {
        for (k, v) in &other.leaves {
            self.set(k.clone(), *v);
        }
    }

    /// The root hash over all leaves: XOR of per-leaf mixes, so it is
    /// order- and partition-independent and maintained incrementally by
    /// [`MerkleSummary::set`] / [`MerkleSummary::remove`] — reading it
    /// costs O(1).
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of keys summarised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether no keys are summarised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The `(key, leaf)` pairs in key order.
    #[must_use]
    pub fn leaves(&self) -> Vec<(Key, u64)> {
        self.leaves.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Keys whose leaf differs from or is missing relative to `other` —
    /// i.e. keys where *other* has data we lack or disagree with.
    #[must_use]
    pub fn diff(&self, other: &MerkleSummary) -> Vec<Key> {
        let mut out = Vec::new();
        for (k, theirs) in &other.leaves {
            if self.leaves.get(k) != Some(theirs) {
                out.push(k.clone());
            }
        }
        out
    }

    /// Wire size of a leaf exchange: 8 bytes of hash plus the key bytes
    /// and a small length prefix per key.
    #[must_use]
    pub fn leaves_wire_size(&self) -> usize {
        self.leaves.keys().map(|k| k.len() + 10).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_reflects_content() {
        let mut a = MerkleSummary::new();
        assert!(a.is_empty());
        let empty_root = a.root();
        a.set(b"x".to_vec(), 1);
        assert_ne!(a.root(), empty_root);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn identical_summaries_share_root() {
        let mut a = MerkleSummary::new();
        let mut b = MerkleSummary::new();
        for i in 0..10u8 {
            a.set(vec![i], u64::from(i) * 7);
            b.set(vec![i], u64::from(i) * 7);
        }
        assert_eq!(a.root(), b.root());
        assert!(a.diff(&b).is_empty());
    }

    #[test]
    fn diff_is_directional() {
        let mut a = MerkleSummary::new();
        a.set(b"both".to_vec(), 1);
        a.set(b"only-a".to_vec(), 2);
        let mut b = MerkleSummary::new();
        b.set(b"both".to_vec(), 1);
        b.set(b"only-b".to_vec(), 3);
        assert_eq!(a.diff(&b), vec![b"only-b".to_vec()]);
        assert_eq!(b.diff(&a), vec![b"only-a".to_vec()]);
    }

    #[test]
    fn diff_detects_divergent_values() {
        let mut a = MerkleSummary::new();
        a.set(b"k".to_vec(), 1);
        let mut b = MerkleSummary::new();
        b.set(b"k".to_vec(), 2);
        assert_eq!(a.diff(&b), vec![b"k".to_vec()]);
    }

    #[test]
    fn remove_restores_agreement() {
        let mut a = MerkleSummary::new();
        let mut b = a.clone();
        b.set(b"extra".to_vec(), 9);
        assert_ne!(a.root(), b.root());
        b.remove(b"extra");
        assert_eq!(a.root(), b.root());
        a.remove(b"never-there"); // no-op
    }

    /// From-scratch root: rebuilds a fresh summary with the same leaves —
    /// the oracle the incrementally maintained root must match.
    fn rebuilt_root(s: &MerkleSummary) -> u64 {
        let mut fresh = MerkleSummary::new();
        for (k, v) in s.leaves() {
            fresh.set(k, v);
        }
        fresh.root()
    }

    #[test]
    fn incremental_root_survives_interleaved_sets_and_removes() {
        let mut s = MerkleSummary::new();
        assert_eq!(s.root(), 0, "empty summary has the zero root");
        // interleave sets, overwrites, no-op overwrites, removes, and
        // removes of absent keys; read the root between every step
        let steps: Vec<(bool, u8, u64)> = vec![
            (true, 1, 10),
            (true, 2, 20),
            (true, 1, 11), // overwrite
            (false, 3, 0), // remove absent: no-op
            (true, 3, 30),
            (true, 2, 20), // re-set to a value it once had
            (false, 1, 0),
            (true, 1, 12),
            (true, 1, 12), // no-op overwrite
            (false, 2, 0),
            (false, 2, 0), // double remove
        ];
        for (set, k, v) in steps {
            if set {
                s.set(vec![k], v);
            } else {
                s.remove(&[k]);
            }
            assert_eq!(s.root(), rebuilt_root(&s), "cache diverged after step");
        }
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let mut fwd = MerkleSummary::new();
        let mut rev = MerkleSummary::new();
        for i in 0..20u8 {
            fwd.set(vec![i], u64::from(i) * 3 + 1);
        }
        for i in (0..20u8).rev() {
            rev.set(vec![i], u64::from(i) * 3 + 1);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.root(), rev.root());
    }

    #[test]
    fn disjoint_roots_combine_by_xor() {
        // the property ownership-partitioned AAE relies on: the root of a
        // union of disjoint summaries is the XOR of their roots
        let mut a = MerkleSummary::new();
        a.set(b"a1".to_vec(), 1);
        a.set(b"a2".to_vec(), 2);
        let mut b = MerkleSummary::new();
        b.set(b"b1".to_vec(), 3);
        let mut union = a.clone();
        union.extend_from(&b);
        assert_eq!(union.root(), a.root() ^ b.root());
        assert_eq!(union.len(), 3);
        // extend_from an empty summary is a no-op
        let before = union.root();
        union.extend_from(&MerkleSummary::new());
        assert_eq!(union.root(), before);
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        assert_eq!(fingerprint(&42u64), fingerprint(&42u64));
        assert_ne!(fingerprint(&42u64), fingerprint(&43u64));
        assert_eq!(fingerprint(&vec![1u8, 2]), fingerprint(&vec![1u8, 2]));
    }

    #[test]
    fn leaves_wire_size_scales_with_keys() {
        let mut a = MerkleSummary::new();
        a.set(b"abc".to_vec(), 1);
        let one = a.leaves_wire_size();
        a.set(b"defg".to_vec(), 2);
        assert!(a.leaves_wire_size() > one);
    }
}
