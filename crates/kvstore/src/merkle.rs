//! A Merkle summary of a replica's keyspace, used by anti-entropy to
//! detect divergence cheaply before exchanging any state.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::value::Key;

/// Hashes any `Hash` state deterministically (fixed-key SipHash).
#[must_use]
pub fn fingerprint<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// A two-level Merkle summary: per-key leaf hashes combined into a root.
///
/// Anti-entropy first exchanges roots (8 bytes); only on mismatch are the
/// leaf hashes exchanged (12–40 bytes per key), and only for keys whose
/// leaves differ is actual state shipped. This mirrors Riak's AAE trees,
/// flattened to two levels — sufficient for the simulated scale while
/// keeping message sizes honest.
///
/// # Examples
///
/// ```
/// use kvstore::merkle::MerkleSummary;
/// let mut a = MerkleSummary::new();
/// a.set(b"k1".to_vec(), 11);
/// let mut b = a.clone();
/// assert_eq!(a.root(), b.root());
/// b.set(b"k2".to_vec(), 22);
/// assert_ne!(a.root(), b.root());
/// assert_eq!(a.diff(&b), vec![b"k2".to_vec()]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MerkleSummary {
    leaves: BTreeMap<Key, u64>,
}

impl MerkleSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        MerkleSummary {
            leaves: BTreeMap::new(),
        }
    }

    /// Sets the leaf hash for `key`.
    pub fn set(&mut self, key: Key, leaf_hash: u64) {
        self.leaves.insert(key, leaf_hash);
    }

    /// Removes a key's leaf.
    pub fn remove(&mut self, key: &[u8]) {
        self.leaves.remove(key);
    }

    /// The root hash over all leaves (order-independent by construction:
    /// leaves are combined in key order from the sorted map).
    #[must_use]
    pub fn root(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (k, v) in &self.leaves {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Number of keys summarised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether no keys are summarised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The `(key, leaf)` pairs in key order.
    #[must_use]
    pub fn leaves(&self) -> Vec<(Key, u64)> {
        self.leaves.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Keys whose leaf differs from or is missing relative to `other` —
    /// i.e. keys where *other* has data we lack or disagree with.
    #[must_use]
    pub fn diff(&self, other: &MerkleSummary) -> Vec<Key> {
        let mut out = Vec::new();
        for (k, theirs) in &other.leaves {
            if self.leaves.get(k) != Some(theirs) {
                out.push(k.clone());
            }
        }
        out
    }

    /// Wire size of a leaf exchange: 8 bytes of hash plus the key bytes
    /// and a small length prefix per key.
    #[must_use]
    pub fn leaves_wire_size(&self) -> usize {
        self.leaves.keys().map(|k| k.len() + 10).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_reflects_content() {
        let mut a = MerkleSummary::new();
        assert!(a.is_empty());
        let empty_root = a.root();
        a.set(b"x".to_vec(), 1);
        assert_ne!(a.root(), empty_root);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn identical_summaries_share_root() {
        let mut a = MerkleSummary::new();
        let mut b = MerkleSummary::new();
        for i in 0..10u8 {
            a.set(vec![i], u64::from(i) * 7);
            b.set(vec![i], u64::from(i) * 7);
        }
        assert_eq!(a.root(), b.root());
        assert!(a.diff(&b).is_empty());
    }

    #[test]
    fn diff_is_directional() {
        let mut a = MerkleSummary::new();
        a.set(b"both".to_vec(), 1);
        a.set(b"only-a".to_vec(), 2);
        let mut b = MerkleSummary::new();
        b.set(b"both".to_vec(), 1);
        b.set(b"only-b".to_vec(), 3);
        assert_eq!(a.diff(&b), vec![b"only-b".to_vec()]);
        assert_eq!(b.diff(&a), vec![b"only-a".to_vec()]);
    }

    #[test]
    fn diff_detects_divergent_values() {
        let mut a = MerkleSummary::new();
        a.set(b"k".to_vec(), 1);
        let mut b = MerkleSummary::new();
        b.set(b"k".to_vec(), 2);
        assert_eq!(a.diff(&b), vec![b"k".to_vec()]);
    }

    #[test]
    fn remove_restores_agreement() {
        let mut a = MerkleSummary::new();
        let mut b = a.clone();
        b.set(b"extra".to_vec(), 9);
        assert_ne!(a.root(), b.root());
        b.remove(b"extra");
        assert_eq!(a.root(), b.root());
        a.remove(b"never-there"); // no-op
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        assert_eq!(fingerprint(&42u64), fingerprint(&42u64));
        assert_ne!(fingerprint(&42u64), fingerprint(&43u64));
        assert_eq!(fingerprint(&vec![1u8, 2]), fingerprint(&vec![1u8, 2]));
    }

    #[test]
    fn leaves_wire_size_scales_with_keys() {
        let mut a = MerkleSummary::new();
        a.set(b"abc".to_vec(), 1);
        let one = a.leaves_wire_size();
        a.set(b"defg".to_vec(), 2);
        assert!(a.leaves_wire_size() > one);
    }
}
