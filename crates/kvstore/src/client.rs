//! [`ClientNode`]: a closed-loop client session issuing read-modify-write
//! cycles, with timeouts, retries, and the observation log the oracle
//! needs.

use std::collections::BTreeMap;

use dvv::mechanisms::Mechanism;
use dvv::{ClientId, ReplicaId};
use ring::{HashRing, Membership, RingView};
use simnet::{NodeId, SimTime, TimerId};
use workloads::{Histogram, KeySpace, Popularity};

use crate::config::ClientConfig;
use crate::ctx::NodeCtx;
use crate::messages::{Msg, ReqId, WireStats};
use crate::value::{Key, StampedValue, WriteId};

/// One logged write: what the client wrote and what it had observed —
/// the raw material for ground-truth causality reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteLogEntry {
    /// Key written.
    pub key: Key,
    /// Identity of the write.
    pub id: WriteId,
    /// Writes whose values this client had observed (from its latest read
    /// of the key) when it issued this write.
    pub observed: Vec<WriteId>,
    /// Whether the store acknowledged the write.
    pub acked: bool,
}

/// Latency and outcome counters for one client.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// GET round-trip latencies (µs).
    pub get_latency: Histogram,
    /// PUT round-trip latencies (µs).
    pub put_latency: Histogram,
    /// Cycles abandoned after exhausting retries.
    pub failed_cycles: u64,
    /// Individual request retries.
    pub retries: u64,
}

#[derive(Debug)]
enum Kind<M: Mechanism<StampedValue>> {
    Get,
    Put {
        value: StampedValue,
        ctx: M::Context,
    },
}

#[derive(Debug)]
struct InFlight<M: Mechanism<StampedValue>> {
    req: ReqId,
    key: Key,
    kind: Kind<M>,
    sent_at: SimTime,
    retries: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientTimer {
    Think,
    Timeout(ReqId),
}

/// A closed-loop client process: `GET key → PUT key (with context) →
/// think → repeat`, over a Zipf-popular key space.
#[derive(Debug)]
pub struct ClientNode<M: Mechanism<StampedValue>> {
    client: ClientId,
    node_index: u32,
    mech: M,
    config: ClientConfig,
    replication: usize,
    header_bytes: usize,
    vnodes: u32,
    /// The mergeable membership state this client routes under.
    view: RingView<ReplicaId>,
    ring: HashRing<ReplicaId>,
    membership: Membership<ReplicaId>,
    keyspace: KeySpace,
    contexts: BTreeMap<Key, M::Context>,
    observed: BTreeMap<Key, Vec<WriteId>>,
    write_seq: u64,
    cycles_done: u32,
    next_req: u64,
    current: Option<InFlight<M>>,
    timers: BTreeMap<TimerId, ClientTimer>,
    /// Public write log for the oracle.
    write_log: Vec<WriteLogEntry>,
    stats: ClientStats,
    /// Per-class bytes/messages this client has put on the wire.
    wire: WireStats,
    done: bool,
}

impl<M: Mechanism<StampedValue>> ClientNode<M> {
    /// Creates a client. `node_index` is its simulation node id (servers
    /// occupy `0..server_count`); `replication` is the store's N; routing
    /// state (ring, failure-detector membership) derives from `view`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        client: ClientId,
        node_index: u32,
        mech: M,
        config: ClientConfig,
        replication: usize,
        header_bytes: usize,
        view: RingView<ReplicaId>,
        vnodes: u32,
    ) -> Self {
        let keyspace = KeySpace::new(
            "key",
            config.key_count,
            if config.zipf_alpha > 0.0 {
                Popularity::Zipf(config.zipf_alpha)
            } else {
                Popularity::Uniform
            },
        );
        let ring = view.to_ring(vnodes);
        let membership = Membership::new(view.members());
        ClientNode {
            client,
            node_index,
            mech,
            config,
            replication,
            header_bytes,
            vnodes,
            view,
            ring,
            membership,
            keyspace,
            contexts: BTreeMap::new(),
            observed: BTreeMap::new(),
            write_seq: 0,
            cycles_done: 0,
            next_req: 0,
            current: None,
            timers: BTreeMap::new(),
            write_log: Vec::new(),
            stats: ClientStats::default(),
            wire: WireStats::default(),
            done: false,
        }
    }

    /// Whether the session has completed all its cycles.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed cycles so far.
    pub fn cycles_done(&self) -> u32 {
        self.cycles_done
    }

    /// This session's client id.
    pub fn client_id(&self) -> ClientId {
        self.client
    }

    /// The causality mechanism this client runs (drivers clone it into
    /// their [`NodeCtx`] impls for message sizing).
    pub fn mech(&self) -> &M {
        &self.mech
    }

    /// Per-message header overhead in bytes.
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// The observation log for the oracle.
    pub fn write_log(&self) -> &[WriteLogEntry] {
        &self.write_log
    }

    /// Latency/outcome counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Per-class wire bytes/messages this client has sent.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// Marks a replica up/down in this client's routing view.
    pub fn set_peer_status(&mut self, peer: ReplicaId, up: bool) {
        if up {
            self.membership.mark_up(&peer);
        } else {
            self.membership.mark_down(&peer);
        }
    }

    /// Monotone version of this client's ring view.
    pub fn ring_epoch(&self) -> u64 {
        self.view.version()
    }

    /// Digest of this client's ring view (convergence check).
    pub fn view_digest(&self) -> u64 {
        self.view.digest()
    }

    /// Merges a learned ring view (from a [`Msg::RingEpoch`] push or the
    /// control plane's force-sync safety valve): on change, rebuilds the
    /// ring and reconciles the membership view, keeping failure-detector
    /// marks for known members. Returns `(changed, sender_lacks)` as
    /// reported by [`RingView::absorb`].
    pub fn force_view(&mut self, view: &RingView<ReplicaId>) -> (bool, bool) {
        let (changed, sender_lacks) = self.view.absorb(view);
        if changed {
            self.ring = self.view.to_ring(self.vnodes);
            self.membership.sync_members(&self.view.members());
        }
        (changed, sender_lacks)
    }

    fn fresh_req(&mut self) -> ReqId {
        self.next_req += 1;
        (u64::from(self.node_index) << 32) | self.next_req
    }

    /// Sends through the driver and records what *it* charged (see
    /// [`NodeCtx::send`] — the single source of truth for wire bytes).
    fn send(&mut self, ctx: &mut impl NodeCtx<M>, to: NodeId, msg: Msg<M>) {
        let class = msg.class();
        let bytes = ctx.send(to, msg);
        self.wire.record(class, bytes);
    }

    /// Cancels (advisorily) every pending timeout timer for `req` once
    /// its flight has concluded. On the simulator the fire still arrives
    /// and is ignored; on the threaded runtime the wheel entry is
    /// actually removed, saving a wakeup.
    fn cancel_timeout(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let stale: Vec<TimerId> = self
            .timers
            .iter()
            .filter(|(_, k)| **k == ClientTimer::Timeout(req))
            .map(|(t, _)| *t)
            .collect();
        for t in stale {
            self.timers.remove(&t);
            ctx.cancel_timer(t);
        }
    }

    fn pick_coordinator(&mut self, ctx: &mut impl NodeCtx<M>, key: &[u8]) -> Option<NodeId> {
        let (active, _) = self
            .membership
            .sloppy_preference_list(&self.ring, key, self.replication);
        if active.is_empty() {
            return None;
        }
        let pick = ctx.rng().range_u64(0, active.len() as u64) as usize;
        Some(NodeId(active[pick].0))
    }

    fn arm_timeout(&mut self, ctx: &mut impl NodeCtx<M>, req: ReqId) {
        let t = ctx.set_timer(self.config.request_timeout);
        self.timers.insert(t, ClientTimer::Timeout(req));
    }

    fn begin_cycle(&mut self, ctx: &mut impl NodeCtx<M>) {
        if self.cycles_done >= self.config.cycles {
            self.done = true;
            return;
        }
        let u = ctx.rng().unit_f64();
        let key = self.keyspace.sample_key(u);
        self.issue_get(ctx, key, 0);
    }

    fn issue_get(&mut self, ctx: &mut impl NodeCtx<M>, key: Key, retries: u32) {
        let req = self.fresh_req();
        let Some(coord) = self.pick_coordinator(ctx, &key) else {
            self.abandon_cycle(ctx);
            return;
        };
        self.current = Some(InFlight {
            req,
            key: key.clone(),
            kind: Kind::Get,
            sent_at: ctx.now(),
            retries,
        });
        let digest = self.view.digest();
        self.send(ctx, coord, Msg::ClientGet { req, key, digest });
        self.arm_timeout(ctx, req);
    }

    fn issue_put(
        &mut self,
        ctx: &mut impl NodeCtx<M>,
        key: Key,
        value: StampedValue,
        put_ctx: M::Context,
        retries: u32,
    ) {
        let req = self.fresh_req();
        let Some(coord) = self.pick_coordinator(ctx, &key) else {
            self.abandon_cycle(ctx);
            return;
        };
        self.current = Some(InFlight {
            req,
            key: key.clone(),
            kind: Kind::Put {
                value: value.clone(),
                ctx: put_ctx.clone(),
            },
            sent_at: ctx.now(),
            retries,
        });
        let digest = self.view.digest();
        self.send(
            ctx,
            coord,
            Msg::ClientPut {
                req,
                key,
                value,
                ctx: put_ctx,
                digest,
            },
        );
        self.arm_timeout(ctx, req);
    }

    fn abandon_cycle(&mut self, ctx: &mut impl NodeCtx<M>) {
        self.stats.failed_cycles += 1;
        self.current = None;
        self.cycles_done += 1; // the cycle is spent even though it failed
        self.think_then_continue(ctx);
    }

    fn think_then_continue(&mut self, ctx: &mut impl NodeCtx<M>) {
        if self.cycles_done >= self.config.cycles {
            self.done = true;
            return;
        }
        let t = ctx.set_timer(self.config.think_time);
        self.timers.insert(t, ClientTimer::Think);
    }

    fn record_observation(&mut self, key: &Key, values: &[StampedValue], read_ctx: M::Context) {
        // Session causality: contexts and observations *accumulate* — a
        // later quorum read may return less than an earlier one saw, and
        // replacing would regress the session (and could make this
        // client's next write falsely concurrent with its own past).
        match self.contexts.get_mut(key) {
            Some(existing) => self.mech.merge_contexts(existing, &read_ctx),
            None => {
                self.contexts.insert(key.clone(), read_ctx);
            }
        }
        let observed = self.observed.entry(key.clone()).or_default();
        for v in values {
            if !observed.contains(&v.id) {
                observed.push(v.id);
            }
        }
    }

    fn retry_or_abandon(&mut self, ctx: &mut impl NodeCtx<M>, flight: InFlight<M>) {
        if flight.retries >= self.config.max_retries {
            self.abandon_cycle(ctx);
            return;
        }
        self.stats.retries += 1;
        match flight.kind {
            Kind::Get => self.issue_get(ctx, flight.key, flight.retries + 1),
            Kind::Put {
                ctx: put_ctx,
                value,
            } => {
                // A retried PUT is a *new physical write*: the first
                // attempt may have been applied before its ack was lost,
                // in which case the two attempts are genuinely concurrent
                // versions (at-least-once delivery). Give the retry a
                // fresh identity and its own log entry so the oracle
                // models exactly that.
                let value = self.stamp_new_write(&flight.key, value.tombstone);
                self.issue_put(ctx, flight.key, value, put_ctx, flight.retries + 1)
            }
        }
    }

    /// Mints a fresh stamped value (or tombstone) for `key` and logs the
    /// write against the client's current observations of that key.
    fn stamp_new_write(&mut self, key: &Key, tombstone: bool) -> StampedValue {
        self.write_seq += 1;
        let id = WriteId::new(self.client, self.write_seq);
        self.write_log.push(WriteLogEntry {
            key: key.clone(),
            id,
            observed: self.observed.get(key).cloned().unwrap_or_default(),
            acked: false,
        });
        if tombstone {
            StampedValue::tombstone(id)
        } else {
            let mut payload = self.write_seq.to_le_bytes().to_vec();
            payload.resize(self.config.value_size.max(8), 0xA5);
            StampedValue::new(id, payload)
        }
    }

    /// Entry point: dispatches one message.
    pub fn on_message(&mut self, ctx: &mut impl NodeCtx<M>, from: NodeId, msg: Msg<M>) {
        match msg {
            Msg::ClientGetResp {
                req,
                ok,
                values,
                ctx: read_ctx,
            } => {
                let Some(flight) = self.current.take() else {
                    return;
                };
                if flight.req != req || !matches!(flight.kind, Kind::Get) {
                    self.current = Some(flight); // stale response
                    return;
                }
                self.cancel_timeout(ctx, req);
                if !ok {
                    self.retry_or_abandon(ctx, flight);
                    return;
                }
                self.stats
                    .get_latency
                    .record((ctx.now() - flight.sent_at).as_micros());
                self.record_observation(&flight.key, &values, read_ctx);

                // per the workload mix, some cycles are read-only
                if self.config.read_only_fraction > 0.0
                    && ctx.rng().chance(self.config.read_only_fraction)
                {
                    self.cycles_done += 1;
                    self.think_then_continue(ctx);
                    return;
                }

                // read-modify-write: issue the put (or, per the workload
                // mix, a causal delete) under the fresh context
                let tombstone = self.config.delete_fraction > 0.0
                    && ctx.rng().chance(self.config.delete_fraction);
                let value = self.stamp_new_write(&flight.key, tombstone);
                let put_ctx = self.contexts.get(&flight.key).cloned().unwrap_or_default();
                self.issue_put(ctx, flight.key, value, put_ctx, 0);
            }
            Msg::ClientPutResp {
                req,
                ok,
                values,
                ctx: read_ctx,
            } => {
                let Some(flight) = self.current.take() else {
                    return;
                };
                if flight.req != req || !matches!(flight.kind, Kind::Put { .. }) {
                    self.current = Some(flight);
                    return;
                }
                self.cancel_timeout(ctx, req);
                if !ok {
                    self.retry_or_abandon(ctx, flight);
                    return;
                }
                self.stats
                    .put_latency
                    .record((ctx.now() - flight.sent_at).as_micros());
                if let Kind::Put { value, .. } = &flight.kind {
                    let id = value.id;
                    if let Some(entry) = self.write_log.iter_mut().rev().find(|e| e.id == id) {
                        entry.acked = true;
                    }
                }
                // return_body: refresh context and observations
                self.record_observation(&flight.key, &values, read_ctx);
                self.cycles_done += 1;
                self.think_then_continue(ctx);
            }
            // a server noticed our view digest differs from its own and
            // pushed its full view: merge it, and push the merged view
            // back when the server's copy was the incomplete one (the
            // protocol-critical check lives in RingView::absorb, shared
            // with the server-side receive path)
            Msg::RingEpoch { view } => {
                let (_, sender_lacks) = self.force_view(&view);
                if sender_lacks {
                    let merged = self.view.clone();
                    self.send(ctx, from, Msg::RingEpoch { view: merged });
                }
            }
            // clients receive nothing else
            _ => {}
        }
    }

    /// Entry point: kicks off the first cycle.
    pub fn on_start(&mut self, ctx: &mut impl NodeCtx<M>) {
        // Stagger session starts a little so clients do not phase-lock.
        let jitter = simnet::Duration::from_micros(ctx.rng().range_u64(0, 500));
        let t = ctx.set_timer(jitter);
        self.timers.insert(t, ClientTimer::Think);
    }

    /// Entry point: dispatches one timer.
    pub fn on_timer(&mut self, ctx: &mut impl NodeCtx<M>, timer: TimerId) {
        match self.timers.remove(&timer) {
            Some(ClientTimer::Think) if self.current.is_none() && !self.done => {
                self.begin_cycle(ctx);
            }
            Some(ClientTimer::Think) => {}
            Some(ClientTimer::Timeout(req)) => {
                if let Some(flight) = self.current.take() {
                    if flight.req == req {
                        self.retry_or_abandon(ctx, flight);
                    } else {
                        self.current = Some(flight);
                    }
                }
            }
            None => {}
        }
    }
}
