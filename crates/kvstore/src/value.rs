//! Store values: payloads stamped with a globally unique write identity.

use core::fmt;

use dvv::encode::{varint_len, Decoder, Encode};
use dvv::{ClientId, DecodeError};

/// Key names are raw bytes, as in Riak.
pub type Key = Vec<u8>;

/// Globally unique identity of one write: `(client, per-client sequence)`.
///
/// Write ids exist for the *measurement instrument*, not the protocol: the
/// oracle uses them to reconstruct ground-truth causality and detect lost
/// updates / false concurrency, mechanism-independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId {
    /// The client that issued the write.
    pub client: ClientId,
    /// The client's write counter (1-based).
    pub seq: u64,
}

impl WriteId {
    /// Creates a write id.
    #[must_use]
    pub fn new(client: ClientId, seq: u64) -> Self {
        WriteId { client, seq }
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// A store value: opaque payload plus the identity of the write that
/// produced it.
///
/// A **delete** in a multi-version store is itself a write — a
/// *tombstone* stamped with the deleter's causal context, so it
/// supersedes exactly the versions the deleter saw (and coexists with
/// concurrent writes, which must survive). Tombstones stay in the store
/// until garbage collection proves them fully propagated; see
/// [`crate::cluster::Cluster::collect_garbage`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StampedValue {
    /// The write that created this value.
    pub id: WriteId,
    /// Application payload (empty for tombstones).
    pub payload: Vec<u8>,
    /// Whether this value is a delete marker.
    pub tombstone: bool,
}

impl StampedValue {
    /// Creates a stamped value.
    #[must_use]
    pub fn new(id: WriteId, payload: Vec<u8>) -> Self {
        StampedValue {
            id,
            payload,
            tombstone: false,
        }
    }

    /// Creates a delete marker.
    #[must_use]
    pub fn tombstone(id: WriteId) -> Self {
        StampedValue {
            id,
            payload: Vec::new(),
            tombstone: true,
        }
    }

    /// Whether this value is live application data (not a tombstone).
    #[must_use]
    pub fn is_live(&self) -> bool {
        !self.tombstone
    }

    /// Wire size in bytes (id + flag + length-prefixed payload).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for StampedValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.client.encode(buf);
        dvv::encode::put_varint(buf, self.id.seq);
        buf.push(u8::from(self.tombstone));
        self.payload.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.id.client.encoded_len() + varint_len(self.id.seq) + 1 + self.payload.encoded_len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let client = ClientId::decode(d)?;
        let seq = d.varint()?;
        let tombstone = match d.byte()? {
            0 => false,
            1 => true,
            _ => {
                return Err(DecodeError::InvalidValue {
                    reason: "tombstone flag must be 0 or 1",
                })
            }
        };
        let payload = Vec::<u8>::decode(d)?;
        Ok(StampedValue {
            id: WriteId::new(client, seq),
            payload,
            tombstone,
        })
    }
}

impl fmt::Display for StampedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tombstone {
            write!(f, "{}(†)", self.id)
        } else {
            write!(f, "{}({}B)", self.id, self.payload.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_id_ordering_and_display() {
        let a = WriteId::new(ClientId(1), 1);
        let b = WriteId::new(ClientId(1), 2);
        let c = WriteId::new(ClientId(2), 1);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "c1#1");
    }

    #[test]
    fn stamped_value_roundtrip() {
        let v = StampedValue::new(WriteId::new(ClientId(7), 3), vec![1, 2, 3]);
        let bytes = dvv::encode::to_bytes(&v);
        assert_eq!(bytes.len(), v.wire_size());
        let back: StampedValue = dvv::encode::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let v = StampedValue::new(WriteId::new(ClientId(0), 1), vec![]);
        let back: StampedValue = dvv::encode::from_bytes(&dvv::encode::to_bytes(&v)).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.to_string(), "c0#1(0B)");
    }

    #[test]
    fn tombstone_roundtrip_and_predicates() {
        let t = StampedValue::tombstone(WriteId::new(ClientId(3), 9));
        assert!(!t.is_live());
        assert!(t.payload.is_empty());
        let back: StampedValue = dvv::encode::from_bytes(&dvv::encode::to_bytes(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(t.to_string(), "c3#9(†)");
        let v = StampedValue::new(WriteId::new(ClientId(3), 9), vec![1]);
        assert!(v.is_live());
        assert_ne!(dvv::encode::to_bytes(&t), dvv::encode::to_bytes(&v));
    }

    #[test]
    fn bad_tombstone_flag_rejected() {
        let mut bytes =
            dvv::encode::to_bytes(&StampedValue::tombstone(WriteId::new(ClientId(1), 1)));
        // the flag byte sits after client varint (1 byte) + seq varint (1 byte)
        bytes[2] = 7;
        let r: Result<StampedValue, _> = dvv::encode::from_bytes(&bytes);
        assert!(r.is_err());
    }
}
