//! The store's wire protocol, generic over the causality mechanism.

use dvv::mechanisms::Mechanism;
use dvv::ReplicaId;

use crate::value::{Key, StampedValue};

/// Request identifier: unique per originating client (`client_index << 32
/// | sequence`), echoed through coordinator and replica traffic.
pub type ReqId = u64;

/// Every message exchanged in the store.
///
/// The client-facing messages carry mechanism *contexts*; the replica
/// traffic carries whole per-key *states* (Riak ships full objects on
/// write replication and read repair). Anti-entropy exchanges Merkle
/// summaries before any state.
#[derive(Clone, Debug)]
pub enum Msg<M: Mechanism<StampedValue>> {
    /// Client → coordinator: read `key`.
    ClientGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
    },
    /// Coordinator → client: read result (all siblings + context).
    ClientGetResp {
        /// Request id.
        req: ReqId,
        /// Whether a read quorum was assembled.
        ok: bool,
        /// Sibling values.
        values: Vec<StampedValue>,
        /// Causal context to echo on the next write.
        ctx: M::Context,
    },
    /// Client → coordinator: write `payload` under `key` with the causal
    /// context from the client's last read.
    ClientPut {
        /// Request id.
        req: ReqId,
        /// Key to write.
        key: Key,
        /// The stamped value to store.
        value: StampedValue,
        /// Context from the client's last read of this key.
        ctx: M::Context,
    },
    /// Coordinator → client: write result (`return_body` semantics: the
    /// post-write sibling set and context).
    ClientPutResp {
        /// Request id.
        req: ReqId,
        /// Whether a write quorum was assembled.
        ok: bool,
        /// Post-write sibling values at the coordinator.
        values: Vec<StampedValue>,
        /// Post-write causal context.
        ctx: M::Context,
    },
    /// Coordinator → replica: read `key`'s full state.
    RepGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
    },
    /// Replica → coordinator: the replica's state for `key`.
    RepGetResp {
        /// Request id.
        req: ReqId,
        /// Key read.
        key: Key,
        /// Full per-key state.
        state: M::State,
    },
    /// Coordinator → replica: replicate the updated state of `key`.
    RepPut {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// Full post-write state to merge.
        state: M::State,
        /// When the receiver is a fallback, the down replica it stands in
        /// for (hinted handoff).
        hint: Option<ReplicaId>,
    },
    /// Replica → coordinator: replication applied.
    RepPutAck {
        /// Request id.
        req: ReqId,
    },
    /// Coordinator → stale replica: merged state after a read.
    ReadRepair {
        /// Key repaired.
        key: Key,
        /// Merged state.
        state: M::State,
    },
    /// Anti-entropy round 1: initiator's Merkle root.
    AaeRoot {
        /// Root hash over the sender's keyspace.
        root: u64,
    },
    /// Anti-entropy round 2: responder's leaf hashes (roots differed).
    AaeLeaves {
        /// `(key, leaf hash)` pairs.
        leaves: Vec<(Key, u64)>,
    },
    /// Anti-entropy round 3: initiator pushes its divergent states and
    /// names the keys it wants back.
    AaeStates {
        /// States the initiator believes the peer lacks.
        states: Vec<(Key, M::State)>,
        /// Keys the initiator wants the peer's state for.
        want: Vec<Key>,
    },
    /// Anti-entropy round 4: responder returns the wanted states.
    AaeStatesResp {
        /// The requested states.
        states: Vec<(Key, M::State)>,
    },
    /// Fallback → recovered replica: hinted state handed off.
    Handoff {
        /// Key handed off.
        key: Key,
        /// State for the key.
        state: M::State,
    },
    /// Recovered replica → fallback: handoff applied.
    HandoffAck {
        /// Key acknowledged.
        key: Key,
    },
}

/// Wire size of a full per-key state: causal metadata plus the values.
pub fn state_wire_size<M: Mechanism<StampedValue>>(mech: &M, state: &M::State) -> usize {
    let (values, _) = mech.read(state);
    mech.metadata_size(state) + values.iter().map(StampedValue::wire_size).sum::<usize>()
}

impl<M: Mechanism<StampedValue>> Msg<M> {
    /// Bytes this message occupies on the wire (plus the fixed envelope
    /// the caller adds). This is where metadata size becomes latency.
    pub fn wire_size(&self, mech: &M) -> usize {
        match self {
            Msg::ClientGet { key, .. } => key.len() + 8,
            Msg::ClientGetResp { values, ctx, .. } => {
                1 + values.iter().map(StampedValue::wire_size).sum::<usize>()
                    + mech.context_size(ctx)
            }
            Msg::ClientPut {
                key, value, ctx, ..
            } => key.len() + 8 + value.wire_size() + mech.context_size(ctx),
            Msg::ClientPutResp { values, ctx, .. } => {
                1 + values.iter().map(StampedValue::wire_size).sum::<usize>()
                    + mech.context_size(ctx)
            }
            Msg::RepGet { key, .. } => key.len() + 8,
            Msg::RepGetResp { key, state, .. } => key.len() + 8 + state_wire_size(mech, state),
            Msg::RepPut {
                key, state, hint, ..
            } => key.len() + 8 + state_wire_size(mech, state) + if hint.is_some() { 4 } else { 0 },
            Msg::RepPutAck { .. } => 8,
            Msg::ReadRepair { key, state } => key.len() + state_wire_size(mech, state),
            Msg::AaeRoot { .. } => 8,
            Msg::AaeLeaves { leaves } => leaves.iter().map(|(k, _)| k.len() + 10).sum(),
            Msg::AaeStates { states, want } => {
                states
                    .iter()
                    .map(|(k, s)| k.len() + 2 + state_wire_size(mech, s))
                    .sum::<usize>()
                    + want.iter().map(|k| k.len() + 2).sum::<usize>()
            }
            Msg::AaeStatesResp { states } => states
                .iter()
                .map(|(k, s)| k.len() + 2 + state_wire_size(mech, s))
                .sum(),
            Msg::Handoff { key, state } => key.len() + state_wire_size(mech, state),
            Msg::HandoffAck { key } => key.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvv::mechanisms::{DvvMechanism, WriteOrigin};
    use dvv::{ClientId, VersionVector};

    use crate::value::WriteId;

    type M = DvvMechanism;

    fn sample_state() -> <M as Mechanism<StampedValue>>::State {
        let mech = DvvMechanism;
        let mut st = Default::default();
        mech.write(
            &mut st,
            WriteOrigin::new(ReplicaId(0), ClientId(1)),
            &VersionVector::new(),
            StampedValue::new(WriteId::new(ClientId(1), 1), vec![0u8; 32]),
        );
        st
    }

    #[test]
    fn state_wire_size_counts_metadata_and_values() {
        let mech = DvvMechanism;
        let st = sample_state();
        let sz = state_wire_size(&mech, &st);
        assert!(sz > 32, "must include the 32-byte payload, got {sz}");
        assert!(sz < 128, "should stay small, got {sz}");
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let mech = DvvMechanism;
        let st = sample_state();
        let get: Msg<M> = Msg::ClientGet {
            req: 1,
            key: b"k".to_vec(),
        };
        let resp: Msg<M> = Msg::RepGetResp {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
        };
        assert!(get.wire_size(&mech) < resp.wire_size(&mech));
        let ack: Msg<M> = Msg::RepPutAck { req: 1 };
        assert_eq!(ack.wire_size(&mech), 8);
    }

    #[test]
    fn hint_adds_bytes() {
        let mech = DvvMechanism;
        let st = sample_state();
        let plain: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
            hint: None,
        };
        let hinted: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st,
            hint: Some(ReplicaId(2)),
        };
        assert_eq!(hinted.wire_size(&mech), plain.wire_size(&mech) + 4);
    }

    #[test]
    fn aae_root_is_tiny() {
        let mech = DvvMechanism;
        let m: Msg<M> = Msg::AaeRoot { root: 42 };
        assert_eq!(m.wire_size(&mech), 8);
    }
}
