//! The store's wire protocol, generic over the causality mechanism.

use dvv::mechanisms::Mechanism;
use dvv::ReplicaId;
use ring::RingView;

use crate::value::{Key, StampedValue};

/// Request identifier: unique per originating client (`client_index << 32
/// | sequence`), echoed through coordinator and replica traffic.
pub type ReqId = u64;

/// Every message exchanged in the store.
///
/// The client-facing messages carry mechanism *contexts*; the replica
/// traffic carries whole per-key *states* (Riak ships full objects on
/// write replication and read repair). Anti-entropy exchanges Merkle
/// summaries before any state.
#[derive(Clone, Debug)]
pub enum Msg<M: Mechanism<StampedValue>> {
    /// Client → coordinator: read `key`.
    ClientGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
        /// Digest of the ring view the sender routed under; a
        /// coordinator whose own digest differs pushes its full view
        /// ([`Msg::RingEpoch`]) so the two views merge, and serves the
        /// request under its own (possibly stale) view meanwhile.
        digest: u64,
    },
    /// Coordinator → client: read result (all siblings + context).
    ClientGetResp {
        /// Request id.
        req: ReqId,
        /// Whether a read quorum was assembled.
        ok: bool,
        /// Sibling values.
        values: Vec<StampedValue>,
        /// Causal context to echo on the next write.
        ctx: M::Context,
    },
    /// Client → coordinator: write `payload` under `key` with the causal
    /// context from the client's last read.
    ClientPut {
        /// Request id.
        req: ReqId,
        /// Key to write.
        key: Key,
        /// The stamped value to store.
        value: StampedValue,
        /// Context from the client's last read of this key.
        ctx: M::Context,
        /// Digest of the sender's ring view (see [`Msg::ClientGet`]).
        digest: u64,
    },
    /// Coordinator → client: write result (`return_body` semantics: the
    /// post-write sibling set and context).
    ClientPutResp {
        /// Request id.
        req: ReqId,
        /// Whether a write quorum was assembled.
        ok: bool,
        /// Post-write sibling values at the coordinator.
        values: Vec<StampedValue>,
        /// Post-write causal context.
        ctx: M::Context,
    },
    /// Coordinator → replica: read `key`'s full state.
    RepGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
    },
    /// Replica → coordinator: the replica's state for `key`.
    RepGetResp {
        /// Request id.
        req: ReqId,
        /// Key read.
        key: Key,
        /// Full per-key state.
        state: M::State,
    },
    /// Coordinator → replica: replicate the updated state of `key`.
    RepPut {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// Full post-write state to merge.
        state: M::State,
        /// When the receiver is a fallback, the down replica it stands in
        /// for (hinted handoff).
        hint: Option<ReplicaId>,
    },
    /// Replica → coordinator: replication applied.
    RepPutAck {
        /// Request id.
        req: ReqId,
    },
    /// Coordinator → stale replica: merged state after a read.
    ReadRepair {
        /// Key repaired.
        key: Key,
        /// Merged state.
        state: M::State,
        /// When the receiver is a sloppy-quorum fallback, the down
        /// replica it stands in for — recorded as a hint obligation so
        /// the repaired copy is handed off and retired rather than
        /// lingering untracked (mirrors [`Msg::RepPut`]).
        hint: Option<ReplicaId>,
    },
    /// Anti-entropy round 1: initiator's Merkle root, with the sender's
    /// ring-view digest piggybacked as a gossip digest.
    AaeRoot {
        /// Root hash over the keys both ends replicate.
        root: u64,
        /// The sender's ring-view digest (gossip piggyback): a receiver
        /// whose digest differs pushes its full view so the two merge.
        digest: u64,
    },
    /// Anti-entropy round 2: responder's leaf hashes (roots differed).
    AaeLeaves {
        /// `(key, leaf hash)` pairs.
        leaves: Vec<(Key, u64)>,
    },
    /// Anti-entropy round 3: initiator pushes its divergent states and
    /// names the keys it wants back.
    AaeStates {
        /// States the initiator believes the peer lacks.
        states: Vec<(Key, M::State)>,
        /// Keys the initiator wants the peer's state for.
        want: Vec<Key>,
    },
    /// Anti-entropy round 4: responder returns the wanted states.
    AaeStatesResp {
        /// The requested states.
        states: Vec<(Key, M::State)>,
    },
    /// Non-owner coordinator → owner: apply this client write locally
    /// (minting the dot at the owner) and return the post-write state.
    ///
    /// An ownership-aware coordinator that is *not* in the key's
    /// preference list must not write into its own store or mint dots
    /// from its own (meaningless) counter; it delegates the write to the
    /// first active owner and fans the resulting state out to the rest.
    RepWrite {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// The stamped value to store.
        value: StampedValue,
        /// Context from the client's last read of this key.
        ctx: M::Context,
        /// When the receiver is a fallback, the down replica it stands in
        /// for (hinted handoff).
        hint: Option<ReplicaId>,
    },
    /// Owner → non-owner coordinator: the post-write state to replicate.
    RepWriteResp {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// Full post-write state at the owner.
        state: M::State,
    },
    /// Announces a membership change (join or leave): posted to the
    /// *subject* node by the control plane. The subject merges the view
    /// and gossip disseminates it epidemically from there — no
    /// broadcast. Receivers that merge the view rebuild their ring from
    /// it and, for joins, start streaming the ranges the subject gained.
    JoinAnnounce {
        /// The announcement's ring view (the subject's fresh entry plus
        /// everything the announcer knew).
        view: RingView<ReplicaId>,
        /// The node joining or leaving.
        who: ReplicaId,
        /// `true` for a join, `false` for a leave.
        joining: bool,
    },
    /// In-band re-admission: a node whose leave-drain could not complete
    /// announces it is back, carrying its last-known view with its own
    /// entry bumped to a fresh incarnation (status `Up`). Receivers
    /// merge it like any view — the higher incarnation beats the stale
    /// `Leaving` entry — so the recovery converges by gossip alone, with
    /// no harness-forced view synchronisation.
    Rejoin {
        /// The rejoining node's view, its own entry freshly bumped.
        view: RingView<ReplicaId>,
    },
    /// Range transfer: a donor (current owner, or a leaving node
    /// draining) streams per-key states for ranges that changed owners.
    /// Merging is monotone, so the receiver applies a transfer
    /// regardless of how its ring view has moved meanwhile — refusing
    /// one could lose data (the donor drops its copy after the ack).
    RangeTransfer {
        /// Transfer id, unique per sender, echoed by [`Msg::TransferAck`].
        id: u64,
        /// The transferred `(key, state)` pairs.
        entries: Vec<(Key, M::State)>,
    },
    /// Transfer receiver → donor: the whole batch was merged.
    TransferAck {
        /// The acknowledged transfer id.
        id: u64,
    },
    /// Ring-view push: the sender's full mergeable view, sent to any
    /// peer observed with a differing view digest (request headers,
    /// gossip digests, AAE piggybacks). The receiver merges it; if the
    /// merged result still differs from what was received — the sender
    /// lacks entries the receiver holds — the receiver pushes the merged
    /// view back, so one exchange converges both ends.
    RingEpoch {
        /// The sender's complete ring view.
        view: RingView<ReplicaId>,
    },
    /// Periodic gossip: the sender's ring-view digest (a 64-bit hash of
    /// its merged membership state). A receiver whose own digest differs
    /// pushes its full view ([`Msg::RingEpoch`]); equal digests end the
    /// round. Digests carry no order — merging, not comparison, decides
    /// what changes.
    GossipDigest {
        /// The sender's ring-view digest.
        digest: u64,
    },
    /// Fallback → recovered replica: hinted state handed off.
    Handoff {
        /// Key handed off.
        key: Key,
        /// State for the key.
        state: M::State,
    },
    /// Recovered replica → fallback: handoff applied.
    HandoffAck {
        /// Key acknowledged.
        key: Key,
    },
}

/// Wire size of a ring view: per entry a 4-byte member id, an 8-byte
/// incarnation and a status tag.
pub fn view_wire_size(view: &RingView<ReplicaId>) -> usize {
    13 * view.entry_count()
}

/// Wire size of a full per-key state: causal metadata plus the values.
pub fn state_wire_size<M: Mechanism<StampedValue>>(mech: &M, state: &M::State) -> usize {
    let (values, _) = mech.read(state);
    mech.metadata_size(state) + values.iter().map(StampedValue::wire_size).sum::<usize>()
}

impl<M: Mechanism<StampedValue>> Msg<M> {
    /// Bytes this message occupies on the wire (plus the fixed envelope
    /// the caller adds). This is where metadata size becomes latency.
    pub fn wire_size(&self, mech: &M) -> usize {
        match self {
            Msg::ClientGet { key, .. } => key.len() + 16,
            Msg::ClientGetResp { values, ctx, .. } => {
                1 + values.iter().map(StampedValue::wire_size).sum::<usize>()
                    + mech.context_size(ctx)
            }
            Msg::ClientPut {
                key, value, ctx, ..
            } => key.len() + 16 + value.wire_size() + mech.context_size(ctx),
            Msg::ClientPutResp { values, ctx, .. } => {
                1 + values.iter().map(StampedValue::wire_size).sum::<usize>()
                    + mech.context_size(ctx)
            }
            Msg::RepGet { key, .. } => key.len() + 8,
            Msg::RepGetResp { key, state, .. } => key.len() + 8 + state_wire_size(mech, state),
            Msg::RepPut {
                key, state, hint, ..
            } => key.len() + 8 + state_wire_size(mech, state) + if hint.is_some() { 4 } else { 0 },
            Msg::RepPutAck { .. } => 8,
            Msg::ReadRepair { key, state, hint } => {
                key.len() + state_wire_size(mech, state) + if hint.is_some() { 4 } else { 0 }
            }
            Msg::AaeRoot { .. } => 16,
            Msg::AaeLeaves { leaves } => leaves.iter().map(|(k, _)| k.len() + 10).sum(),
            Msg::AaeStates { states, want } => {
                states
                    .iter()
                    .map(|(k, s)| k.len() + 2 + state_wire_size(mech, s))
                    .sum::<usize>()
                    + want.iter().map(|k| k.len() + 2).sum::<usize>()
            }
            Msg::AaeStatesResp { states } => states
                .iter()
                .map(|(k, s)| k.len() + 2 + state_wire_size(mech, s))
                .sum(),
            Msg::RepWrite {
                key,
                value,
                ctx,
                hint,
                ..
            } => {
                key.len()
                    + 8
                    + value.wire_size()
                    + mech.context_size(ctx)
                    + if hint.is_some() { 4 } else { 0 }
            }
            Msg::RepWriteResp { key, state, .. } => key.len() + 8 + state_wire_size(mech, state),
            Msg::JoinAnnounce { view, .. } => view_wire_size(view) + 5,
            Msg::Rejoin { view } => view_wire_size(view),
            Msg::RangeTransfer { entries, .. } => {
                8 + entries
                    .iter()
                    .map(|(k, s)| k.len() + 2 + state_wire_size(mech, s))
                    .sum::<usize>()
            }
            Msg::TransferAck { .. } => 8,
            Msg::RingEpoch { view } => view_wire_size(view),
            Msg::GossipDigest { .. } => 8,
            Msg::Handoff { key, state } => key.len() + state_wire_size(mech, state),
            Msg::HandoffAck { key } => key.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvv::mechanisms::{DvvMechanism, WriteOrigin};
    use dvv::{ClientId, VersionVector};

    use crate::value::WriteId;

    type M = DvvMechanism;

    fn sample_state() -> <M as Mechanism<StampedValue>>::State {
        let mech = DvvMechanism;
        let mut st = Default::default();
        mech.write(
            &mut st,
            WriteOrigin::new(ReplicaId(0), ClientId(1)),
            &VersionVector::new(),
            StampedValue::new(WriteId::new(ClientId(1), 1), vec![0u8; 32]),
        );
        st
    }

    #[test]
    fn state_wire_size_counts_metadata_and_values() {
        let mech = DvvMechanism;
        let st = sample_state();
        let sz = state_wire_size(&mech, &st);
        assert!(sz > 32, "must include the 32-byte payload, got {sz}");
        assert!(sz < 128, "should stay small, got {sz}");
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let mech = DvvMechanism;
        let st = sample_state();
        let get: Msg<M> = Msg::ClientGet {
            req: 1,
            key: b"k".to_vec(),
            digest: 0,
        };
        let resp: Msg<M> = Msg::RepGetResp {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
        };
        assert!(get.wire_size(&mech) < resp.wire_size(&mech));
        let ack: Msg<M> = Msg::RepPutAck { req: 1 };
        assert_eq!(ack.wire_size(&mech), 8);
    }

    #[test]
    fn hint_adds_bytes() {
        let mech = DvvMechanism;
        let st = sample_state();
        let plain: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
            hint: None,
        };
        let hinted: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st,
            hint: Some(ReplicaId(2)),
        };
        assert_eq!(hinted.wire_size(&mech), plain.wire_size(&mech) + 4);
    }

    #[test]
    fn membership_messages_scale_with_members_and_entries() {
        let mech = DvvMechanism;
        let announce: Msg<M> = Msg::JoinAnnounce {
            view: RingView::from_members([ReplicaId(0), ReplicaId(1), ReplicaId(2)]),
            who: ReplicaId(2),
            joining: true,
        };
        let small: Msg<M> = Msg::JoinAnnounce {
            view: RingView::from_members([ReplicaId(0)]),
            who: ReplicaId(0),
            joining: false,
        };
        assert!(announce.wire_size(&mech) > small.wire_size(&mech));

        let st = sample_state();
        let transfer: Msg<M> = Msg::RangeTransfer {
            id: 1,
            entries: vec![(b"k".to_vec(), st.clone()), (b"k2".to_vec(), st)],
        };
        let empty: Msg<M> = Msg::RangeTransfer {
            id: 1,
            entries: Vec::new(),
        };
        assert!(transfer.wire_size(&mech) > empty.wire_size(&mech) + 64);
        let ack: Msg<M> = Msg::TransferAck { id: 1 };
        assert_eq!(ack.wire_size(&mech), 8);
        let push: Msg<M> = Msg::RingEpoch {
            view: RingView::from_members([ReplicaId(0), ReplicaId(1)]),
        };
        assert_eq!(push.wire_size(&mech), 26, "13 bytes per view entry");
        // tombstoned entries still ride along: they are what makes a
        // departure survive merges
        let mut with_tombstone = RingView::from_members([ReplicaId(0), ReplicaId(1)]);
        with_tombstone.bump(&ReplicaId(2), ring::MemberStatus::Removed);
        let bigger: Msg<M> = Msg::RingEpoch {
            view: with_tombstone,
        };
        assert_eq!(bigger.wire_size(&mech), 39);
    }

    #[test]
    fn gossip_messages_are_tiny() {
        let mech = DvvMechanism;
        let digest: Msg<M> = Msg::GossipDigest { digest: 9 };
        assert_eq!(digest.wire_size(&mech), 8);
        // a digest is strictly cheaper than any full view push
        let push: Msg<M> = Msg::RingEpoch {
            view: RingView::from_members([ReplicaId(0)]),
        };
        assert!(digest.wire_size(&mech) < push.wire_size(&mech));
        let rejoin: Msg<M> = Msg::Rejoin {
            view: RingView::from_members([ReplicaId(0), ReplicaId(1)]),
        };
        assert_eq!(rejoin.wire_size(&mech), 26);
    }

    #[test]
    fn read_repair_hint_adds_bytes() {
        let mech = DvvMechanism;
        let st = sample_state();
        let plain: Msg<M> = Msg::ReadRepair {
            key: b"k".to_vec(),
            state: st.clone(),
            hint: None,
        };
        let hinted: Msg<M> = Msg::ReadRepair {
            key: b"k".to_vec(),
            state: st,
            hint: Some(ReplicaId(4)),
        };
        assert_eq!(hinted.wire_size(&mech), plain.wire_size(&mech) + 4);
    }

    #[test]
    fn remote_write_carries_value_and_context() {
        let mech = DvvMechanism;
        let w: Msg<M> = Msg::RepWrite {
            req: 1,
            key: b"k".to_vec(),
            value: StampedValue::new(WriteId::new(ClientId(1), 1), vec![0u8; 32]),
            ctx: VersionVector::new(),
            hint: None,
        };
        assert!(w.wire_size(&mech) > 32);
        let resp: Msg<M> = Msg::RepWriteResp {
            req: 1,
            key: b"k".to_vec(),
            state: sample_state(),
        };
        assert!(resp.wire_size(&mech) > 32);
    }

    #[test]
    fn aae_root_is_tiny() {
        // 8 bytes of Merkle root + 8 bytes of piggybacked ring digest
        let mech = DvvMechanism;
        let m: Msg<M> = Msg::AaeRoot {
            root: 42,
            digest: 3,
        };
        assert_eq!(m.wire_size(&mech), 16);
    }
}
