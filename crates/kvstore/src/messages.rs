//! The store's wire protocol, generic over the causality mechanism.

use dvv::encode::{put_varint, varint_len, Decoder, Encode};
use dvv::mechanisms::{Mechanism, WireMechanism};
use dvv::{DecodeError, ReplicaId};
use ring::{MemberEntry, RingView};

use crate::value::{Key, StampedValue};
use crate::wire;

/// Request identifier: unique per originating client (`client_index << 32
/// | sequence`), echoed through coordinator and replica traffic.
pub type ReqId = u64;

/// Every message exchanged in the store.
///
/// The client-facing messages carry mechanism *contexts*; the replica
/// traffic carries whole per-key *states* (Riak ships full objects on
/// write replication and read repair). Anti-entropy exchanges Merkle
/// summaries before any state.
#[derive(Clone, Debug)]
pub enum Msg<M: Mechanism<StampedValue>> {
    /// Client → coordinator: read `key`.
    ClientGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
        /// Digest of the ring view the sender routed under; a
        /// coordinator whose own digest differs pushes its full view
        /// ([`Msg::RingEpoch`]) so the two views merge, and serves the
        /// request under its own (possibly stale) view meanwhile.
        digest: u64,
    },
    /// Coordinator → client: read result (all siblings + context).
    ClientGetResp {
        /// Request id.
        req: ReqId,
        /// Whether a read quorum was assembled.
        ok: bool,
        /// Sibling values.
        values: Vec<StampedValue>,
        /// Causal context to echo on the next write.
        ctx: M::Context,
    },
    /// Client → coordinator: write `payload` under `key` with the causal
    /// context from the client's last read.
    ClientPut {
        /// Request id.
        req: ReqId,
        /// Key to write.
        key: Key,
        /// The stamped value to store.
        value: StampedValue,
        /// Context from the client's last read of this key.
        ctx: M::Context,
        /// Digest of the sender's ring view (see [`Msg::ClientGet`]).
        digest: u64,
    },
    /// Coordinator → client: write result (`return_body` semantics: the
    /// post-write sibling set and context).
    ClientPutResp {
        /// Request id.
        req: ReqId,
        /// Whether a write quorum was assembled.
        ok: bool,
        /// Post-write sibling values at the coordinator.
        values: Vec<StampedValue>,
        /// Post-write causal context.
        ctx: M::Context,
    },
    /// Coordinator → replica: read `key`'s full state.
    RepGet {
        /// Request id.
        req: ReqId,
        /// Key to read.
        key: Key,
    },
    /// Replica → coordinator: the replica's state for `key`.
    RepGetResp {
        /// Request id.
        req: ReqId,
        /// Key read.
        key: Key,
        /// Full per-key state.
        state: M::State,
    },
    /// Coordinator → replica: replicate the updated state of `key`.
    RepPut {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// Full post-write state to merge.
        state: M::State,
        /// When the receiver is a fallback, the down replica it stands in
        /// for (hinted handoff).
        hint: Option<ReplicaId>,
    },
    /// Replica → coordinator: replication applied.
    RepPutAck {
        /// Request id.
        req: ReqId,
    },
    /// Coordinator → stale replica: merged state after a read.
    ReadRepair {
        /// Key repaired.
        key: Key,
        /// Merged state.
        state: M::State,
        /// When the receiver is a sloppy-quorum fallback, the down
        /// replica it stands in for — recorded as a hint obligation so
        /// the repaired copy is handed off and retired rather than
        /// lingering untracked (mirrors [`Msg::RepPut`]).
        hint: Option<ReplicaId>,
    },
    /// Anti-entropy round 1: initiator's Merkle root, with the sender's
    /// ring-view digest piggybacked as a gossip digest.
    AaeRoot {
        /// Root hash over the keys both ends replicate.
        root: u64,
        /// The sender's ring-view digest (gossip piggyback): a receiver
        /// whose digest differs pushes its full view so the two merge.
        digest: u64,
    },
    /// Anti-entropy arc reconciliation: on a shared-root mismatch the
    /// responder recurses into the per-arc Merkle roots instead of
    /// shipping every leaf. Arc indices are positions in the ring's
    /// token order, so both ends must hold identical views — the digest
    /// guards the exchange, and a mismatch aborts it (the next AAE tick
    /// retries after the views converge).
    AaeArcRoots {
        /// `(arc index, arc root)` for every shared arc with data.
        arcs: Vec<(u32, u64)>,
        /// The sender's ring-view digest: scope guard + gossip piggyback.
        digest: u64,
    },
    /// Anti-entropy leaf exchange (roots differed).
    AaeLeaves {
        /// `(key, leaf hash)` pairs.
        leaves: Vec<(Key, u64)>,
        /// `None`: the full-push protocol — every shared leaf travels.
        /// `Some(arcs)`: the delta protocol — only leaves in the listed
        /// differing arcs travel, and the receiver diffs against the
        /// same scope. Arc-scoped exchanges are only meaningful under
        /// identical views (see `digest`).
        arcs: Option<Vec<u32>>,
        /// The sender's ring-view digest: gossip piggyback, and the
        /// validity guard for arc-scoped exchanges.
        digest: u64,
    },
    /// Anti-entropy round 3: initiator pushes its divergent states and
    /// names the keys it wants back.
    AaeStates {
        /// States the initiator believes the peer lacks.
        states: Vec<(Key, M::State)>,
        /// Keys the initiator wants the peer's state for.
        want: Vec<Key>,
    },
    /// Anti-entropy round 4: responder returns the wanted states.
    AaeStatesResp {
        /// The requested states.
        states: Vec<(Key, M::State)>,
    },
    /// Non-owner coordinator → owner: apply this client write locally
    /// (minting the dot at the owner) and return the post-write state.
    ///
    /// An ownership-aware coordinator that is *not* in the key's
    /// preference list must not write into its own store or mint dots
    /// from its own (meaningless) counter; it delegates the write to the
    /// first active owner and fans the resulting state out to the rest.
    RepWrite {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// The stamped value to store.
        value: StampedValue,
        /// Context from the client's last read of this key.
        ctx: M::Context,
        /// When the receiver is a fallback, the down replica it stands in
        /// for (hinted handoff).
        hint: Option<ReplicaId>,
    },
    /// Owner → non-owner coordinator: the post-write state to replicate.
    RepWriteResp {
        /// Request id.
        req: ReqId,
        /// Key written.
        key: Key,
        /// Full post-write state at the owner.
        state: M::State,
    },
    /// Announces a membership change (join or leave): posted to the
    /// *subject* node by the control plane. The subject merges the view
    /// and gossip disseminates it epidemically from there — no
    /// broadcast. Receivers that merge the view rebuild their ring from
    /// it and, for joins, start streaming the ranges the subject gained.
    JoinAnnounce {
        /// The announcement's ring view (the subject's fresh entry plus
        /// everything the announcer knew).
        view: RingView<ReplicaId>,
        /// The node joining or leaving.
        who: ReplicaId,
        /// `true` for a join, `false` for a leave.
        joining: bool,
    },
    /// In-band re-admission: a node whose leave-drain could not complete
    /// announces it is back, carrying its last-known view with its own
    /// entry bumped to a fresh incarnation (status `Up`). Receivers
    /// merge it like any view — the higher incarnation beats the stale
    /// `Leaving` entry — so the recovery converges by gossip alone, with
    /// no harness-forced view synchronisation.
    Rejoin {
        /// The rejoining node's view, its own entry freshly bumped.
        view: RingView<ReplicaId>,
    },
    /// Range transfer: a donor (current owner, or a leaving node
    /// draining) streams per-key states for ranges that changed owners.
    /// Merging is monotone, so the receiver applies a transfer
    /// regardless of how its ring view has moved meanwhile — refusing
    /// one could lose data (the donor drops its copy after the ack).
    RangeTransfer {
        /// Transfer id, unique per sender, echoed by [`Msg::TransferAck`].
        id: u64,
        /// The transferred `(key, state)` pairs.
        entries: Vec<(Key, M::State)>,
    },
    /// Transfer receiver → donor: the whole batch was merged.
    TransferAck {
        /// The acknowledged transfer id.
        id: u64,
    },
    /// Ring-view push: the sender's full mergeable view, sent to any
    /// peer observed with a differing view digest (request headers,
    /// gossip digests, AAE piggybacks). The receiver merges it; if the
    /// merged result still differs from what was received — the sender
    /// lacks entries the receiver holds — the receiver pushes the merged
    /// view back, so one exchange converges both ends.
    RingEpoch {
        /// The sender's complete ring view.
        view: RingView<ReplicaId>,
    },
    /// Delta-view step 1 (reply to a mismatched digest): the sender's
    /// per-member summary — each entry's `(member, summary key)`, where
    /// the key is order-isomorphic to the merge order. The receiver
    /// compares per member and answers with a [`Msg::RingDelta`]
    /// carrying exactly the entries the summary proves missing or
    /// dominated, or falls back to a full [`Msg::RingEpoch`] when the
    /// delta would not be smaller.
    RingSummary {
        /// Every entry's `(member, summary key)`, tombstones included.
        entries: Vec<(ReplicaId, u64)>,
    },
    /// Delta-view step 2: the entries the peer provably lacks, plus the
    /// members this sender wants back (where the peer's summary proved
    /// domination). Merged through the same per-member join as
    /// [`Msg::RingEpoch`] (`RingView::absorb_delta` beside `absorb`);
    /// the receiver answers `want` — and any entry it dominates — with
    /// a further `RingDelta`, which terminates because only strictly
    /// newer entries ever travel back.
    RingDelta {
        /// Entries the receiver provably lacks or holds dominated.
        entries: Vec<(ReplicaId, MemberEntry)>,
        /// Members whose entries the sender wants back.
        want: Vec<ReplicaId>,
    },
    /// Periodic gossip: the sender's ring-view digest (a 64-bit hash of
    /// its merged membership state). A receiver whose own digest differs
    /// pushes its full view ([`Msg::RingEpoch`]) or opens a delta
    /// exchange ([`Msg::RingSummary`]); equal digests end the round.
    /// Digests carry no order — merging, not comparison, decides what
    /// changes.
    GossipDigest {
        /// The sender's ring-view digest.
        digest: u64,
    },
    /// Fallback → recovered replica: hinted states handed off, batched
    /// per recovered target.
    Handoff {
        /// The handed-off `(key, state)` pairs.
        entries: Vec<(Key, M::State)>,
    },
    /// Recovered replica → fallback: the batch was applied.
    HandoffAck {
        /// Keys acknowledged.
        keys: Vec<Key>,
    },
}

/// Wire size of a full per-key state: causal metadata plus the values.
pub fn state_wire_size<M: Mechanism<StampedValue>>(mech: &M, state: &M::State) -> usize {
    let (values, _) = mech.read(state);
    mech.metadata_size(state) + values.iter().map(StampedValue::wire_size).sum::<usize>()
}

/// Coarse classification of the wire protocol, for per-class byte
/// accounting: each message belongs to exactly one class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgClass {
    /// Client request/response traffic.
    Client,
    /// Quorum replication, delegation and read repair.
    Replication,
    /// Merkle anti-entropy exchanges.
    AntiEntropy,
    /// Membership dissemination: gossip, views, summaries, deltas.
    Membership,
    /// Range transfers (rebalance and leave-drain).
    Transfer,
    /// Hinted handoff.
    Handoff,
}

impl MsgClass {
    /// Every class, in display order.
    pub const ALL: [MsgClass; 6] = [
        MsgClass::Client,
        MsgClass::Replication,
        MsgClass::AntiEntropy,
        MsgClass::Membership,
        MsgClass::Transfer,
        MsgClass::Handoff,
    ];

    /// Stable lowercase name (report keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Client => "client",
            MsgClass::Replication => "replication",
            MsgClass::AntiEntropy => "anti_entropy",
            MsgClass::Membership => "membership",
            MsgClass::Transfer => "transfer",
            MsgClass::Handoff => "handoff",
        }
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Client => 0,
            MsgClass::Replication => 1,
            MsgClass::AntiEntropy => 2,
            MsgClass::Membership => 3,
            MsgClass::Transfer => 4,
            MsgClass::Handoff => 5,
        }
    }
}

/// Per-class wire counters a node accumulates for every message it
/// sends (payload plus envelope). Bytes-on-the-wire as a first-class
/// metric: what the delta protocols exist to shrink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    msgs: [u64; 6],
    bytes: [u64; 6],
}

impl WireStats {
    /// Records one sent message of `bytes` in `class`.
    pub fn record(&mut self, class: MsgClass, bytes: usize) {
        self.msgs[class.index()] += 1;
        self.bytes[class.index()] += bytes as u64;
    }

    /// Messages sent in `class`.
    #[must_use]
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Bytes sent in `class`.
    #[must_use]
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes sent across every class.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes spent *reconciling state* rather than serving clients or
    /// moving data: membership dissemination plus anti-entropy. This is
    /// the headline bytes-to-convergence metric — exactly the traffic
    /// the delta protocols address (transfers and handoff move the same
    /// key states under either protocol).
    #[must_use]
    pub fn reconciliation_bytes(&self) -> u64 {
        self.bytes(MsgClass::Membership) + self.bytes(MsgClass::AntiEntropy)
    }

    /// Adds another node's counters into this one (cluster roll-up).
    pub fn absorb(&mut self, other: &WireStats) {
        for i in 0..self.msgs.len() {
            self.msgs[i] += other.msgs[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

impl<M: Mechanism<StampedValue>> Msg<M> {
    /// One-byte variant tag, the first wire byte of every message.
    fn tag(&self) -> u8 {
        match self {
            Msg::ClientGet { .. } => 0,
            Msg::ClientGetResp { .. } => 1,
            Msg::ClientPut { .. } => 2,
            Msg::ClientPutResp { .. } => 3,
            Msg::RepGet { .. } => 4,
            Msg::RepGetResp { .. } => 5,
            Msg::RepPut { .. } => 6,
            Msg::RepPutAck { .. } => 7,
            Msg::ReadRepair { .. } => 8,
            Msg::AaeRoot { .. } => 9,
            Msg::AaeArcRoots { .. } => 10,
            Msg::AaeLeaves { .. } => 11,
            Msg::AaeStates { .. } => 12,
            Msg::AaeStatesResp { .. } => 13,
            Msg::RepWrite { .. } => 14,
            Msg::RepWriteResp { .. } => 15,
            Msg::JoinAnnounce { .. } => 16,
            Msg::Rejoin { .. } => 17,
            Msg::RangeTransfer { .. } => 18,
            Msg::TransferAck { .. } => 19,
            Msg::RingEpoch { .. } => 20,
            Msg::RingSummary { .. } => 21,
            Msg::RingDelta { .. } => 22,
            Msg::GossipDigest { .. } => 23,
            Msg::Handoff { .. } => 24,
            Msg::HandoffAck { .. } => 25,
        }
    }

    /// The message's accounting class.
    #[must_use]
    pub fn class(&self) -> MsgClass {
        match self {
            Msg::ClientGet { .. }
            | Msg::ClientGetResp { .. }
            | Msg::ClientPut { .. }
            | Msg::ClientPutResp { .. } => MsgClass::Client,
            Msg::RepGet { .. }
            | Msg::RepGetResp { .. }
            | Msg::RepPut { .. }
            | Msg::RepPutAck { .. }
            | Msg::ReadRepair { .. }
            | Msg::RepWrite { .. }
            | Msg::RepWriteResp { .. } => MsgClass::Replication,
            Msg::AaeRoot { .. }
            | Msg::AaeArcRoots { .. }
            | Msg::AaeLeaves { .. }
            | Msg::AaeStates { .. }
            | Msg::AaeStatesResp { .. } => MsgClass::AntiEntropy,
            Msg::JoinAnnounce { .. }
            | Msg::Rejoin { .. }
            | Msg::RingEpoch { .. }
            | Msg::RingSummary { .. }
            | Msg::RingDelta { .. }
            | Msg::GossipDigest { .. } => MsgClass::Membership,
            Msg::RangeTransfer { .. } | Msg::TransferAck { .. } => MsgClass::Transfer,
            Msg::Handoff { .. } | Msg::HandoffAck { .. } => MsgClass::Handoff,
        }
    }

    /// Encodes the message: a variant tag byte, then the fields through
    /// the codecs in [`crate::wire`]. Mechanism states and contexts
    /// travel as modeled blobs (length prefix + placeholder bytes of the
    /// modeled size — see the module docs of [`crate::wire`]), so this
    /// is the byte-accounting ground truth rather than a parseable
    /// serialisation of mechanism internals.
    pub fn encode(&self, mech: &M) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size(mech));
        buf.push(self.tag());
        match self {
            Msg::ClientGet { req, key, digest } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                wire::put_u64(&mut buf, *digest);
            }
            Msg::ClientGetResp {
                req,
                ok,
                values,
                ctx,
            }
            | Msg::ClientPutResp {
                req,
                ok,
                values,
                ctx,
            } => {
                wire::put_u64(&mut buf, *req);
                buf.push(u8::from(*ok));
                put_varint(&mut buf, values.len() as u64);
                for v in values {
                    v.encode(&mut buf);
                }
                wire::put_blob(&mut buf, mech.context_size(ctx));
            }
            Msg::ClientPut {
                req,
                key,
                value,
                ctx,
                digest,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                value.encode(&mut buf);
                wire::put_blob(&mut buf, mech.context_size(ctx));
                wire::put_u64(&mut buf, *digest);
            }
            Msg::RepGet { req, key } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
            }
            Msg::RepGetResp { req, key, state } | Msg::RepWriteResp { req, key, state } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                wire::put_blob(&mut buf, state_wire_size(mech, state));
            }
            Msg::RepPut {
                req,
                key,
                state,
                hint,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                wire::put_blob(&mut buf, state_wire_size(mech, state));
                wire::put_hint(&mut buf, *hint);
            }
            Msg::RepPutAck { req } => wire::put_u64(&mut buf, *req),
            Msg::ReadRepair { key, state, hint } => {
                wire::put_key(&mut buf, key);
                wire::put_blob(&mut buf, state_wire_size(mech, state));
                wire::put_hint(&mut buf, *hint);
            }
            Msg::AaeRoot { root, digest } => {
                wire::put_u64(&mut buf, *root);
                wire::put_u64(&mut buf, *digest);
            }
            Msg::AaeArcRoots { arcs, digest } => {
                wire::put_u64(&mut buf, *digest);
                wire::put_arc_roots(&mut buf, arcs);
            }
            Msg::AaeLeaves {
                leaves,
                arcs,
                digest,
            } => {
                wire::put_u64(&mut buf, *digest);
                match arcs {
                    None => buf.push(0),
                    Some(list) => {
                        buf.push(1);
                        wire::put_arc_list(&mut buf, list);
                    }
                }
                dvv::encode::put_leaf_set(&mut buf, leaves);
            }
            Msg::AaeStates { states, want } => {
                let items: Vec<(&Key, usize)> = states
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::put_keyed_blobs(&mut buf, &items);
                wire::put_key_list(&mut buf, want);
            }
            Msg::AaeStatesResp { states } => {
                let items: Vec<(&Key, usize)> = states
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::put_keyed_blobs(&mut buf, &items);
            }
            Msg::RepWrite {
                req,
                key,
                value,
                ctx,
                hint,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                value.encode(&mut buf);
                wire::put_blob(&mut buf, mech.context_size(ctx));
                wire::put_hint(&mut buf, *hint);
            }
            Msg::JoinAnnounce { view, who, joining } => {
                wire::put_view(&mut buf, view);
                put_varint(&mut buf, u64::from(who.0));
                buf.push(u8::from(*joining));
            }
            Msg::Rejoin { view } | Msg::RingEpoch { view } => {
                wire::put_view(&mut buf, view);
            }
            Msg::RangeTransfer { id, entries } => {
                wire::put_u64(&mut buf, *id);
                let items: Vec<(&Key, usize)> = entries
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::put_keyed_blobs(&mut buf, &items);
            }
            Msg::TransferAck { id } => wire::put_u64(&mut buf, *id),
            Msg::RingSummary { entries } => wire::put_summary(&mut buf, entries),
            Msg::RingDelta { entries, want } => {
                wire::put_member_entries(&mut buf, entries);
                wire::put_replica_ids(&mut buf, want);
            }
            Msg::GossipDigest { digest } => wire::put_u64(&mut buf, *digest),
            Msg::Handoff { entries } => {
                let items: Vec<(&Key, usize)> = entries
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::put_keyed_blobs(&mut buf, &items);
            }
            Msg::HandoffAck { keys } => wire::put_key_list(&mut buf, keys),
        }
        buf
    }

    /// Bytes this message occupies on the wire (plus the fixed envelope
    /// the caller adds). Computed with the same codec arithmetic
    /// [`Msg::encode`] uses — `wire_size == encode().len()` for every
    /// variant (pinned by the wire-parity property test). This is where
    /// metadata size becomes latency.
    pub fn wire_size(&self, mech: &M) -> usize {
        let u = wire::U64_LEN;
        1 + match self {
            Msg::ClientGet { key, .. } => u + wire::key_len(key) + u,
            Msg::ClientGetResp { values, ctx, .. } | Msg::ClientPutResp { values, ctx, .. } => {
                u + 1
                    + varint_len(values.len() as u64)
                    + values.iter().map(StampedValue::wire_size).sum::<usize>()
                    + wire::blob_len(mech.context_size(ctx))
            }
            Msg::ClientPut {
                key, value, ctx, ..
            } => {
                u + wire::key_len(key)
                    + value.wire_size()
                    + wire::blob_len(mech.context_size(ctx))
                    + u
            }
            Msg::RepGet { key, .. } => u + wire::key_len(key),
            Msg::RepGetResp { key, state, .. } | Msg::RepWriteResp { key, state, .. } => {
                u + wire::key_len(key) + wire::blob_len(state_wire_size(mech, state))
            }
            Msg::RepPut {
                key, state, hint, ..
            } => {
                u + wire::key_len(key)
                    + wire::blob_len(state_wire_size(mech, state))
                    + wire::hint_len(*hint)
            }
            Msg::RepPutAck { .. } | Msg::TransferAck { .. } | Msg::GossipDigest { .. } => u,
            Msg::ReadRepair { key, state, hint } => {
                wire::key_len(key)
                    + wire::blob_len(state_wire_size(mech, state))
                    + wire::hint_len(*hint)
            }
            Msg::AaeRoot { .. } => u + u,
            Msg::AaeArcRoots { arcs, .. } => u + wire::arc_roots_len(arcs),
            Msg::AaeLeaves { leaves, arcs, .. } => {
                u + match arcs {
                    None => 1,
                    Some(list) => 1 + wire::arc_list_len(list),
                } + dvv::encode::leaf_set_len(leaves)
            }
            Msg::AaeStates { states, want } => {
                let items: Vec<(&Key, usize)> = states
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::keyed_blobs_len(&items) + wire::key_list_len(want)
            }
            Msg::AaeStatesResp { states } => {
                let items: Vec<(&Key, usize)> = states
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::keyed_blobs_len(&items)
            }
            Msg::RepWrite {
                key,
                value,
                ctx,
                hint,
                ..
            } => {
                u + wire::key_len(key)
                    + value.wire_size()
                    + wire::blob_len(mech.context_size(ctx))
                    + wire::hint_len(*hint)
            }
            Msg::JoinAnnounce { view, who, .. } => {
                wire::view_len(view) + varint_len(u64::from(who.0)) + 1
            }
            Msg::Rejoin { view } | Msg::RingEpoch { view } => wire::view_len(view),
            Msg::RangeTransfer { entries, .. } => {
                let items: Vec<(&Key, usize)> = entries
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                u + wire::keyed_blobs_len(&items)
            }
            Msg::RingSummary { entries } => wire::summary_len(entries),
            Msg::RingDelta { entries, want } => {
                wire::member_entries_len(entries) + wire::replica_ids_len(want)
            }
            Msg::Handoff { entries } => {
                let items: Vec<(&Key, usize)> = entries
                    .iter()
                    .map(|(k, s)| (k, state_wire_size(mech, s)))
                    .collect();
                wire::keyed_blobs_len(&items)
            }
            Msg::HandoffAck { keys } => wire::key_list_len(keys),
        }
    }
}

/// Appends a state as a *parseable* blob: the same length prefix as the
/// modeled [`wire::put_blob`], but real bytes behind it. The
/// [`WireMechanism`] contract makes both forms byte-length-identical, so
/// [`Msg::wire_size`] stays the accounting ground truth for real frames.
fn put_state<M: WireMechanism<StampedValue>>(buf: &mut Vec<u8>, mech: &M, state: &M::State) {
    let size = state_wire_size(mech, state);
    put_varint(buf, size as u64);
    let start = buf.len();
    mech.encode_state(state, buf);
    debug_assert_eq!(
        buf.len() - start,
        size,
        "WireMechanism encoding drifted from the modeled state size"
    );
}

fn get_state<M: WireMechanism<StampedValue>>(
    mech: &M,
    d: &mut Decoder<'_>,
) -> Result<M::State, DecodeError> {
    let len = d.varint()? as usize;
    let mut sub = Decoder::new(d.bytes(len)?);
    let state = mech.decode_state(&mut sub)?;
    if sub.remaining() != 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: sub.remaining(),
        });
    }
    Ok(state)
}

fn put_ctx<M: WireMechanism<StampedValue>>(buf: &mut Vec<u8>, mech: &M, ctx: &M::Context) {
    let size = mech.context_size(ctx);
    put_varint(buf, size as u64);
    let start = buf.len();
    mech.encode_context(ctx, buf);
    debug_assert_eq!(
        buf.len() - start,
        size,
        "WireMechanism encoding drifted from the modeled context size"
    );
}

fn get_ctx<M: WireMechanism<StampedValue>>(
    mech: &M,
    d: &mut Decoder<'_>,
) -> Result<M::Context, DecodeError> {
    let len = d.varint()? as usize;
    let mut sub = Decoder::new(d.bytes(len)?);
    let ctx = mech.decode_context(&mut sub)?;
    if sub.remaining() != 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: sub.remaining(),
        });
    }
    Ok(ctx)
}

/// The parseable counterpart of [`wire::put_keyed_blobs`]: prefix-delta
/// keys, each followed by a [`put_state`] blob.
fn put_keyed_states<M: WireMechanism<StampedValue>>(
    buf: &mut Vec<u8>,
    mech: &M,
    entries: &[(Key, M::State)],
) {
    put_varint(buf, entries.len() as u64);
    let mut prev: &[u8] = &[];
    for (k, s) in entries {
        let lcp = wire::common_prefix(prev, k);
        put_varint(buf, lcp as u64);
        put_varint(buf, (k.len() - lcp) as u64);
        buf.extend_from_slice(&k[lcp..]);
        put_state(buf, mech, s);
        prev = k;
    }
}

fn get_keyed_states<M: WireMechanism<StampedValue>>(
    mech: &M,
    d: &mut Decoder<'_>,
) -> Result<Vec<(Key, M::State)>, DecodeError> {
    let n = d.varint()? as usize;
    let mut out: Vec<(Key, M::State)> = Vec::with_capacity(n.min(d.remaining() / 2 + 1));
    let mut prev: Vec<u8> = Vec::new();
    for _ in 0..n {
        let lcp = d.varint()? as usize;
        if lcp > prev.len() {
            return Err(DecodeError::InvalidValue {
                reason: "key prefix longer than previous key",
            });
        }
        let suffix_len = d.varint()? as usize;
        let suffix = d.bytes(suffix_len)?;
        let mut k = prev[..lcp].to_vec();
        k.extend_from_slice(suffix);
        prev.clone_from(&k);
        out.push((k, get_state(mech, d)?));
    }
    Ok(out)
}

fn get_values(d: &mut Decoder<'_>) -> Result<Vec<StampedValue>, DecodeError> {
    let n = d.varint()? as usize;
    let mut values = Vec::with_capacity(n.min(d.remaining() / 2 + 1));
    for _ in 0..n {
        values.push(StampedValue::decode(d)?);
    }
    Ok(values)
}

impl<M: WireMechanism<StampedValue>> Msg<M> {
    /// Encodes the message for a *real* transport: identical to
    /// [`Msg::encode`] except that mechanism states and contexts travel as
    /// genuine parseable bytes instead of modeled placeholder blobs. The
    /// [`WireMechanism`] length contract keeps
    /// `encode_transport().len() == wire_size()`, so byte ledgers charged
    /// from [`Msg::wire_size`] remain exact for socket frames.
    #[must_use]
    pub fn encode_transport(&self, mech: &M) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size(mech));
        buf.push(self.tag());
        match self {
            Msg::ClientGet { req, key, digest } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                wire::put_u64(&mut buf, *digest);
            }
            Msg::ClientGetResp {
                req,
                ok,
                values,
                ctx,
            }
            | Msg::ClientPutResp {
                req,
                ok,
                values,
                ctx,
            } => {
                wire::put_u64(&mut buf, *req);
                buf.push(u8::from(*ok));
                put_varint(&mut buf, values.len() as u64);
                for v in values {
                    v.encode(&mut buf);
                }
                put_ctx(&mut buf, mech, ctx);
            }
            Msg::ClientPut {
                req,
                key,
                value,
                ctx,
                digest,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                value.encode(&mut buf);
                put_ctx(&mut buf, mech, ctx);
                wire::put_u64(&mut buf, *digest);
            }
            Msg::RepGet { req, key } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
            }
            Msg::RepGetResp { req, key, state } | Msg::RepWriteResp { req, key, state } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                put_state(&mut buf, mech, state);
            }
            Msg::RepPut {
                req,
                key,
                state,
                hint,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                put_state(&mut buf, mech, state);
                wire::put_hint(&mut buf, *hint);
            }
            Msg::RepPutAck { req } => wire::put_u64(&mut buf, *req),
            Msg::ReadRepair { key, state, hint } => {
                wire::put_key(&mut buf, key);
                put_state(&mut buf, mech, state);
                wire::put_hint(&mut buf, *hint);
            }
            Msg::AaeRoot { root, digest } => {
                wire::put_u64(&mut buf, *root);
                wire::put_u64(&mut buf, *digest);
            }
            Msg::AaeArcRoots { arcs, digest } => {
                wire::put_u64(&mut buf, *digest);
                wire::put_arc_roots(&mut buf, arcs);
            }
            Msg::AaeLeaves {
                leaves,
                arcs,
                digest,
            } => {
                wire::put_u64(&mut buf, *digest);
                match arcs {
                    None => buf.push(0),
                    Some(list) => {
                        buf.push(1);
                        wire::put_arc_list(&mut buf, list);
                    }
                }
                dvv::encode::put_leaf_set(&mut buf, leaves);
            }
            Msg::AaeStates { states, want } => {
                put_keyed_states(&mut buf, mech, states);
                wire::put_key_list(&mut buf, want);
            }
            Msg::AaeStatesResp { states } => {
                put_keyed_states(&mut buf, mech, states);
            }
            Msg::RepWrite {
                req,
                key,
                value,
                ctx,
                hint,
            } => {
                wire::put_u64(&mut buf, *req);
                wire::put_key(&mut buf, key);
                value.encode(&mut buf);
                put_ctx(&mut buf, mech, ctx);
                wire::put_hint(&mut buf, *hint);
            }
            Msg::JoinAnnounce { view, who, joining } => {
                wire::put_view(&mut buf, view);
                put_varint(&mut buf, u64::from(who.0));
                buf.push(u8::from(*joining));
            }
            Msg::Rejoin { view } | Msg::RingEpoch { view } => {
                wire::put_view(&mut buf, view);
            }
            Msg::RangeTransfer { id, entries } => {
                wire::put_u64(&mut buf, *id);
                put_keyed_states(&mut buf, mech, entries);
            }
            Msg::TransferAck { id } => wire::put_u64(&mut buf, *id),
            Msg::RingSummary { entries } => wire::put_summary(&mut buf, entries),
            Msg::RingDelta { entries, want } => {
                wire::put_member_entries(&mut buf, entries);
                wire::put_replica_ids(&mut buf, want);
            }
            Msg::GossipDigest { digest } => wire::put_u64(&mut buf, *digest),
            Msg::Handoff { entries } => {
                put_keyed_states(&mut buf, mech, entries);
            }
            Msg::HandoffAck { keys } => wire::put_key_list(&mut buf, keys),
        }
        debug_assert_eq!(
            buf.len(),
            self.wire_size(mech),
            "transport encoding drifted from wire_size"
        );
        buf
    }

    /// Parses a message produced by [`Msg::encode_transport`]. Strict:
    /// every byte must be consumed, every invariant the codecs check must
    /// hold. A transport maps any error to a dropped connection.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input, including an unknown
    /// variant tag or trailing bytes.
    pub fn decode_transport(mech: &M, bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let tag = d.byte()?;
        let msg = match tag {
            0 => Msg::ClientGet {
                req: wire::get_u64(&mut d)?,
                key: wire::get_key(&mut d)?,
                digest: wire::get_u64(&mut d)?,
            },
            1 | 3 => {
                let req = wire::get_u64(&mut d)?;
                let ok = wire::get_bool(&mut d)?;
                let values = get_values(&mut d)?;
                let ctx = get_ctx(mech, &mut d)?;
                if tag == 1 {
                    Msg::ClientGetResp {
                        req,
                        ok,
                        values,
                        ctx,
                    }
                } else {
                    Msg::ClientPutResp {
                        req,
                        ok,
                        values,
                        ctx,
                    }
                }
            }
            2 => Msg::ClientPut {
                req: wire::get_u64(&mut d)?,
                key: wire::get_key(&mut d)?,
                value: StampedValue::decode(&mut d)?,
                ctx: get_ctx(mech, &mut d)?,
                digest: wire::get_u64(&mut d)?,
            },
            4 => Msg::RepGet {
                req: wire::get_u64(&mut d)?,
                key: wire::get_key(&mut d)?,
            },
            5 | 15 => {
                let req = wire::get_u64(&mut d)?;
                let key = wire::get_key(&mut d)?;
                let state = get_state(mech, &mut d)?;
                if tag == 5 {
                    Msg::RepGetResp { req, key, state }
                } else {
                    Msg::RepWriteResp { req, key, state }
                }
            }
            6 => Msg::RepPut {
                req: wire::get_u64(&mut d)?,
                key: wire::get_key(&mut d)?,
                state: get_state(mech, &mut d)?,
                hint: wire::get_hint(&mut d)?,
            },
            7 => Msg::RepPutAck {
                req: wire::get_u64(&mut d)?,
            },
            8 => Msg::ReadRepair {
                key: wire::get_key(&mut d)?,
                state: get_state(mech, &mut d)?,
                hint: wire::get_hint(&mut d)?,
            },
            9 => Msg::AaeRoot {
                root: wire::get_u64(&mut d)?,
                digest: wire::get_u64(&mut d)?,
            },
            10 => {
                let digest = wire::get_u64(&mut d)?;
                let arcs = wire::get_arc_roots(&mut d)?;
                Msg::AaeArcRoots { arcs, digest }
            }
            11 => {
                let digest = wire::get_u64(&mut d)?;
                let arcs = match d.byte()? {
                    0 => None,
                    1 => Some(wire::get_arc_list(&mut d)?),
                    _ => {
                        return Err(DecodeError::InvalidValue {
                            reason: "arc-scope presence byte must be 0 or 1",
                        })
                    }
                };
                let leaves = dvv::encode::get_leaf_set(&mut d)?;
                Msg::AaeLeaves {
                    leaves,
                    arcs,
                    digest,
                }
            }
            12 => Msg::AaeStates {
                states: get_keyed_states(mech, &mut d)?,
                want: wire::get_key_list(&mut d)?,
            },
            13 => Msg::AaeStatesResp {
                states: get_keyed_states(mech, &mut d)?,
            },
            14 => Msg::RepWrite {
                req: wire::get_u64(&mut d)?,
                key: wire::get_key(&mut d)?,
                value: StampedValue::decode(&mut d)?,
                ctx: get_ctx(mech, &mut d)?,
                hint: wire::get_hint(&mut d)?,
            },
            16 => {
                let view = wire::get_view(&mut d)?;
                let who = d.varint()?;
                let who =
                    u32::try_from(who)
                        .map(ReplicaId)
                        .map_err(|_| DecodeError::InvalidValue {
                            reason: "replica id out of range",
                        })?;
                let joining = wire::get_bool(&mut d)?;
                Msg::JoinAnnounce { view, who, joining }
            }
            17 => Msg::Rejoin {
                view: wire::get_view(&mut d)?,
            },
            18 => Msg::RangeTransfer {
                id: wire::get_u64(&mut d)?,
                entries: get_keyed_states(mech, &mut d)?,
            },
            19 => Msg::TransferAck {
                id: wire::get_u64(&mut d)?,
            },
            20 => Msg::RingEpoch {
                view: wire::get_view(&mut d)?,
            },
            21 => Msg::RingSummary {
                entries: wire::get_summary(&mut d)?,
            },
            22 => Msg::RingDelta {
                entries: wire::get_member_entries(&mut d)?,
                want: wire::get_replica_ids(&mut d)?,
            },
            23 => Msg::GossipDigest {
                digest: wire::get_u64(&mut d)?,
            },
            24 => Msg::Handoff {
                entries: get_keyed_states(mech, &mut d)?,
            },
            25 => Msg::HandoffAck {
                keys: wire::get_key_list(&mut d)?,
            },
            _ => {
                return Err(DecodeError::InvalidValue {
                    reason: "unknown message tag",
                })
            }
        };
        if d.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: d.remaining(),
            });
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvv::mechanisms::{DvvMechanism, WriteOrigin};
    use dvv::{ClientId, VersionVector};

    use crate::value::WriteId;

    type M = DvvMechanism;

    fn sample_state() -> <M as Mechanism<StampedValue>>::State {
        let mech = DvvMechanism;
        let mut st = Default::default();
        mech.write(
            &mut st,
            WriteOrigin::new(ReplicaId(0), ClientId(1)),
            &VersionVector::new(),
            StampedValue::new(WriteId::new(ClientId(1), 1), vec![0u8; 32]),
        );
        st
    }

    #[test]
    fn state_wire_size_counts_metadata_and_values() {
        let mech = DvvMechanism;
        let st = sample_state();
        let sz = state_wire_size(&mech, &st);
        assert!(sz > 32, "must include the 32-byte payload, got {sz}");
        assert!(sz < 128, "should stay small, got {sz}");
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let mech = DvvMechanism;
        let st = sample_state();
        let get: Msg<M> = Msg::ClientGet {
            req: 1,
            key: b"k".to_vec(),
            digest: 0,
        };
        let resp: Msg<M> = Msg::RepGetResp {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
        };
        assert!(get.wire_size(&mech) < resp.wire_size(&mech));
        // tag byte + fixed 8-byte request id
        let ack: Msg<M> = Msg::RepPutAck { req: 1 };
        assert_eq!(ack.wire_size(&mech), 9);
    }

    #[test]
    fn hint_adds_bytes() {
        let mech = DvvMechanism;
        let st = sample_state();
        let plain: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st.clone(),
            hint: None,
        };
        let hinted: Msg<M> = Msg::RepPut {
            req: 1,
            key: b"k".to_vec(),
            state: st,
            hint: Some(ReplicaId(2)),
        };
        // presence byte is always there; the hint itself is one varint
        assert_eq!(hinted.wire_size(&mech), plain.wire_size(&mech) + 1);
    }

    #[test]
    fn membership_messages_scale_with_members_and_entries() {
        let mech = DvvMechanism;
        let announce: Msg<M> = Msg::JoinAnnounce {
            view: RingView::from_members([ReplicaId(0), ReplicaId(1), ReplicaId(2)]),
            who: ReplicaId(2),
            joining: true,
        };
        let small: Msg<M> = Msg::JoinAnnounce {
            view: RingView::from_members([ReplicaId(0)]),
            who: ReplicaId(0),
            joining: false,
        };
        assert!(announce.wire_size(&mech) > small.wire_size(&mech));

        let st = sample_state();
        let transfer: Msg<M> = Msg::RangeTransfer {
            id: 1,
            entries: vec![(b"k".to_vec(), st.clone()), (b"k2".to_vec(), st)],
        };
        let empty: Msg<M> = Msg::RangeTransfer {
            id: 1,
            entries: Vec::new(),
        };
        assert!(transfer.wire_size(&mech) > empty.wire_size(&mech) + 64);
        let ack: Msg<M> = Msg::TransferAck { id: 1 };
        assert_eq!(ack.wire_size(&mech), 9);
        let two = RingView::from_members([ReplicaId(0), ReplicaId(1)]);
        let push: Msg<M> = Msg::RingEpoch { view: two.clone() };
        assert_eq!(push.wire_size(&mech), 1 + wire::view_len(&two));
        assert!(
            push.wire_size(&mech) < 26,
            "delta-coded view must beat the old 13-bytes-per-entry format, got {}",
            push.wire_size(&mech)
        );
        // tombstoned entries still ride along: they are what makes a
        // departure survive merges
        let mut with_tombstone = RingView::from_members([ReplicaId(0), ReplicaId(1)]);
        with_tombstone.bump(&ReplicaId(2), ring::MemberStatus::Removed);
        let bigger: Msg<M> = Msg::RingEpoch {
            view: with_tombstone,
        };
        assert!(bigger.wire_size(&mech) > push.wire_size(&mech));
    }

    #[test]
    fn gossip_messages_are_tiny() {
        let mech = DvvMechanism;
        let digest: Msg<M> = Msg::GossipDigest { digest: 9 };
        assert_eq!(digest.wire_size(&mech), 9);
        // a digest stays fixed-size while view pushes grow per member
        let push: Msg<M> = Msg::RingEpoch {
            view: RingView::from_members([
                ReplicaId(0),
                ReplicaId(1),
                ReplicaId(2),
                ReplicaId(3),
                ReplicaId(4),
            ]),
        };
        assert!(digest.wire_size(&mech) < push.wire_size(&mech));
        let two = RingView::from_members([ReplicaId(0), ReplicaId(1)]);
        let rejoin: Msg<M> = Msg::Rejoin { view: two.clone() };
        assert_eq!(rejoin.wire_size(&mech), 1 + wire::view_len(&two));
    }

    #[test]
    fn read_repair_hint_adds_bytes() {
        let mech = DvvMechanism;
        let st = sample_state();
        let plain: Msg<M> = Msg::ReadRepair {
            key: b"k".to_vec(),
            state: st.clone(),
            hint: None,
        };
        let hinted: Msg<M> = Msg::ReadRepair {
            key: b"k".to_vec(),
            state: st,
            hint: Some(ReplicaId(4)),
        };
        assert_eq!(hinted.wire_size(&mech), plain.wire_size(&mech) + 1);
    }

    #[test]
    fn remote_write_carries_value_and_context() {
        let mech = DvvMechanism;
        let w: Msg<M> = Msg::RepWrite {
            req: 1,
            key: b"k".to_vec(),
            value: StampedValue::new(WriteId::new(ClientId(1), 1), vec![0u8; 32]),
            ctx: VersionVector::new(),
            hint: None,
        };
        assert!(w.wire_size(&mech) > 32);
        let resp: Msg<M> = Msg::RepWriteResp {
            req: 1,
            key: b"k".to_vec(),
            state: sample_state(),
        };
        assert!(resp.wire_size(&mech) > 32);
    }

    #[test]
    fn aae_root_is_tiny() {
        // tag + 8 bytes of Merkle root + 8 bytes of piggybacked digest
        let mech = DvvMechanism;
        let m: Msg<M> = Msg::AaeRoot {
            root: 42,
            digest: 3,
        };
        assert_eq!(m.wire_size(&mech), 17);
    }

    #[test]
    fn arc_roots_beat_full_leaf_push() {
        // The whole point of delta-AAE: (arc, root) pairs for the shared
        // arcs cost far less than pushing every leaf.
        let mech = DvvMechanism;
        let arcs: Vec<(u32, u64)> = (0..64).map(|i| (i, 0x1234_5678 + u64::from(i))).collect();
        let roots: Msg<M> = Msg::AaeArcRoots { arcs, digest: 1 };
        let leaves: Vec<(Key, u64)> = (0..512)
            .map(|i| (format!("user:{i:05}").into_bytes(), i))
            .collect();
        let full: Msg<M> = Msg::AaeLeaves {
            leaves,
            arcs: None,
            digest: 1,
        };
        assert!(roots.wire_size(&mech) * 4 < full.wire_size(&mech));
    }

    #[test]
    fn ring_delta_beats_full_view_for_single_change() {
        let mech = DvvMechanism;
        let members: Vec<ReplicaId> = (0..20).map(ReplicaId).collect();
        let view = RingView::from_members(members);
        let full: Msg<M> = Msg::RingEpoch { view: view.clone() };
        let entry = *view.entry(&ReplicaId(3)).unwrap();
        let delta: Msg<M> = Msg::RingDelta {
            entries: vec![(ReplicaId(3), entry)],
            want: Vec::new(),
        };
        assert!(delta.wire_size(&mech) < full.wire_size(&mech));
        let summary: Msg<M> = Msg::RingSummary {
            entries: view.summary(),
        };
        // summaries are cheap relative to full entries, but not free
        assert!(summary.wire_size(&mech) <= full.wire_size(&mech));
        assert!(summary.wire_size(&mech) > 9);
    }

    #[test]
    fn every_class_is_reachable_and_stats_roll_up() {
        let mech = DvvMechanism;
        let digest: Msg<M> = Msg::GossipDigest { digest: 1 };
        assert_eq!(digest.class(), MsgClass::Membership);
        let ho: Msg<M> = Msg::Handoff {
            entries: vec![(b"k".to_vec(), sample_state())],
        };
        assert_eq!(ho.class(), MsgClass::Handoff);

        let mut a = WireStats::default();
        a.record(MsgClass::Membership, digest.wire_size(&mech));
        a.record(MsgClass::AntiEntropy, 100);
        let mut b = WireStats::default();
        b.record(MsgClass::Transfer, 40);
        b.absorb(&a);
        assert_eq!(b.total_bytes(), 40 + 100 + 9);
        assert_eq!(b.reconciliation_bytes(), 100 + 9);
        assert_eq!(b.msgs(MsgClass::Membership), 1);
        assert_eq!(MsgClass::ALL.len(), 6);
    }

    #[test]
    fn transport_codec_roundtrips_state_bearing_messages() {
        let mech = DvvMechanism;
        let st = sample_state();
        let msg: Msg<M> = Msg::RepPut {
            req: 42,
            key: b"alpha".to_vec(),
            state: st.clone(),
            hint: Some(ReplicaId(3)),
        };
        let bytes = msg.encode_transport(&mech);
        assert_eq!(bytes.len(), msg.wire_size(&mech));
        let back = Msg::<M>::decode_transport(&mech, &bytes).unwrap();
        match back {
            Msg::RepPut {
                req, key, state, ..
            } => {
                assert_eq!(req, 42);
                assert_eq!(key, b"alpha".to_vec());
                assert_eq!(state, st);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn transport_decode_rejects_malformed_input() {
        let mech = DvvMechanism;
        // unknown tag
        assert!(Msg::<M>::decode_transport(&mech, &[200]).is_err());
        // empty input
        assert!(Msg::<M>::decode_transport(&mech, &[]).is_err());
        let msg: Msg<M> = Msg::GossipDigest { digest: 7 };
        let mut bytes = msg.encode_transport(&mech);
        // trailing garbage
        bytes.push(0);
        assert!(Msg::<M>::decode_transport(&mech, &bytes).is_err());
        // truncation anywhere must error, never panic
        let msg: Msg<M> = Msg::RepGetResp {
            req: 1,
            key: b"k".to_vec(),
            state: sample_state(),
        };
        let bytes = msg.encode_transport(&mech);
        for cut in 0..bytes.len() {
            assert!(
                Msg::<M>::decode_transport(&mech, &bytes[..cut]).is_err(),
                "torn message parsed at cut {cut}"
            );
        }
    }

    #[test]
    fn wire_size_matches_encoding_for_sampled_variants() {
        // Spot parity; the proptest suite in tests/wire_parity.rs walks
        // every variant.
        let mech = DvvMechanism;
        let st = sample_state();
        let msgs: Vec<Msg<M>> = vec![
            Msg::ClientGet {
                req: 7,
                key: b"alpha".to_vec(),
                digest: 3,
            },
            Msg::RepGetResp {
                req: 7,
                key: b"alpha".to_vec(),
                state: st.clone(),
            },
            Msg::AaeLeaves {
                leaves: vec![(b"a".to_vec(), 1), (b"ab".to_vec(), 2)],
                arcs: Some(vec![1, 5, 9]),
                digest: 11,
            },
            Msg::RingSummary {
                entries: RingView::from_members([ReplicaId(0), ReplicaId(4)]).summary(),
            },
            Msg::Handoff {
                entries: vec![(b"k1".to_vec(), st.clone()), (b"k2".to_vec(), st)],
            },
            Msg::HandoffAck {
                keys: vec![b"k1".to_vec(), b"k2".to_vec()],
            },
        ];
        for m in &msgs {
            assert_eq!(
                m.wire_size(&mech),
                m.encode(&mech).len(),
                "wire_size drifted from the encoder for {m:?}"
            );
        }
    }
}
