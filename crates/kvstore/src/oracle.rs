//! Ground-truth causality reconstruction and anomaly accounting.
//!
//! Clients log every write together with the set of writes whose values
//! they had observed. Observation is the *definition* of causal
//! dependency, independent of any clock mechanism — so from these logs
//! the oracle rebuilds the true causal partial order and audits what the
//! store kept:
//!
//! * a **lost update** is an acknowledged write that no other surviving
//!   write causally dominates, yet is absent from the converged state;
//! * **false concurrency** is a surviving pair where one write truly
//!   dominates the other (the dominated one should have been discarded).
//!
//! The paper's claims 4 and 5 are quantified exactly in these terms.

use std::collections::{BTreeMap, BTreeSet};

use crate::client::WriteLogEntry;
use crate::value::{Key, WriteId};

/// The reconstructed ground-truth causal order over writes.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Transitive causal past of each write (excluding itself).
    past: BTreeMap<WriteId, BTreeSet<WriteId>>,
    /// All writes per key, with ack status.
    writes: BTreeMap<Key, Vec<(WriteId, bool)>>,
}

impl Oracle {
    /// Builds the oracle from all clients' logs.
    ///
    /// Observation references are acyclic (a client can only observe
    /// completed writes), so the closure terminates.
    #[must_use]
    pub fn from_logs<'a>(logs: impl IntoIterator<Item = &'a WriteLogEntry>) -> Self {
        let mut direct: BTreeMap<WriteId, Vec<WriteId>> = BTreeMap::new();
        let mut writes: BTreeMap<Key, Vec<(WriteId, bool)>> = BTreeMap::new();
        for e in logs {
            direct.insert(e.id, e.observed.clone());
            writes
                .entry(e.key.clone())
                .or_default()
                .push((e.id, e.acked));
        }
        // iterative transitive closure (small graphs; fixpoint loop)
        let mut past: BTreeMap<WriteId, BTreeSet<WriteId>> = direct
            .iter()
            .map(|(id, obs)| (*id, obs.iter().copied().collect()))
            .collect();
        loop {
            let mut changed = false;
            let ids: Vec<WriteId> = past.keys().copied().collect();
            for id in &ids {
                let mut extra: BTreeSet<WriteId> = BTreeSet::new();
                for dep in &past[id] {
                    if let Some(dep_past) = past.get(dep) {
                        for d in dep_past {
                            if !past[id].contains(d) {
                                extra.insert(*d);
                            }
                        }
                    }
                }
                if !extra.is_empty() {
                    past.get_mut(id).expect("id present").extend(extra);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Oracle { past, writes }
    }

    /// Whether `a` is in the true causal past of `b`.
    #[must_use]
    pub fn truly_precedes(&self, a: WriteId, b: WriteId) -> bool {
        a != b && self.past.get(&b).is_some_and(|p| p.contains(&a))
    }

    /// All keys that were written.
    #[must_use]
    pub fn keys(&self) -> Vec<Key> {
        self.writes.keys().cloned().collect()
    }

    /// The acknowledged writes to `key` that are causally maximal among
    /// all writes to that key — what a correct store must still hold (or
    /// dominate) after convergence.
    #[must_use]
    pub fn expected_frontier(&self, key: &[u8]) -> BTreeSet<WriteId> {
        let all: Vec<(WriteId, bool)> = self.writes.get(key).cloned().unwrap_or_default();
        all.iter()
            .filter(|(id, acked)| {
                *acked
                    && !all
                        .iter()
                        .any(|(other, _)| other != id && self.truly_precedes(*id, *other))
            })
            .map(|(id, _)| *id)
            .collect()
    }

    /// Audits one key's converged sibling set. Returns
    /// `(lost_updates, false_concurrency_pairs)`.
    #[must_use]
    pub fn audit_key(&self, key: &[u8], surviving: &BTreeSet<WriteId>) -> (u64, u64) {
        let expected = self.expected_frontier(key);
        // Lost: expected but absent, and not dominated by any survivor
        // (a survivor that truly dominates it legitimately replaced it —
        // possible when an unacked later write landed).
        let lost = expected
            .iter()
            .filter(|id| {
                !surviving.contains(id) && !surviving.iter().any(|s| self.truly_precedes(**id, *s))
            })
            .count() as u64;
        // False concurrency: ordered pairs presented as siblings.
        let survivors: Vec<WriteId> = surviving.iter().copied().collect();
        let mut false_pairs = 0u64;
        for (i, a) in survivors.iter().enumerate() {
            for b in &survivors[i + 1..] {
                if self.truly_precedes(*a, *b) || self.truly_precedes(*b, *a) {
                    false_pairs += 1;
                }
            }
        }
        (lost, false_pairs)
    }
}

/// Aggregate audit of a converged cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnomalyReport {
    /// Total writes issued (acked or not).
    pub total_writes: u64,
    /// Acknowledged writes.
    pub acked_writes: u64,
    /// Acknowledged, causally-maximal writes missing from the converged
    /// state without a dominating survivor.
    pub lost_updates: u64,
    /// Surviving pairs that are truly ordered but presented as siblings.
    pub false_concurrency: u64,
    /// Total surviving sibling values across keys.
    pub surviving_values: u64,
    /// Keys audited.
    pub keys: u64,
}

impl AnomalyReport {
    /// Whether the store tracked causality perfectly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.lost_updates == 0 && self.false_concurrency == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvv::ClientId;

    fn w(c: u64, s: u64) -> WriteId {
        WriteId::new(ClientId(c), s)
    }

    fn entry(key: &[u8], id: WriteId, observed: &[WriteId], acked: bool) -> WriteLogEntry {
        WriteLogEntry {
            key: key.to_vec(),
            id,
            observed: observed.to_vec(),
            acked,
        }
    }

    #[test]
    fn closure_is_transitive() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[w(1, 1)], true),
            entry(b"k", w(3, 1), &[w(2, 1)], true),
        ];
        let o = Oracle::from_logs(&logs);
        assert!(o.truly_precedes(w(1, 1), w(3, 1)), "transitively");
        assert!(o.truly_precedes(w(2, 1), w(3, 1)));
        assert!(!o.truly_precedes(w(3, 1), w(1, 1)));
        assert!(!o.truly_precedes(w(1, 1), w(1, 1)), "irreflexive");
    }

    #[test]
    fn frontier_is_the_maximal_acked_writes() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[w(1, 1)], true), // dominates w1
            entry(b"k", w(3, 1), &[], true),        // concurrent with both
        ];
        let o = Oracle::from_logs(&logs);
        let f = o.expected_frontier(b"k");
        assert_eq!(f, [w(2, 1), w(3, 1)].into_iter().collect());
    }

    #[test]
    fn unacked_writes_are_not_expected() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[], false), // never acked
        ];
        let o = Oracle::from_logs(&logs);
        assert_eq!(o.expected_frontier(b"k"), [w(1, 1)].into_iter().collect());
    }

    #[test]
    fn audit_detects_lost_update() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[], true), // concurrent
        ];
        let o = Oracle::from_logs(&logs);
        // store kept only w2 — w1 was destroyed (Figure 1b style)
        let surviving: BTreeSet<WriteId> = [w(2, 1)].into_iter().collect();
        let (lost, fc) = o.audit_key(b"k", &surviving);
        assert_eq!(lost, 1);
        assert_eq!(fc, 0);
    }

    #[test]
    fn audit_detects_false_concurrency() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[w(1, 1)], true), // truly dominates w1
        ];
        let o = Oracle::from_logs(&logs);
        // store kept both as siblings — pruning-style anomaly
        let surviving: BTreeSet<WriteId> = [w(1, 1), w(2, 1)].into_iter().collect();
        let (lost, fc) = o.audit_key(b"k", &surviving);
        assert_eq!(lost, 0);
        assert_eq!(fc, 1);
    }

    #[test]
    fn clean_store_audits_clean() {
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[w(1, 1)], true),
            entry(b"k", w(3, 1), &[w(1, 1)], true), // concurrent with w2
        ];
        let o = Oracle::from_logs(&logs);
        let surviving: BTreeSet<WriteId> = [w(2, 1), w(3, 1)].into_iter().collect();
        let (lost, fc) = o.audit_key(b"k", &surviving);
        assert_eq!((lost, fc), (0, 0));
    }

    #[test]
    fn dominated_absence_is_not_lost() {
        // w1 acked and maximal-looking at ack time, but an unacked w2
        // observed it and survived: w1's absence is legitimate.
        let logs = vec![
            entry(b"k", w(1, 1), &[], true),
            entry(b"k", w(2, 1), &[w(1, 1)], false),
        ];
        let o = Oracle::from_logs(&logs);
        let surviving: BTreeSet<WriteId> = [w(2, 1)].into_iter().collect();
        let (lost, fc) = o.audit_key(b"k", &surviving);
        assert_eq!((lost, fc), (0, 0));
    }

    #[test]
    fn keys_lists_written_keys() {
        let logs = vec![
            entry(b"a", w(1, 1), &[], true),
            entry(b"b", w(1, 2), &[], true),
        ];
        let o = Oracle::from_logs(&logs);
        assert_eq!(o.keys(), vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn report_is_clean_logic() {
        let mut r = AnomalyReport::default();
        assert!(r.is_clean());
        r.lost_updates = 1;
        assert!(!r.is_clean());
    }
}
