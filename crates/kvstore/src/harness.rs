//! [`FleetHarness`]: one measurement-and-audit surface for every driver.
//!
//! Three drivers run the same protocol logic behind [`crate::ctx::NodeCtx`]
//! — the deterministic simulator ([`crate::cluster::Cluster`]), the
//! threaded in-process runtime (`runtime::RuntimeFleet`) and the socket
//! driver (`transport::SocketFleet`). Each used to hand-copy the
//! measurement surface (`oracle` / `converge` / `anomaly_report` / …),
//! and every copy was a place for the audits to drift apart. This trait
//! inverts that: a driver provides *accessors* (which servers are
//! members, how to reach a node, which view the audit runs against) and
//! inherits the whole surface as provided methods — one implementation,
//! shared verbatim by every present and future driver.
//!
//! The free functions at the bottom ([`audit_fleet`] and its parts) are
//! the conformance audit stack the cross-driver suites assert: one ring
//! view, pairwise AAE equivalence, zero residual copies, oracle-clean
//! convergence. They are deliberately library code, not test code, so
//! the simnet, threaded and socket suites all call the same functions.

use std::collections::{BTreeMap, BTreeSet};

use dvv::mechanisms::Mechanism;
use dvv::ReplicaId;
use ring::RingView;

use crate::client::ClientNode;
use crate::cluster::LatencyReport;
use crate::messages::WireStats;
use crate::node::StoreNode;
use crate::oracle::{AnomalyReport, Oracle};
use crate::value::{Key, StampedValue, WriteId};

/// A fleet of store servers and closed-loop clients, post-run: the
/// driver-agnostic audit and measurement surface.
///
/// Implementors provide the accessor methods; the measurement surface
/// (`oracle`, `converge`, `anomaly_report`, `residual_copies`,
/// `latency_report`, `wire_report`) comes as provided methods so every
/// driver shares one implementation.
///
/// Server indices are driver-level slot indices: `server_ref(i)` must
/// accept every index in [`FleetHarness::member_servers`] (and
/// [`FleetHarness::ledger_servers`]), and slot `i` hosts replica
/// `ReplicaId(i)` — the invariant every driver maintains.
pub trait FleetHarness<M: Mechanism<StampedValue>> {
    /// The causality mechanism the fleet runs.
    fn mechanism(&self) -> &M;

    /// The server slots currently in the ring, ascending. Audits span
    /// exactly these.
    fn member_servers(&self) -> Vec<usize>;

    /// The server slots whose wire ledgers [`FleetHarness::wire_report`]
    /// folds. Defaults to the members; a driver that keeps retired
    /// nodes' ledgers around (the simulator's dormant spares still
    /// gossip) widens this.
    fn ledger_servers(&self) -> Vec<usize> {
        self.member_servers()
    }

    /// Number of client sessions.
    fn client_count(&self) -> usize;

    /// Read access to server `i`'s store node.
    fn server_ref(&self, i: usize) -> &StoreNode<M>;

    /// Mutable access to server `i`'s store node (harness convergence).
    fn server_mut_ref(&mut self, i: usize) -> &mut StoreNode<M>;

    /// Read access to client `j`'s session node.
    fn client_ref(&self, j: usize) -> &ClientNode<M>;

    /// The ring view ownership audits run against — the driver's
    /// canonical membership (control-plane view, or genesis view plus
    /// applied membership events).
    fn audit_view(&self) -> &RingView<ReplicaId>;

    // ---- provided: the one measurement surface ----

    /// Builds the ground-truth oracle from all client write logs.
    fn oracle(&self) -> Oracle {
        Oracle::from_logs((0..self.client_count()).flat_map(|j| self.client_ref(j).write_log()))
    }

    /// Deterministically merges every key across all member servers
    /// until a fixpoint — the "infinite anti-entropy" end state the
    /// oracle audits are defined against. Bypasses the network
    /// (test-harness operation).
    fn converge(&mut self) {
        let mech = self.mechanism().clone();
        let members = self.member_servers();
        loop {
            let mut global: BTreeMap<Key, M::State> = BTreeMap::new();
            for &i in &members {
                for (k, st) in self.server_ref(i).data() {
                    let entry = global.entry(k.clone()).or_default();
                    mech.merge(entry, st);
                }
            }
            let mut changed = false;
            for &i in &members {
                let s = self.server_mut_ref(i);
                for (k, st) in &global {
                    let before = s.data().get(k).cloned();
                    s.merge_state_direct(k, st);
                    if s.data().get(k) != before.as_ref() {
                        changed = true;
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// The surviving write ids for `key` at server `i` (tombstones
    /// included — they are writes).
    fn surviving_at(&self, i: usize, key: &[u8]) -> BTreeSet<WriteId> {
        match self.server_ref(i).data().get(key) {
            None => BTreeSet::new(),
            Some(st) => {
                let (values, _) = self.mechanism().read(st);
                values.into_iter().map(|v| v.id).collect()
            }
        }
    }

    /// Audits the converged store against the oracle. Call after the
    /// run plus [`FleetHarness::converge`].
    fn anomaly_report(&self) -> AnomalyReport {
        let oracle = self.oracle();
        let mut report = AnomalyReport::default();
        for j in 0..self.client_count() {
            for e in self.client_ref(j).write_log() {
                report.total_writes += 1;
                if e.acked {
                    report.acked_writes += 1;
                }
            }
        }
        let audit_slot = *self
            .member_servers()
            .first()
            .expect("at least one member server");
        for key in oracle.keys() {
            report.keys += 1;
            let surviving = self.surviving_at(audit_slot, &key);
            report.surviving_values += surviving.len() as u64;
            let (lost, fc) = oracle.audit_key(&key, &surviving);
            report.lost_updates += lost;
            report.false_concurrency += fc;
        }
        report
    }

    /// The residual-copy audit: every `(member slot, key)` pair where a
    /// member holds a key outside the key's current preference list.
    /// Must be empty after a quiescent period.
    fn residual_copies(&self) -> Vec<(usize, Key)> {
        let members = self.member_servers();
        let first = *members.first().expect("at least one member server");
        let config = self.server_ref(first).config();
        let (n, vnodes) = (config.n, config.vnodes);
        let ring = self.audit_view().to_ring(vnodes);
        let mut out = Vec::new();
        for i in members {
            let me = ReplicaId(i as u32);
            for key in self.server_ref(i).data().keys() {
                if !ring.preference_list(key, n).contains(&me) {
                    out.push((i, key.clone()));
                }
            }
        }
        out
    }

    /// Fleet-wide dot census: every `(key, actor, counter)` triple
    /// tagging a live value on any member server, mapped to the set of
    /// distinct write ids it tags. A dot is the *identity* of a write —
    /// the whole mechanism rests on one dot naming one write — so every
    /// set must be a singleton. Two ids under one dot is the dot-reuse
    /// corruption the epoch guard exists to prevent (a post-crash node
    /// re-minting a counter that already escaped to a peer).
    ///
    /// Audit this **before** [`FleetHarness::converge`]: merge dedupes
    /// *by dot*, so converging first silently collapses exactly the
    /// collision this census exists to catch.
    fn dot_census(&self) -> BTreeMap<(Key, ReplicaId, u64), BTreeSet<WriteId>> {
        let mech = self.mechanism();
        let mut census: BTreeMap<(Key, ReplicaId, u64), BTreeSet<WriteId>> = BTreeMap::new();
        for i in self.member_servers() {
            for (key, st) in self.server_ref(i).data() {
                for ((actor, counter), v) in mech.dot_map(st) {
                    census
                        .entry((key.clone(), actor, counter))
                        .or_default()
                        .insert(v.id);
                }
            }
        }
        census
    }

    /// Aggregates all clients' latency statistics.
    fn latency_report(&self) -> LatencyReport {
        let mut out = LatencyReport::default();
        for j in 0..self.client_count() {
            let s = self.client_ref(j).stats();
            out.get.merge(&s.get_latency);
            out.put.merge(&s.put_latency);
            out.failed_cycles += s.failed_cycles;
            out.retries += s.retries;
        }
        out
    }

    /// Sums every node's per-class wire counters — the fleet-wide
    /// bytes-on-the-wire ledger.
    fn wire_report(&self) -> WireStats {
        let mut out = WireStats::default();
        for i in self.ledger_servers() {
            out.absorb(&self.server_ref(i).wire_stats());
        }
        for j in 0..self.client_count() {
            out.absorb(&self.client_ref(j).wire_stats());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The cross-driver conformance audit stack.

/// Asserts every member server gossiped to one ring view.
///
/// # Panics
///
/// Panics (with `label`) if any two members' view digests differ.
pub fn assert_one_view<M, H>(fleet: &H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    let members = fleet.member_servers();
    let first = *members.first().expect("at least one member server");
    let digest0 = fleet.server_ref(first).view_digest();
    for &i in &members {
        assert_eq!(
            fleet.server_ref(i).view_digest(),
            digest0,
            "{label}: server {i} view digest diverged"
        );
    }
}

/// Asserts each member pair's shared Merkle summaries agree
/// leaf-for-leaf — the anti-entropy definition of "replicas converged".
/// On a mismatch, panics with per-key diffs and per-server AAE counters.
///
/// # Panics
///
/// Panics (with `label` and diagnostics) on any divergent pair.
pub fn assert_aae_equivalent<M, H>(fleet: &H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    let members = fleet.member_servers();
    for (x, &i) in members.iter().enumerate() {
        for &j in &members[x + 1..] {
            let a = fleet
                .server_ref(i)
                .rebuild_shared_summary(ReplicaId(j as u32));
            let b = fleet
                .server_ref(j)
                .rebuild_shared_summary(ReplicaId(i as u32));
            if a.leaves() == b.leaves() {
                continue;
            }
            let al: BTreeMap<_, _> = a.leaves().into_iter().collect();
            let bl: BTreeMap<_, _> = b.leaves().into_iter().collect();
            let mut detail = String::new();
            for (k, h) in &al {
                if bl.get(k) != Some(h) {
                    detail.push_str(&format!(
                        "\n  key {:?}: {i}={:?} vs {j}={:?}",
                        String::from_utf8_lossy(k),
                        fleet.server_ref(i).data().get(k),
                        fleet.server_ref(j).data().get(k),
                    ));
                }
            }
            for k in bl.keys() {
                if !al.contains_key(k) {
                    detail.push_str(&format!(
                        "\n  key {:?}: missing on {i}",
                        String::from_utf8_lossy(k)
                    ));
                }
            }
            let diag: Vec<String> = members
                .iter()
                .map(|&s| {
                    let st = fleet.server_ref(s).stats();
                    format!(
                        "server {s}: rounds={} divergent={}",
                        st.aae_rounds, st.aae_divergent
                    )
                })
                .collect();
            panic!(
                "{label}: servers {i}/{j} not AAE-equivalent\n{}\ndiffering keys:{detail}",
                diag.join("\n")
            );
        }
    }
}

/// Asserts no member holds a key outside its preference list.
///
/// # Panics
///
/// Panics (with `label`) listing any residual copies.
pub fn assert_no_residuals<M, H>(fleet: &H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    let residuals = fleet.residual_copies();
    assert!(
        residuals.is_empty(),
        "{label}: residual copies after quiesce: {residuals:?}"
    );
}

/// Asserts the fleet-wide dot-uniqueness invariant: no
/// `(key, actor, counter)` triple tags two distinct writes anywhere in
/// the fleet ([`FleetHarness::dot_census`]). Runs against the raw
/// pre-converge states — the only place a dot collision is still
/// observable, since merge dedupes by dot.
///
/// # Panics
///
/// Panics (with `label`) listing every colliding dot and the write ids
/// it tags.
pub fn assert_dot_unique<M, H>(fleet: &H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    let collisions: Vec<String> = fleet
        .dot_census()
        .into_iter()
        .filter(|(_, ids)| ids.len() > 1)
        .map(|((key, actor, counter), ids)| {
            format!(
                "\n  key {:?} dot ({actor:?}, {counter}) tags {} writes: {ids:?}",
                String::from_utf8_lossy(&key),
                ids.len()
            )
        })
        .collect();
    assert!(
        collisions.is_empty(),
        "{label}: dot reused for distinct writes (minting collided across a crash?):{}",
        collisions.join("")
    );
}

/// Fleet-wide dot census over the *durable log histories* under `dir`
/// (the [`crate::cluster::EngineFactory::log_in`] layout, one
/// `node-<slot>.log` per server): every `(key, actor, counter)` triple
/// tagging a value in any put record ever durably applied by any slot,
/// mapped to the distinct write ids it tagged.
///
/// This is the census's strong form. The live-state census
/// ([`FleetHarness::dot_census`]) only sees a collision while both
/// bearers are live — a re-minted dot's first bearer is usually
/// *dominated* (any later write whose context saw the dot discards
/// both values) before a quiesced fleet can be audited, erasing the
/// evidence and leaving a silently lost acked write. Append-only logs
/// don't forget: the first bearer sits in the survivor's history, the
/// re-mint in the recovered node's, and the union convicts. Sync every
/// engine first (buffered records aren't in the files).
///
/// # Errors
///
/// Propagates I/O errors from reading the log files; a missing file is
/// an empty history (a slot that never synced).
pub fn dot_census_in_logs<M>(
    mech: &M,
    dir: &std::path::Path,
    slots: impl IntoIterator<Item = usize>,
) -> std::io::Result<BTreeMap<(Key, ReplicaId, u64), BTreeSet<WriteId>>>
where
    M: Mechanism<StampedValue>,
    M::State: dvv::encode::Encode,
{
    let mut census: BTreeMap<(Key, ReplicaId, u64), BTreeSet<WriteId>> = BTreeMap::new();
    for slot in slots {
        let path = dir.join(format!("node-{slot}.log"));
        for (key, st) in storage::scan_history::<M::State>(&path)? {
            for ((actor, counter), v) in mech.dot_map(&st) {
                census
                    .entry((key.clone(), actor, counter))
                    .or_default()
                    .insert(v.id);
            }
        }
    }
    Ok(census)
}

/// Asserts dot uniqueness over the durable log histories
/// ([`dot_census_in_logs`]) — no `(key, actor, counter)` triple may
/// ever have tagged two distinct writes, across everything any slot
/// durably applied.
///
/// # Panics
///
/// Panics (with `label`) listing every colliding dot, or on log I/O
/// errors.
pub fn assert_dot_unique_in_logs<M>(
    mech: &M,
    dir: &std::path::Path,
    slots: impl IntoIterator<Item = usize>,
    label: &str,
) where
    M: Mechanism<StampedValue>,
    M::State: dvv::encode::Encode,
{
    let census = dot_census_in_logs(mech, dir, slots).expect("scan log histories");
    let collisions: Vec<String> = census
        .into_iter()
        .filter(|(_, ids)| ids.len() > 1)
        .map(|((key, actor, counter), ids)| {
            format!(
                "\n  key {:?} dot ({actor:?}, {counter}) tagged {} writes: {ids:?}",
                String::from_utf8_lossy(&key),
                ids.len()
            )
        })
        .collect();
    assert!(
        collisions.is_empty(),
        "{label}: dot re-minted for distinct writes across the log histories:{}",
        collisions.join("")
    );
}

/// Converges the fleet and asserts the oracle audit is clean: zero lost
/// updates, zero false concurrency, and at least one acked write (an
/// all-failed workload would pass the other audits vacuously).
///
/// # Panics
///
/// Panics (with `label`) on any oracle anomaly.
pub fn assert_oracle_clean<M, H>(fleet: &mut H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    fleet.converge();
    let anomalies = fleet.anomaly_report();
    assert_eq!(
        anomalies.lost_updates, 0,
        "{label}: lost updates: {anomalies:?}"
    );
    assert_eq!(
        anomalies.false_concurrency, 0,
        "{label}: false concurrency: {anomalies:?}"
    );
    assert!(anomalies.acked_writes > 0, "{label}: no writes acked");
}

/// The full cross-driver conformance audit stack, in dependency order:
/// one ring view, pairwise AAE equivalence, zero residual copies,
/// fleet-wide dot uniqueness, then the destructive harness converge
/// plus oracle audit. Residuals and dot uniqueness are audited *before*
/// the converge, which fabricates residuals and collapses dot
/// collisions by design.
///
/// # Panics
///
/// Panics (with `label`) on the first failed audit.
pub fn audit_fleet<M, H>(fleet: &mut H, label: &str)
where
    M: Mechanism<StampedValue>,
    H: FleetHarness<M> + ?Sized,
{
    assert_one_view(fleet, label);
    assert_aae_equivalent(fleet, label);
    assert_no_residuals(fleet, label);
    assert_dot_unique(fleet, label);
    assert_oracle_clean(fleet, label);
}
