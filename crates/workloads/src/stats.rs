//! Result summarisation: [`Histogram`] with percentiles and streaming
//! [`Summary`] statistics.

use core::fmt;

/// A log₂-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes in bytes…).
///
/// Buckets are `[2^k, 2^(k+1))` with an exact bucket for zero, giving
/// ≤ 50% relative error on percentile queries across any range without
/// configuration — sufficient for reproducing the *shape* of latency
/// results.
///
/// # Examples
///
/// ```
/// use workloads::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 200 && h.percentile(0.5) <= 511);
/// assert!(h.percentile(1.0) >= 8192);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[k]` counts `[2^(k-1), 2^k)`.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`): an upper bound of the
    /// bucket containing the sample, clamped to the recorded min/max.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.max()
        )
    }
}

/// Streaming min/mean/max of `f64` samples.
///
/// # Examples
///
/// ```
/// use workloads::Summary;
/// let mut s = Summary::new();
/// s.record(1.0);
/// s.record(3.0);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.percentile(0.0), 42, "clamped to min");
        assert_eq!(h.percentile(1.0), 42, "clamped to max");
    }

    #[test]
    fn zeros_have_an_exact_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        // true median 500; bucket [512,1024) upper bound 1023, bucket
        // [256,512) upper 511 — p50 must be one of the two boundaries
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p100 = h.percentile(1.0);
        assert_eq!(p100, 1000);
        assert!(h.percentile(0.01) <= 31);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.mean() > 1e18);
    }

    #[test]
    fn display_shows_key_stats() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("mean=10.0"), "{s}");
    }

    #[test]
    fn summary_basics() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        let mut s = Summary::new();
        s.record(-2.0);
        s.record(4.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.sum(), 2.0);
    }
}
