//! # workloads — generators and statistics for the DVV evaluation
//!
//! The paper's evaluation exercises a key-value store with populations of
//! clients doing read-modify-write cycles over skewed key spaces. This
//! crate generates those workloads deterministically and summarises the
//! results:
//!
//! * [`zipf::Zipf`] — skewed popularity sampling,
//! * [`keys::KeySpace`] — named keys with uniform or Zipfian popularity,
//! * [`ops::OpGenerator`] — read/write operation streams,
//! * [`churn::ChurnPlan`] — deterministic elastic-membership schedules
//!   (node joins/leaves to replay while a workload runs),
//! * [`stats::Histogram`] — log-bucketed latency/size histograms with
//!   percentiles,
//! * [`stats::Summary`] — streaming mean/min/max.
//!
//! The generators consume caller-supplied uniform draws (`f64` in
//! `[0, 1)`), staying decoupled from the simulator's RNG type:
//!
//! ```
//! use workloads::{KeySpace, OpGenerator, OpMix, Popularity};
//!
//! let keys = KeySpace::new("cart", 1000, Popularity::Zipf(1.0));
//! let generator = OpGenerator::new(keys, OpMix::default());
//! let op = generator.op(0.9, 0.01); // write to a very popular key
//! assert!(op.is_put());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod keys;
pub mod ops;
pub mod stats;
pub mod zipf;

pub use churn::{churn_seeds, ChurnAction, ChurnEvent, ChurnPlan};
pub use keys::{KeySpace, Popularity};
pub use ops::{Op, OpGenerator, OpMix};
pub use stats::{Histogram, Summary};
pub use zipf::Zipf;
