//! [`KeySpace`]: named keys with configurable popularity.

use crate::zipf::Zipf;

/// How key popularity is distributed.
#[derive(Clone, Debug)]
pub enum Popularity {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given exponent (1.0 ≈ web-object popularity).
    Zipf(f64),
}

/// A fixed universe of keys with a popularity distribution.
///
/// # Examples
///
/// ```
/// use workloads::{KeySpace, Popularity};
/// let ks = KeySpace::new("cart", 100, Popularity::Zipf(1.0));
/// let k = ks.key_at(0);
/// assert_eq!(k, b"cart:0".to_vec());
/// assert_eq!(ks.len(), 100);
/// // skew: rank 0 is sampled most often
/// assert_eq!(ks.sample(0.0), 0);
/// ```
#[derive(Clone, Debug)]
pub struct KeySpace {
    prefix: String,
    count: usize,
    zipf: Option<Zipf>,
}

impl KeySpace {
    /// Creates a key space of `count` keys named `prefix:<rank>`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(prefix: &str, count: usize, popularity: Popularity) -> Self {
        assert!(count > 0, "key space must have at least one key");
        let zipf = match popularity {
            Popularity::Uniform => None,
            Popularity::Zipf(alpha) => Some(Zipf::new(count, alpha)),
        };
        KeySpace {
            prefix: prefix.to_owned(),
            count,
            zipf,
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the space is empty (never true; see `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The byte name of the key at `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn key_at(&self, rank: usize) -> Vec<u8> {
        assert!(rank < self.count, "rank {rank} out of range");
        format!("{}:{}", self.prefix, rank).into_bytes()
    }

    /// Maps a uniform draw `u ∈ [0,1)` to a key rank according to the
    /// popularity distribution.
    #[must_use]
    pub fn sample(&self, u: f64) -> usize {
        match &self.zipf {
            None => {
                let u = u.clamp(0.0, 1.0 - f64::EPSILON);
                ((u * self.count as f64) as usize).min(self.count - 1)
            }
            Some(z) => z.sample(u),
        }
    }

    /// Convenience: sample a rank and return its key name.
    #[must_use]
    pub fn sample_key(&self, u: f64) -> Vec<u8> {
        self.key_at(self.sample(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_names_are_stable_and_distinct() {
        let ks = KeySpace::new("k", 10, Popularity::Uniform);
        assert_eq!(ks.key_at(3), b"k:3".to_vec());
        assert_ne!(ks.key_at(3), ks.key_at(4));
    }

    #[test]
    fn uniform_sampling_covers_space() {
        let ks = KeySpace::new("k", 4, Popularity::Uniform);
        assert_eq!(ks.sample(0.0), 0);
        assert_eq!(ks.sample(0.49), 1);
        assert_eq!(ks.sample(0.99), 3);
        assert_eq!(ks.sample(1.0), 3, "clamped");
    }

    #[test]
    fn zipf_sampling_prefers_head() {
        let ks = KeySpace::new("k", 100, Popularity::Zipf(1.2));
        assert_eq!(ks.sample(0.0), 0);
        assert!(ks.sample(0.10) <= 1);
    }

    #[test]
    fn sample_key_matches_key_at() {
        let ks = KeySpace::new("pre", 5, Popularity::Uniform);
        let rank = ks.sample(0.7);
        assert_eq!(ks.sample_key(0.7), ks.key_at(rank));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        let _ = KeySpace::new("k", 2, Popularity::Uniform).key_at(2);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_space_rejected() {
        let _ = KeySpace::new("k", 0, Popularity::Uniform);
    }
}
