//! [`Zipf`]: skewed popularity sampling.

/// A Zipf(α) distribution over ranks `0..n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k+1)^α`. The CDF is precomputed, so sampling is a binary search —
/// O(log n) per draw and exact.
///
/// # Examples
///
/// ```
/// use workloads::Zipf;
/// let z = Zipf::new(100, 1.0);
/// // rank 0 is the most popular
/// assert_eq!(z.sample(0.0), 0);
/// assert_eq!(z.len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `alpha`.
    /// `alpha = 0` degenerates to uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true — `new` requires
    /// `n > 0`; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a rank.
    #[must_use]
    pub fn sample(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = Zipf::new(50, 1.2);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(z.cdf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(z.sample(0.10), 0);
        assert_eq!(z.sample(0.30), 1);
        assert_eq!(z.sample(0.60), 2);
        assert_eq!(z.sample(0.90), 3);
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // top-10 of Zipf(1) over 1000 ranks carries ≈ 39% of the mass
        let top10: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!(top10 > 0.3, "top-10 mass {top10}");
    }

    #[test]
    fn sample_boundaries() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(1.0), 9, "u=1.0 is clamped into range");
        assert_eq!(z.sample(2.0), 9);
        assert_eq!(z.sample(-1.0), 0);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        assert_eq!(z.sample(0.7), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_alpha_rejected() {
        let _ = Zipf::new(5, -1.0);
    }
}
