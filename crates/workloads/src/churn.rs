//! Elastic-churn scenario plans: deterministic schedules of node
//! join/leave events to replay against a cluster while a workload runs.
//!
//! Like the other generators in this crate, plans are built either from
//! explicit parameters or from caller-supplied uniform draws, keeping the
//! module decoupled from any particular RNG.

/// One membership change in a churn scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnAction {
    /// Activate the given spare server slot.
    Join(usize),
    /// Drain and retire the given member server slot.
    Leave(usize),
}

/// A membership change scheduled at a virtual-time offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Microseconds of workload to run before this event.
    pub after_micros: u64,
    /// The membership change to apply.
    pub action: ChurnAction,
}

/// A deterministic schedule of join/leave events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// A plan that joins every spare slot and then leaves every listed
    /// member, with `gap_micros` of workload between consecutive events.
    ///
    /// The canonical elastic smoke scenario: grow, then shrink back.
    #[must_use]
    pub fn grow_then_shrink(spares: &[usize], leavers: &[usize], gap_micros: u64) -> Self {
        let events = spares
            .iter()
            .map(|s| ChurnAction::Join(*s))
            .chain(leavers.iter().map(|l| ChurnAction::Leave(*l)))
            .map(|action| ChurnEvent {
                after_micros: gap_micros,
                action,
            })
            .collect();
        ChurnPlan { events }
    }

    /// Builds a randomized plan from uniform draws in `[0, 1)`: each draw
    /// either joins the lowest dormant spare (draw < `join_bias`) or
    /// retires the highest removable member. Slots that cannot move (no
    /// spare left, or removal would breach `min_members`) yield no event
    /// for that draw, so the plan is always applicable.
    ///
    /// `initial_members` are the slots in the ring at time zero and
    /// `spares` the dormant slots, mirroring the cluster layout.
    #[must_use]
    pub fn from_draws(
        initial_members: &[usize],
        spares: &[usize],
        min_members: usize,
        join_bias: f64,
        gap_micros: u64,
        draws: &[f64],
    ) -> Self {
        let mut members: Vec<usize> = initial_members.to_vec();
        let mut dormant: Vec<usize> = spares.to_vec();
        let mut events = Vec::new();
        for &u in draws {
            if u < join_bias {
                if let Some(slot) = dormant.first().copied() {
                    dormant.remove(0);
                    members.push(slot);
                    events.push(ChurnEvent {
                        after_micros: gap_micros,
                        action: ChurnAction::Join(slot),
                    });
                }
            } else if members.len() > min_members {
                let slot = *members.iter().max().expect("members nonempty");
                members.retain(|m| *m != slot);
                dormant.push(slot);
                dormant.sort_unstable();
                events.push(ChurnEvent {
                    after_micros: gap_micros,
                    action: ChurnAction::Leave(slot),
                });
            }
        }
        ChurnPlan { events }
    }

    /// The scheduled events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The churn-scenario seed list actually run: `base`, extended by the
/// comma-separated `EXTRA_CHURN_SEEDS` environment variable when set.
/// The soak CI lane uses this to widen the cheap PR-gate seed set into a
/// statistically meaningful nightly run without touching the tests.
#[must_use]
pub fn churn_seeds(base: &[u64]) -> Vec<u64> {
    extend_seeds(base, std::env::var("EXTRA_CHURN_SEEDS").ok().as_deref())
}

fn extend_seeds(base: &[u64], extra: Option<&str>) -> Vec<u64> {
    let mut seeds = base.to_vec();
    for tok in extra.unwrap_or_default().split(',') {
        if let Ok(seed) = tok.trim().parse::<u64>() {
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_seeds_parses_dedupes_and_ignores_garbage() {
        assert_eq!(extend_seeds(&[1, 2], None), vec![1, 2]);
        assert_eq!(
            extend_seeds(&[1, 2], Some("7, 2,abc, 9,")),
            vec![1, 2, 7, 9],
            "parsed seeds append, duplicates and garbage are dropped"
        );
        assert_eq!(extend_seeds(&[], Some("")), Vec::<u64>::new());
    }

    #[test]
    fn grow_then_shrink_orders_joins_first() {
        let plan = ChurnPlan::grow_then_shrink(&[3, 4], &[0], 50_000);
        let actions: Vec<ChurnAction> = plan.events().iter().map(|e| e.action).collect();
        assert_eq!(
            actions,
            vec![
                ChurnAction::Join(3),
                ChurnAction::Join(4),
                ChurnAction::Leave(0)
            ]
        );
        assert!(plan.events().iter().all(|e| e.after_micros == 50_000));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn from_draws_is_deterministic_and_respects_bounds() {
        let draws = [0.1, 0.9, 0.2, 0.95, 0.99, 0.05];
        let a = ChurnPlan::from_draws(&[0, 1, 2], &[3, 4], 3, 0.5, 10_000, &draws);
        let b = ChurnPlan::from_draws(&[0, 1, 2], &[3, 4], 3, 0.5, 10_000, &draws);
        assert_eq!(a, b, "same draws, same plan");

        // replay the plan and check it never breaches the bounds
        let mut members = vec![0usize, 1, 2];
        let mut dormant = vec![3usize, 4];
        for e in a.events() {
            match e.action {
                ChurnAction::Join(s) => {
                    assert!(dormant.contains(&s), "join of a non-dormant slot");
                    dormant.retain(|d| *d != s);
                    members.push(s);
                }
                ChurnAction::Leave(s) => {
                    assert!(members.contains(&s), "leave of a non-member");
                    members.retain(|m| *m != s);
                    dormant.push(s);
                    assert!(members.len() >= 3, "breached min_members");
                }
            }
        }
    }

    #[test]
    fn from_draws_skips_impossible_moves() {
        // all-leave draws against a cluster already at the floor
        let plan = ChurnPlan::from_draws(&[0, 1, 2], &[], 3, 0.5, 1, &[0.9, 0.9, 0.9]);
        assert!(plan.is_empty(), "no member can leave at the floor");
        // all-join draws with no spares
        let plan = ChurnPlan::from_draws(&[0, 1, 2], &[], 3, 0.5, 1, &[0.1, 0.1]);
        assert!(plan.is_empty(), "no spare can join");
    }
}
