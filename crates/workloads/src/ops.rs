//! [`OpGenerator`]: deterministic streams of store operations.

use crate::keys::KeySpace;

/// One operation against the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the key (refreshing the client's causal context).
    Get {
        /// Key name.
        key: Vec<u8>,
    },
    /// Read-modify-write: the client writes `value_size` payload bytes
    /// under the context from its latest read of the key.
    Put {
        /// Key name.
        key: Vec<u8>,
        /// Payload size in bytes.
        value_size: usize,
    },
}

impl Op {
    /// The key this operation touches.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Get { key } | Op::Put { key, .. } => key,
        }
    }

    /// Whether this is a write.
    #[must_use]
    pub fn is_put(&self) -> bool {
        matches!(self, Op::Put { .. })
    }
}

/// The read/write mix of a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Payload size for writes, in bytes.
    pub value_size: usize,
}

impl Default for OpMix {
    /// Riak-like session default: 50% reads (every write is preceded by a
    /// read in a read-modify-write loop), 100-byte values.
    fn default() -> Self {
        OpMix {
            read_fraction: 0.5,
            value_size: 100,
        }
    }
}

/// Generates operations for a key space and mix from caller-supplied
/// uniform draws, staying agnostic of the RNG implementation.
///
/// # Examples
///
/// ```
/// use workloads::{KeySpace, OpGenerator, OpMix, Popularity};
/// let ks = KeySpace::new("k", 10, Popularity::Uniform);
/// let generator = OpGenerator::new(ks, OpMix::default());
/// // u_kind < read_fraction → Get; the second draw picks the key
/// let op = generator.op(0.2, 0.0);
/// assert!(!op.is_put());
/// assert_eq!(op.key(), b"k:0");
/// ```
#[derive(Clone, Debug)]
pub struct OpGenerator {
    keys: KeySpace,
    mix: OpMix,
}

impl OpGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(keys: KeySpace, mix: OpMix) -> Self {
        assert!(
            (0.0..=1.0).contains(&mix.read_fraction),
            "read fraction must be a probability"
        );
        OpGenerator { keys, mix }
    }

    /// The key space in use.
    #[must_use]
    pub fn keys(&self) -> &KeySpace {
        &self.keys
    }

    /// Produces one operation from two uniform draws: `u_kind` selects
    /// read vs write, `u_key` selects the key.
    #[must_use]
    pub fn op(&self, u_kind: f64, u_key: f64) -> Op {
        let key = self.keys.sample_key(u_key);
        if u_kind < self.mix.read_fraction {
            Op::Get { key }
        } else {
            Op::Put {
                key,
                value_size: self.mix.value_size,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Popularity;

    fn generator(read_fraction: f64) -> OpGenerator {
        OpGenerator::new(
            KeySpace::new("k", 8, Popularity::Uniform),
            OpMix {
                read_fraction,
                value_size: 64,
            },
        )
    }

    #[test]
    fn mix_splits_reads_and_writes() {
        let g = generator(0.7);
        assert!(!g.op(0.69, 0.0).is_put());
        assert!(g.op(0.71, 0.0).is_put());
    }

    #[test]
    fn all_reads_all_writes() {
        assert!(!generator(1.0).op(0.999, 0.5).is_put());
        assert!(generator(0.0).op(0.0, 0.5).is_put());
    }

    #[test]
    fn put_carries_value_size() {
        match generator(0.0).op(0.5, 0.5) {
            Op::Put { value_size, .. } => assert_eq!(value_size, 64),
            op => panic!("expected put, got {op:?}"),
        }
    }

    #[test]
    fn op_key_accessor() {
        let g = generator(0.5);
        let op = g.op(0.0, 0.0);
        assert_eq!(op.key(), g.keys().key_at(0).as_slice());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_fraction_rejected() {
        let _ = generator(1.5);
    }
}
