//! [`TimerWheel`]: a monotonic-clock timer queue with simulator-matching
//! same-instant semantics.
//!
//! The deterministic simulator documents (and tests, in `simnet`'s
//! `queue.rs`) that events scheduled for the same instant fire in
//! insertion order. The threaded runtime must preserve that contract so
//! node logic written against [`kvstore::ctx::NodeCtx`] behaves the same
//! on both drivers; the shared property test in `tests/timer_order.rs`
//! drives both structures with one schedule and compares pop orders.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// A min-heap timer queue keyed on `(due_micros, insertion_seq)`.
///
/// Unlike the simulator's event queue, the wheel supports true
/// cancellation: cancelled items are tombstoned and lazily skipped, so a
/// [`NodeCtx::cancel_timer`](kvstore::ctx::NodeCtx::cancel_timer) on the
/// runtime actually unschedules the wakeup instead of firing it into a
/// no-op.
#[derive(Debug)]
pub struct TimerWheel<T: Ord + Copy> {
    heap: BinaryHeap<Reverse<(u64, u64, T)>>,
    cancelled: BTreeSet<T>,
    seq: u64,
}

impl<T: Ord + Copy> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Copy> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            seq: 0,
        }
    }

    /// Schedules `item` to fire at `due_micros` (absolute, on whatever
    /// monotonic clock the caller uses). Items due at the same instant
    /// pop in the order they were scheduled.
    pub fn schedule(&mut self, due_micros: u64, item: T) {
        // Re-scheduling a previously cancelled id revives it.
        self.cancelled.remove(&item);
        self.heap.push(Reverse((due_micros, self.seq, item)));
        self.seq += 1;
    }

    /// Unschedules `item`; a no-op if it is not pending.
    pub fn cancel(&mut self, item: T) {
        self.cancelled.insert(item);
    }

    /// The due time of the earliest live timer, if any. Prunes cancelled
    /// entries from the top of the heap as a side effect.
    pub fn next_due(&mut self) -> Option<u64> {
        while let Some(Reverse((due, _, item))) = self.heap.peek().copied() {
            if self.cancelled.remove(&item) {
                self.heap.pop();
                continue;
            }
            return Some(due);
        }
        None
    }

    /// Pops the earliest live timer due at or before `now_micros`.
    pub fn pop_due(&mut self, now_micros: u64) -> Option<T> {
        match self.next_due() {
            Some(due) if due <= now_micros => {
                let Reverse((_, _, item)) = self.heap.pop().expect("peeked");
                Some(item)
            }
            _ => None,
        }
    }

    /// Number of entries in the heap, cancelled tombstones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries remain (live or tombstoned).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.schedule(30, 'c');
        w.schedule(10, 'a');
        w.schedule(10, 'b');
        assert_eq!(w.pop_due(5), None);
        assert_eq!(w.pop_due(10), Some('a'));
        assert_eq!(w.pop_due(10), Some('b'));
        assert_eq!(w.pop_due(10), None);
        assert_eq!(w.pop_due(30), Some('c'));
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_removes_and_reschedule_revives() {
        let mut w = TimerWheel::new();
        w.schedule(10, 1u32);
        w.schedule(20, 2u32);
        w.cancel(1);
        assert_eq!(w.next_due(), Some(20));
        assert_eq!(w.pop_due(100), Some(2));
        assert_eq!(w.pop_due(100), None);
        w.schedule(5, 1);
        assert_eq!(w.pop_due(100), Some(1));
    }
}
