//! # runtime — the kvstore protocol on real threads
//!
//! The deterministic simulator (`simnet`) is one driver for the store's
//! protocol logic; this crate is the other. The *same*
//! [`StoreNode`](kvstore::node::StoreNode) and
//! [`ClientNode`](kvstore::client::ClientNode) code — written against
//! [`kvstore::ctx::NodeCtx`] — runs here on std threads and mpsc
//! channels (no async runtime, nothing vendored beyond std):
//!
//! * one event-loop thread per server, clients partitioned across a
//!   configurable number of worker threads (the bench's 1/4/8 knob);
//! * bounded inboxes — a full inbox is wire loss, which the protocol's
//!   timeouts, retries and anti-entropy already absorb, so no
//!   backpressure deadlock is possible;
//! * a per-node [`TimerWheel`](wheel::TimerWheel) on the monotonic
//!   clock, with the simulator's same-instant FIFO semantics (and real
//!   cancellation, which the simulator approximates by ignoring fires);
//! * per-node seeded [`SimRng`](simnet::SimRng) streams forked exactly
//!   like the simulator forks them;
//! * an optional loss/latency-injecting channel layer ([`FaultPlan`])
//!   so fault scenarios carry over from the simulated suites;
//! * a stall watchdog ([`watchdog`]) that fails a wedged run fast with
//!   per-node inbox depths and last-event timestamps.
//!
//! What this buys over the simulator is *real* concurrency: sustained
//! throughput and tail latency under hundreds of concurrent closed-loop
//! clients (`crates/bench/benches/runtime.rs`), while the simulator
//! remains the conformance oracle — `tests/conformance.rs` runs a
//! seeded workload on both drivers and asserts both fleets converge to
//! AAE-equivalent, residual-audit-clean, anomaly-free states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fleet;
pub mod rtctx;
pub mod watchdog;
pub mod wheel;

pub use fleet::{FleetStats, NodeSnapshot, RunReport, RuntimeFleet};
pub use kvstore::cluster::EngineFactory;
pub use rtctx::RtCtx;
pub use watchdog::{NodeDiag, Progress, StallReport};
pub use wheel::TimerWheel;

use kvstore::config::{ClientConfig, StoreConfig};
use std::time::Duration as StdDuration;

/// Network fault injection for the threaded runtime: the runtime
/// analogue of `simnet::NetworkConfig`'s loss/latency knobs, applied at
/// routing time while a run is active (faults are switched off for the
/// quiesce phase so the fleet can settle).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability of dropping each inter-node message.
    pub drop_probability: f64,
    /// When set, each inter-node message is held back for a uniform
    /// random delay in `[lo, hi]` microseconds.
    pub delay_micros: Option<(u64, u64)>,
    /// Probability a routed inter-node message is delivered *twice*
    /// (the runtime analogue of `simnet::LinkFaults::duplicate_probability`;
    /// with a delay window active, the copy samples its own delay and
    /// usually also arrives out of order).
    pub duplicate_probability: f64,
    /// Probability that, on a routed delivery, one previously captured
    /// frame from the same directed link is re-delivered — a *stale
    /// replay* of arbitrarily old traffic (the runtime analogue of
    /// `simnet::LinkFaults::replay_probability`).
    pub replay_probability: f64,
    /// Server node indices whose worker threads wedge on purpose —
    /// never start, never drain their inbox. For watchdog tests.
    pub hang_servers: Vec<usize>,
}

impl FaultPlan {
    /// True when the plan injects nothing (routing can skip the fault
    /// path entirely).
    pub fn is_noop(&self) -> bool {
        self.drop_probability <= 0.0
            && self.delay_micros.is_none()
            && self.duplicate_probability <= 0.0
            && self.replay_probability <= 0.0
            && self.hang_servers.is_empty()
    }

    /// The runtime counterpart of `simnet::LinkFaults::hostile()`:
    /// heavy duplication and stale replay, plus a small delay window so
    /// copies land out of order. Used by the `NET_FAULTS=hostile`
    /// suites and the crash-mid-burst oracles.
    #[must_use]
    pub fn hostile() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            delay_micros: Some((0, 4_000)),
            duplicate_probability: 0.15,
            replay_probability: 0.05,
            hang_servers: Vec::new(),
        }
    }
}

/// One scheduled crash/respawn of a server during a [`RuntimeFleet`]
/// run: at `kill_after` (wall clock from run start) the server's node is
/// dropped on its worker thread — in-memory state and any storage-engine
/// buffer past the last group sync are gone, like a power cut — and at
/// `respawn_after` it is rebuilt from its engine factory (replaying its
/// durable log when the fleet is durable) and re-admitted **in band**
/// via a fresh-incarnation `Rejoin`.
#[derive(Clone, Copy, Debug)]
pub struct CrashEvent {
    /// Server index to crash.
    pub server: usize,
    /// Wall clock from run start to the kill.
    pub kill_after: StdDuration,
    /// Wall clock from run start to the respawn (must exceed
    /// `kill_after`).
    pub respawn_after: StdDuration,
}

/// Complete configuration of a [`RuntimeFleet`] run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of replica servers (one event-loop thread each).
    pub servers: usize,
    /// Number of closed-loop client sessions.
    pub clients: usize,
    /// Worker threads the client sessions are partitioned across.
    pub client_workers: usize,
    /// Read-modify-write cycles per client.
    pub cycles_per_client: u32,
    /// Store protocol parameters (shared with the simulator driver).
    pub store: StoreConfig,
    /// Client session parameters (its `cycles` field is overridden by
    /// `cycles_per_client`).
    pub client: ClientConfig,
    /// Inbox slots per hosted node; a full inbox drops (wire loss).
    pub inbox_capacity: usize,
    /// Network fault injection while the run is active.
    pub faults: FaultPlan,
    /// The watchdog declares a stall after this long without a single
    /// client op completing.
    pub stall_budget: StdDuration,
    /// Watchdog polling interval.
    pub watchdog_poll: StdDuration,
    /// Hard wall-clock stop for the whole run.
    pub run_budget: StdDuration,
    /// Fault-free settling budget after the last client finishes,
    /// before threads are stopped (lets repairs, handoffs and AAE
    /// land). The fleet exits the quiesce early once repair activity
    /// has been quiet for [`settle_window`](Self::settle_window).
    pub quiesce: StdDuration,
    /// How long the fleet-wide repair counters (AAE divergence, read
    /// repairs, handoffs, transfers) must sit still before the quiesce
    /// is considered settled.
    pub settle_window: StdDuration,
    /// Scheduled server crash/respawn events (see [`CrashEvent`]).
    pub crashes: Vec<CrashEvent>,
}

impl RuntimeConfig {
    /// Returns a copy whose fault plan is set from the `NET_FAULTS`
    /// environment variable: `hostile` switches on
    /// [`FaultPlan::hostile`] (duplication, stale replay, a small delay
    /// window); anything else leaves the plan as configured. The
    /// runtime counterpart of `ClusterConfig::with_env_net_faults`.
    #[must_use]
    pub fn with_env_net_faults(mut self) -> Self {
        if std::env::var("NET_FAULTS").as_deref() == Ok("hostile") {
            let hang = std::mem::take(&mut self.faults.hang_servers);
            self.faults = FaultPlan {
                hang_servers: hang,
                ..FaultPlan::hostile()
            };
        }
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            servers: 3,
            clients: 8,
            client_workers: 2,
            cycles_per_client: 20,
            store: StoreConfig::default(),
            client: ClientConfig::default(),
            inbox_capacity: 1024,
            faults: FaultPlan::default(),
            stall_budget: StdDuration::from_secs(10),
            watchdog_poll: StdDuration::from_millis(25),
            run_budget: StdDuration::from_secs(120),
            quiesce: StdDuration::from_millis(500),
            settle_window: StdDuration::from_millis(400),
            crashes: Vec::new(),
        }
    }
}
