//! [`RtCtx`]: the threaded runtime's implementation of
//! [`kvstore::ctx::NodeCtx`].
//!
//! One `RtCtx` is stacked up per dispatched event (a start, an inbound
//! message, or a timer fire). During the dispatch it buffers everything
//! the node asked for — outbound messages, timer arms, timer cancels —
//! and the hosting worker thread applies the effects afterwards: timers
//! go into the node's [`TimerWheel`](crate::wheel::TimerWheel), messages
//! are routed through the shared (optionally lossy/laggy) channel layer.
//!
//! Buffering instead of sending inline keeps the dispatch borrow-simple
//! and mirrors the simulator's collect-then-apply structure, so message
//! self-sends and same-instant timers behave identically across drivers.

use dvv::mechanisms::Mechanism;
use kvstore::ctx::NodeCtx;
use kvstore::messages::Msg;
use kvstore::value::StampedValue;
use simnet::{Duration, NodeId, SimRng, SimTime, TimerId};

/// Per-dispatch context handed to a hosted node's `on_start` /
/// `on_message` / `on_timer`.
#[derive(Debug)]
pub struct RtCtx<'a, M: Mechanism<StampedValue>> {
    id: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    mech: M,
    header_bytes: usize,
    next_timer: &'a mut u64,
    /// Messages queued during this dispatch, in send order.
    pub outbox: Vec<(NodeId, Msg<M>)>,
    /// Timers armed during this dispatch: (absolute due time µs, id),
    /// in arm order (the wheel preserves it for same-instant fires).
    pub timer_sets: Vec<(u64, TimerId)>,
    /// Timers cancelled during this dispatch.
    pub timer_cancels: Vec<TimerId>,
}

impl<'a, M: Mechanism<StampedValue>> RtCtx<'a, M> {
    /// Opens a dispatch context at monotonic instant `now` for node `id`.
    pub fn new(
        id: NodeId,
        now: SimTime,
        rng: &'a mut SimRng,
        mech: M,
        header_bytes: usize,
        next_timer: &'a mut u64,
    ) -> Self {
        RtCtx {
            id,
            now,
            rng,
            mech,
            header_bytes,
            next_timer,
            outbox: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
        }
    }
}

impl<M: Mechanism<StampedValue>> NodeCtx<M> for RtCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn send(&mut self, to: NodeId, msg: Msg<M>) -> usize {
        let bytes = msg.wire_size(&self.mech) + self.header_bytes;
        self.outbox.push((to, msg));
        bytes
    }

    fn set_timer(&mut self, delay: Duration) -> TimerId {
        let t = TimerId::from_raw(*self.next_timer);
        *self.next_timer += 1;
        self.timer_sets
            .push((self.now.as_micros() + delay.as_micros(), t));
        t
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.timer_cancels.push(timer);
    }

    fn note(&mut self, _text: String) {
        // The runtime keeps no trace log; notes are a simulator
        // debugging aid.
    }
}
