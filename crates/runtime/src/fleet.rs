//! [`RuntimeFleet`]: hosts the kvstore protocol on real threads.
//!
//! Layout mirrors [`kvstore::cluster::Cluster`]: node ids `0..servers`
//! are replica servers, `servers..servers + clients` are closed-loop
//! client sessions, and the same [`StoreProc`] enum holds either. Each
//! server gets a dedicated event-loop thread; clients are partitioned
//! across `client_workers` threads (the parallelism knob the bench
//! sweeps). Every worker owns a bounded inbox, a
//! [`TimerWheel`](crate::wheel::TimerWheel) per hosted node, and a
//! forked RNG stream, and dispatches the *same* generic
//! `on_start`/`on_message`/`on_timer` code the simulator drives —
//! [`RtCtx`](crate::rtctx::RtCtx) is the only runtime-specific layer a
//! node ever sees.
//!
//! Messages route through `std::sync::mpsc` sync channels. A full inbox
//! drops the message (wire loss; the protocol's timeouts, retries and
//! anti-entropy absorb it), so workers can never deadlock on a send.
//! An optional delayer thread holds back messages sampled into a
//! latency window, and a fault plan can drop messages probabilistically
//! or wedge chosen servers to exercise the stall watchdog.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration as StdDuration, Instant};

use dvv::mechanisms::Mechanism;
use dvv::{ClientId, ReplicaId};
use kvstore::client::ClientNode;
use kvstore::cluster::{EngineFactory, StoreProc};
use kvstore::config::StoreConfig;
use kvstore::harness::FleetHarness;
use kvstore::messages::{Msg, WireStats};
use kvstore::node::{NodeStats, StoreNode};
use kvstore::value::StampedValue;
use ring::{MemberStatus, RingView};
use simnet::{NodeId, SimRng, SimTime, TimerId};
use storage::{MemEngine, StorageEngine};

use crate::rtctx::RtCtx;
use crate::watchdog::{self, Progress, StallReport};
use crate::wheel::TimerWheel;
use crate::{CrashEvent, FaultPlan, RuntimeConfig};

/// Clean AAE rounds every server must initiate, after the last observed
/// repair activity, before the quiesce phase may end early (with 3+
/// servers and random peer choice this gives each pair several chances
/// to detect leftover divergence).
const SETTLE_CLEAN_ROUNDS: u64 = 8;

/// Crash-plane phases: the handshake between the main loop (which
/// drives the crash schedule) and a crashed server's worker thread
/// (which performs the kill and the rebuild in-thread, so the node is
/// never touched from two threads).
const PHASE_RUNNING: u8 = 0;
/// Main loop ordered a kill; the worker has not executed it yet.
const PHASE_KILL: u8 = 1;
/// Worker dropped the node; an inert husk holds the slot.
const PHASE_DOWN: u8 = 2;
/// Main loop ordered a respawn; the worker has not rebuilt yet.
const PHASE_RESPAWN: u8 = 3;

/// One atomic phase per server, shared between the main loop and the
/// server workers (see the `PHASE_*` constants).
#[derive(Debug)]
struct CrashPlane {
    phases: Vec<AtomicU8>,
}

/// Everything a server worker needs to rebuild its node from scratch
/// after a scheduled kill: the same constructor inputs the fleet used
/// at build time, plus the engine factory when the fleet is durable (a
/// log-backed engine replays its durable prefix on open; without a
/// factory the respawn comes back empty, the diskless baseline).
struct RespawnKit<M: Mechanism<StampedValue>> {
    replica: ReplicaId,
    mech: M,
    store: StoreConfig,
    genesis_view: RingView<ReplicaId>,
    factory: Option<EngineFactory<M>>,
}

/// A server worker's handle on the crash schedule: its slot's phase
/// cell plus the rebuild kit.
struct WorkerCrash<M: Mechanism<StampedValue>> {
    server: usize,
    plane: Arc<CrashPlane>,
    kit: RespawnKit<M>,
}

/// Where one scheduled [`CrashEvent`] currently stands in the main
/// loop's state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrashStage {
    Pending,
    Killed,
    Respawning,
    Done,
}

/// An addressed message in flight between nodes.
#[derive(Debug)]
struct Packet<M: Mechanism<StampedValue>> {
    from: NodeId,
    to: NodeId,
    msg: Msg<M>,
}

/// State shared by every thread of a run (mechanism-independent).
/// `shutdown` is its own `Arc` so the watchdog can hold the flag
/// without the rest of the struct.
#[derive(Debug)]
struct Shared {
    origin: Instant,
    faults: FaultPlan,
    faults_on: std::sync::atomic::AtomicBool,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Captured frames kept per directed link for stale-replay injection —
/// same bound as the simulator driver's stash, and for the same reason:
/// replays resurface recent-ish history without hoarding clones.
const REPLAY_STASH_CAP: usize = 16;

/// A worker thread's view of the message fabric: per-node inbox senders
/// plus the fault plan and its RNG stream for loss/latency sampling.
/// Each worker keeps its own replay stash, so a stale replay resurfaces
/// traffic this worker's nodes actually sent on that link.
struct Router<M: Mechanism<StampedValue>> {
    shared: Arc<Shared>,
    progress: Arc<Progress>,
    slots: Vec<SyncSender<Packet<M>>>,
    delayer: Option<Sender<(u64, Packet<M>)>>,
    rng: SimRng,
    replay_stash: BTreeMap<(NodeId, NodeId), Vec<Msg<M>>>,
}

impl<M: Mechanism<StampedValue>> Router<M> {
    fn route(&mut self, from: NodeId, to: NodeId, msg: Msg<M>) {
        // Self-sends bypass fault injection, matching the simulator's
        // reliable zero-delay local delivery.
        if from != to && self.shared.faults_on.load(Ordering::Relaxed) {
            let (drop_p, dup_p, replay_p) = (
                self.shared.faults.drop_probability,
                self.shared.faults.duplicate_probability,
                self.shared.faults.replay_probability,
            );
            if drop_p > 0.0 && self.rng.chance(drop_p) {
                return;
            }
            if dup_p > 0.0 && self.rng.chance(dup_p) {
                self.forward(from, to, msg.clone());
            }
            if replay_p > 0.0 {
                if self.rng.chance(replay_p) {
                    let stale = self.replay_stash.get(&(from, to)).and_then(|stash| {
                        if stash.is_empty() {
                            None
                        } else {
                            let pick = self.rng.next_u64() as usize % stash.len();
                            Some(stash[pick].clone())
                        }
                    });
                    if let Some(stale) = stale {
                        self.forward(from, to, stale);
                    }
                }
                let stash = self.replay_stash.entry((from, to)).or_default();
                if stash.len() >= REPLAY_STASH_CAP {
                    stash.remove(0);
                }
                stash.push(msg.clone());
            }
            self.forward(from, to, msg);
            return;
        }
        deliver(&self.progress, &self.slots, Packet { from, to, msg });
    }

    /// Delivers one (possibly injected) inter-node message, routing it
    /// through the delayer with a freshly sampled delay when the plan
    /// has a latency window — so duplicates and replays each draw their
    /// own delay, like the simulator's independently delayed copies.
    fn forward(&mut self, from: NodeId, to: NodeId, msg: Msg<M>) {
        if let Some((lo, hi)) = self.shared.faults.delay_micros {
            if let Some(tx) = &self.delayer {
                let d = if hi > lo {
                    self.rng.range_u64(lo, hi + 1)
                } else {
                    lo
                };
                let due = self.shared.now_us() + d;
                let _ = tx.send((due, Packet { from, to, msg }));
                return;
            }
        }
        deliver(&self.progress, &self.slots, Packet { from, to, msg });
    }
}

/// Enqueues `pkt` at its destination; a full inbox is wire loss.
fn deliver<M: Mechanism<StampedValue>>(
    progress: &Progress,
    slots: &[SyncSender<Packet<M>>],
    pkt: Packet<M>,
) {
    let to = pkt.to.0 as usize;
    if slots[to].try_send(pkt).is_ok() {
        progress.inbox_depth[to].fetch_add(1, Ordering::Relaxed);
    }
}

/// One node hosted on a worker thread: the protocol state machine plus
/// its runtime-side scheduling state.
#[derive(Debug)]
struct Hosted<M: Mechanism<StampedValue>> {
    id: NodeId,
    proc_: StoreProc<M>,
    rng: SimRng,
    wheel: TimerWheel<TimerId>,
    next_timer: u64,
    was_done: bool,
    last_ops: u64,
}

/// An event to dispatch into a hosted node.
enum Ev<M: Mechanism<StampedValue>> {
    Start,
    Message { from: NodeId, msg: Msg<M> },
    Timer(TimerId),
}

/// Cheap, lock-scoped copy of one node's reporting state, refreshed by
/// its worker after every dispatch — the runtime analogue of reading a
/// live `Cluster` node, available *while the fleet is running*.
#[derive(Clone, Debug, Default)]
pub struct NodeSnapshot {
    /// Per-class wire ledger ([`WireStats`] is `Copy`).
    pub wire: WireStats,
    /// Server counters; `None` for client nodes.
    pub server: Option<NodeStats>,
    /// Client ops completed (GET + PUT acks); 0 for servers.
    pub ops_ok: u64,
    /// Client cycles finished; 0 for servers.
    pub cycles_done: u32,
    /// Whether a client session has completed all its cycles.
    pub done: bool,
    /// Events this node has dispatched.
    pub events: u64,
}

/// Clonable live-stats handle: snapshot any node or fold the fleet-wide
/// wire ledger without pausing worker threads (satellite: the
/// `Cluster::wire_report()`-equivalent for the runtime).
#[derive(Clone, Debug)]
pub struct FleetStats {
    snapshots: Arc<Vec<Mutex<NodeSnapshot>>>,
}

impl FleetStats {
    /// A copy of node `i`'s latest snapshot (fleet layout order:
    /// servers, then clients).
    pub fn snapshot(&self, i: usize) -> NodeSnapshot {
        self.snapshots[i].lock().expect("snapshot lock").clone()
    }

    /// Sums every node's per-class wire counters from the live
    /// snapshots — same fold as [`kvstore::cluster::Cluster::wire_report`].
    pub fn wire_report(&self) -> WireStats {
        let mut out = WireStats::default();
        for s in self.snapshots.iter() {
            out.absorb(&s.lock().expect("snapshot lock").wire);
        }
        out
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the handle covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

/// Outcome of a completed (non-stalled) run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock from worker start to the last client finishing
    /// (quiesce excluded), at the main loop's polling granularity.
    pub elapsed: StdDuration,
    /// Client operations completed fleet-wide.
    pub ops_ok: u64,
    /// All clients finished within the run budget.
    pub all_done: bool,
}

/// The multi-threaded fleet. Build with [`RuntimeFleet::new`], run with
/// [`RuntimeFleet::run`], then inspect nodes and reports exactly like a
/// [`Cluster`](kvstore::cluster::Cluster) after a simulated run.
#[derive(Debug)]
pub struct RuntimeFleet<M: Mechanism<StampedValue>> {
    config: RuntimeConfig,
    mech: M,
    view: RingView<ReplicaId>,
    genesis_view: RingView<ReplicaId>,
    factory: Option<EngineFactory<M>>,
    nodes: Vec<Hosted<M>>,
    snapshots: Arc<Vec<Mutex<NodeSnapshot>>>,
    progress: Arc<Progress>,
    net_root: SimRng,
}

impl<M> RuntimeFleet<M>
where
    M: Mechanism<StampedValue> + Send + 'static,
    M::State: Send,
    M::Context: Send,
{
    /// Builds a fleet. All protocol randomness derives from `seed`
    /// through the same `fork_indexed("node", i)` scheme the simulator
    /// uses, so a node's RNG stream depends only on `(seed, i)`.
    pub fn new(seed: u64, mech: M, config: RuntimeConfig) -> Self {
        Self::build(seed, mech, config, None)
    }

    /// Builds a fleet whose servers persist through `factory`-built
    /// storage engines — the threaded counterpart of
    /// [`Cluster::new_durable`](kvstore::cluster::Cluster::new_durable).
    /// Opening an engine replays whatever a previous incarnation (or a
    /// previous fleet over the same directory) durably synced, and a
    /// scheduled [`CrashEvent`] respawn rebuilds from the same factory.
    pub fn new_durable(
        seed: u64,
        mech: M,
        config: RuntimeConfig,
        factory: EngineFactory<M>,
    ) -> Self {
        Self::build(seed, mech, config, Some(factory))
    }

    fn build(seed: u64, mech: M, config: RuntimeConfig, factory: Option<EngineFactory<M>>) -> Self {
        assert!(config.servers > 0, "need at least one server");
        assert!(config.client_workers > 0, "need at least one client worker");
        config.store.validate();
        assert!(
            config.store.n <= config.servers,
            "replication factor exceeds server count"
        );
        let mut crash_targets = std::collections::BTreeSet::new();
        for c in &config.crashes {
            assert!(
                c.server < config.servers,
                "crash of non-server {}",
                c.server
            );
            assert!(
                c.respawn_after > c.kill_after,
                "respawn must come after the kill"
            );
            assert!(
                crash_targets.insert(c.server),
                "server {} crashed twice in one schedule",
                c.server
            );
        }
        let root = SimRng::new(seed);
        let replicas: Vec<ReplicaId> = (0..config.servers as u32).map(ReplicaId).collect();
        let view = RingView::from_members(replicas.iter().copied());
        let total = config.servers + config.clients;

        let mut nodes = Vec::with_capacity(total);
        for r in &replicas {
            let node = match &factory {
                Some(f) => StoreNode::with_engine(
                    *r,
                    mech.clone(),
                    config.store,
                    view.clone(),
                    f.build(r.0 as usize),
                ),
                None => StoreNode::new(*r, mech.clone(), config.store, view.clone()),
            };
            nodes.push(Hosted {
                id: NodeId(r.0),
                proc_: StoreProc::Server(node),
                rng: root.fork_indexed("node", r.0 as u64),
                wheel: TimerWheel::new(),
                next_timer: 0,
                was_done: false,
                last_ops: 0,
            });
        }
        for j in 0..config.clients {
            let node_index = (config.servers + j) as u32;
            let mut client_cfg = config.client.clone();
            client_cfg.cycles = config.cycles_per_client;
            nodes.push(Hosted {
                id: NodeId(node_index),
                proc_: StoreProc::Client(ClientNode::new(
                    ClientId(j as u64),
                    node_index,
                    mech.clone(),
                    client_cfg,
                    config.store.n,
                    config.store.header_bytes,
                    view.clone(),
                    config.store.vnodes,
                )),
                rng: root.fork_indexed("node", node_index as u64),
                wheel: TimerWheel::new(),
                next_timer: 0,
                was_done: false,
                last_ops: 0,
            });
        }
        RuntimeFleet {
            config,
            mech,
            view: view.clone(),
            genesis_view: view,
            factory,
            nodes,
            snapshots: Arc::new(
                (0..total)
                    .map(|_| Mutex::new(NodeSnapshot::default()))
                    .collect(),
            ),
            progress: Arc::new(Progress::new(total)),
            net_root: root.fork("rtnet"),
        }
    }

    /// A clonable handle for observing the fleet while (or after) it
    /// runs.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            snapshots: Arc::clone(&self.snapshots),
        }
    }

    /// Runs the fleet to completion: spawns per-server and client-worker
    /// threads (plus the optional delayer and the stall watchdog), waits
    /// for every client to finish, lets the fleet quiesce with faults
    /// disabled, then joins all threads and reassembles the nodes for
    /// inspection.
    ///
    /// Returns `Err` with per-node diagnostics if the watchdog declares
    /// a stall or the run budget expires first.
    pub fn run(&mut self) -> Result<RunReport, StallReport> {
        let cfg = self.config.clone();
        let total = cfg.servers + cfg.clients;
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let shared = Arc::new(Shared {
            origin: Instant::now(),
            faults: cfg.faults.clone(),
            faults_on: std::sync::atomic::AtomicBool::new(!cfg.faults.is_noop()),
            shutdown: Arc::clone(&shutdown),
        });

        // Partition nodes onto workers: one per server, then clients
        // chunked across `client_workers` threads.
        let nodes = std::mem::take(&mut self.nodes);
        let mut groups: Vec<Vec<Hosted<M>>> = Vec::new();
        let mut client_groups: Vec<Vec<Hosted<M>>> =
            (0..cfg.client_workers).map(|_| Vec::new()).collect();
        for (i, h) in nodes.into_iter().enumerate() {
            if i < cfg.servers {
                groups.push(vec![h]);
            } else {
                client_groups[(i - cfg.servers) % cfg.client_workers].push(h);
            }
        }
        groups.extend(client_groups.into_iter().filter(|g| !g.is_empty()));

        // One bounded inbox per worker; slot j routes to the worker
        // hosting node j.
        type Inbox<M> = (SyncSender<Packet<M>>, Option<Receiver<Packet<M>>>);
        let mut worker_chans: Vec<Inbox<M>> = groups
            .iter()
            .map(|g| {
                let (tx, rx) = mpsc::sync_channel(cfg.inbox_capacity * g.len());
                (tx, Some(rx))
            })
            .collect();
        let mut slots: Vec<SyncSender<Packet<M>>> = vec![worker_chans[0].0.clone(); total];
        for (w, g) in groups.iter().enumerate() {
            for h in g {
                slots[h.id.0 as usize] = worker_chans[w].0.clone();
            }
        }

        // Optional delayer thread holding back latency-sampled packets.
        let (delayer_tx, delayer_handle) = if cfg.faults.delay_micros.is_some() {
            let (tx, rx) = mpsc::channel::<(u64, Packet<M>)>();
            let d_shared = Arc::clone(&shared);
            let d_progress = Arc::clone(&self.progress);
            let d_slots = slots.clone();
            let h = thread::spawn(move || delayer_loop(rx, d_shared, d_progress, d_slots));
            (Some(tx), Some(h))
        } else {
            (None, None)
        };

        // Crash schedule plumbing: one phase cell per server, a rebuild
        // kit for each worker whose server is scheduled to crash.
        let plane = Arc::new(CrashPlane {
            phases: (0..cfg.servers)
                .map(|_| AtomicU8::new(PHASE_RUNNING))
                .collect(),
        });

        // Worker threads.
        let mut handles: Vec<JoinHandle<Vec<Hosted<M>>>> = Vec::new();
        for (w, group) in groups.into_iter().enumerate() {
            let router = Router {
                shared: Arc::clone(&shared),
                progress: Arc::clone(&self.progress),
                slots: slots.clone(),
                delayer: delayer_tx.clone(),
                rng: self.net_root.fork_indexed("worker", w as u64),
                replay_stash: BTreeMap::new(),
            };
            let rx = worker_chans[w].1.take().expect("receiver taken once");
            let snapshots = Arc::clone(&self.snapshots);
            let hang = group
                .iter()
                .any(|h| cfg.faults.hang_servers.contains(&(h.id.0 as usize)));
            let crash = group
                .first()
                .map(|h| h.id.0 as usize)
                .filter(|s| *s < cfg.servers && cfg.crashes.iter().any(|c| c.server == *s))
                .map(|s| WorkerCrash {
                    server: s,
                    plane: Arc::clone(&plane),
                    kit: RespawnKit {
                        replica: ReplicaId(s as u32),
                        mech: self.mech.clone(),
                        store: cfg.store,
                        genesis_view: self.genesis_view.clone(),
                        factory: self.factory.clone(),
                    },
                });
            handles.push(thread::spawn(move || {
                worker_loop(group, rx, router, snapshots, hang, crash)
            }));
        }

        // Stall watchdog.
        let report_slot: Arc<Mutex<Option<StallReport>>> = Arc::new(Mutex::new(None));
        let wd_handle = {
            let progress = Arc::clone(&self.progress);
            let wd_shutdown = Arc::clone(&shutdown);
            let slot = Arc::clone(&report_slot);
            let origin = shared.origin;
            let clients = cfg.clients as u64;
            let budget = cfg.stall_budget;
            let poll = cfg.watchdog_poll;
            thread::spawn(move || {
                watchdog::supervise(progress, wd_shutdown, slot, origin, clients, budget, poll)
            })
        };

        // Wait for completion, a stall, or the run budget, driving the
        // crash schedule as its deadlines come due.
        let started = Instant::now();
        let mut stages = vec![CrashStage::Pending; cfg.crashes.len()];
        let mut elapsed = None;
        loop {
            drive_crash_schedule(
                &cfg.crashes,
                &mut stages,
                started,
                &plane,
                &self.progress,
                &slots,
                &mut self.view,
            );
            if self.progress.stalled.load(Ordering::Relaxed) {
                break;
            }
            if self.progress.done_clients.load(Ordering::Relaxed) >= cfg.clients as u64 {
                elapsed = Some(started.elapsed());
                break;
            }
            if started.elapsed() > cfg.run_budget {
                break;
            }
            thread::sleep(StdDuration::from_millis(2));
        }

        let stalled = self.progress.stalled.load(Ordering::Relaxed);
        if elapsed.is_some() {
            // Successful run: quiesce with faults off so in-flight
            // repairs, handoffs and AAE rounds land on a clean network.
            // Exit early once repair activity has been still for the
            // settle window — anti-entropy keeps gossiping forever, so
            // "done" is a quiet repair ledger, not a quiet wire.
            shared.faults_on.store(false, Ordering::Relaxed);
            let settle_started = Instant::now();
            let (mut last_sig, mut rounds_floor) = self.settle_probe();
            let mut still_since = Instant::now();
            // A crash schedule still in flight (a respawn landing after
            // the last client finished) keeps the quiesce open past its
            // nominal budget — the respawned node must rejoin and be
            // repaired before the fleet is inspected.
            let mut schedule_done = drive_crash_schedule(
                &cfg.crashes,
                &mut stages,
                started,
                &plane,
                &self.progress,
                &slots,
                &mut self.view,
            );
            while (settle_started.elapsed() < cfg.quiesce || !schedule_done)
                && started.elapsed() <= cfg.run_budget
            {
                thread::sleep(StdDuration::from_millis(50));
                schedule_done = drive_crash_schedule(
                    &cfg.crashes,
                    &mut stages,
                    started,
                    &plane,
                    &self.progress,
                    &slots,
                    &mut self.view,
                );
                let (sig, rounds) = self.settle_probe();
                if sig != last_sig {
                    last_sig = sig;
                    rounds_floor = rounds;
                    still_since = Instant::now();
                } else if schedule_done
                    && still_since.elapsed() >= cfg.settle_window
                    && rounds >= rounds_floor + SETTLE_CLEAN_ROUNDS
                {
                    // Quiet for the window *and* every server has since
                    // initiated several divergence-free AAE rounds — the
                    // stillness reflects convergence, not CPU starvation.
                    break;
                }
            }
        }
        shared.shutdown.store(true, Ordering::Relaxed);

        let mut returned: Vec<Hosted<M>> = Vec::with_capacity(total);
        for h in handles {
            returned.extend(h.join().expect("worker thread panicked"));
        }
        if let Some(h) = delayer_handle {
            h.join().expect("delayer thread panicked");
        }
        wd_handle.join().expect("watchdog thread panicked");
        returned.sort_by_key(|h| h.id.0);
        self.nodes = returned;

        if stalled {
            let report = report_slot
                .lock()
                .expect("watchdog slot")
                .take()
                .expect("stall implies report");
            return Err(report);
        }
        match elapsed {
            Some(elapsed) => Ok(RunReport {
                elapsed,
                ops_ok: self.progress.ops_ok.load(Ordering::Relaxed),
                all_done: true,
            }),
            None => Err(watchdog::diagnose(
                &self.progress,
                shared.origin,
                cfg.run_budget,
            )),
        }
    }

    /// Fold of the live repair counters (changes while AAE repairs,
    /// read repairs, handoffs or transfers are still landing), plus the
    /// minimum per-server count of *initiated* AAE rounds — the settle
    /// loop uses the latter to require actual clean rounds, not just
    /// elapsed quiet time.
    fn settle_probe(&self) -> ((u64, u64, u64, u64), u64) {
        let mut sig = (0u64, 0u64, 0u64, 0u64);
        let mut min_rounds = u64::MAX;
        for i in 0..self.config.servers {
            let snap = self.snapshots[i].lock().expect("snapshot lock");
            if let Some(s) = snap.server {
                sig.0 += s.aae_divergent;
                sig.1 += s.read_repairs;
                sig.2 += s.handoffs;
                sig.3 += s.transfers_in + s.transfers_out;
                min_rounds = min_rounds.min(s.aae_rounds);
            }
        }
        (
            sig,
            if min_rounds == u64::MAX {
                0
            } else {
                min_rounds
            },
        )
    }

    // ---- post-run inspection (Cluster-equivalent surface) ----

    /// Read access to server `i`'s store node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a server index.
    pub fn server(&self, i: usize) -> &StoreNode<M> {
        assert!(i < self.config.servers, "node {i} is not a server");
        match &self.nodes[i].proc_ {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => unreachable!("layout: servers first"),
        }
    }

    /// Read access to client `j`'s session node.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not a client index.
    pub fn client(&self, j: usize) -> &ClientNode<M> {
        assert!(j < self.config.clients, "client {j} out of range");
        match &self.nodes[self.config.servers + j].proc_ {
            StoreProc::Client(c) => c,
            StoreProc::Server(_) => unreachable!("layout: clients after servers"),
        }
    }

    /// Number of replica servers.
    pub fn server_count(&self) -> usize {
        self.config.servers
    }

    /// Number of client sessions.
    pub fn client_count(&self) -> usize {
        self.config.clients
    }

    /// Mutable access to server `i`'s store node (harness convergence).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a server index.
    pub fn server_mut(&mut self, i: usize) -> &mut StoreNode<M> {
        assert!(i < self.config.servers, "node {i} is not a server");
        match &mut self.nodes[i].proc_ {
            StoreProc::Server(s) => s,
            StoreProc::Client(_) => unreachable!("layout: servers first"),
        }
    }
}

/// The post-run measurement surface — `oracle` / `converge` /
/// `anomaly_report` / `residual_copies` / `latency_report` /
/// `wire_report` — comes from [`FleetHarness`]'s provided methods, the
/// same implementation the simulator's `Cluster` and the socket driver
/// run. ([`FleetStats::wire_report`] remains the *live* snapshot fold;
/// the trait's is the post-run authoritative one from the node
/// ledgers.)
impl<M> FleetHarness<M> for RuntimeFleet<M>
where
    M: Mechanism<StampedValue> + Send + 'static,
    M::State: Send,
    M::Context: Send,
{
    fn mechanism(&self) -> &M {
        &self.mech
    }

    fn member_servers(&self) -> Vec<usize> {
        (0..self.config.servers).collect()
    }

    fn client_count(&self) -> usize {
        self.config.clients
    }

    fn server_ref(&self, i: usize) -> &StoreNode<M> {
        self.server(i)
    }

    fn server_mut_ref(&mut self, i: usize) -> &mut StoreNode<M> {
        self.server_mut(i)
    }

    fn client_ref(&self, j: usize) -> &ClientNode<M> {
        self.client(j)
    }

    fn audit_view(&self) -> &RingView<ReplicaId> {
        &self.view
    }
}

fn worker_loop<M: Mechanism<StampedValue>>(
    mut hosted: Vec<Hosted<M>>,
    rx: Receiver<Packet<M>>,
    mut router: Router<M>,
    snapshots: Arc<Vec<Mutex<NodeSnapshot>>>,
    hang: bool,
    crash: Option<WorkerCrash<M>>,
) -> Vec<Hosted<M>> {
    if hang {
        // A wedged worker: never starts its nodes, never drains its
        // inbox. Exists to prove the watchdog fires.
        while !router.shared.shutdown.load(Ordering::Relaxed) {
            thread::sleep(StdDuration::from_millis(5));
        }
        return hosted;
    }

    for h in &mut hosted {
        dispatch(h, Ev::Start, &mut router, &snapshots);
    }

    loop {
        if router.shared.shutdown.load(Ordering::Relaxed) {
            return hosted;
        }

        // Execute any pending crash-schedule order for this worker's
        // server (server groups host exactly one node). The kill drops
        // the node — in-memory state and the engine's unsynced buffer
        // are gone, like a power cut — and parks an inert husk in the
        // slot; the respawn rebuilds from the kit in this same thread.
        let mut down = false;
        if let Some(c) = &crash {
            match c.plane.phases[c.server].load(Ordering::Acquire) {
                PHASE_KILL => {
                    let h = &mut hosted[0];
                    h.proc_ = StoreProc::Server(StoreNode::dormant(
                        c.kit.replica,
                        c.kit.mech.clone(),
                        c.kit.store,
                        c.kit.genesis_view.clone(),
                    ));
                    h.wheel = TimerWheel::new();
                    c.plane.phases[c.server].store(PHASE_DOWN, Ordering::Release);
                    down = true;
                }
                PHASE_DOWN => down = true,
                PHASE_RESPAWN => {
                    let engine: Box<dyn StorageEngine<M::State>> = match &c.kit.factory {
                        Some(f) => f.build(c.server),
                        None => Box::new(MemEngine::new()),
                    };
                    let h = &mut hosted[0];
                    h.proc_ = StoreProc::Server(StoreNode::with_engine(
                        c.kit.replica,
                        c.kit.mech.clone(),
                        c.kit.store,
                        c.kit.genesis_view.clone(),
                        engine,
                    ));
                    h.wheel = TimerWheel::new();
                    c.plane.phases[c.server].store(PHASE_RUNNING, Ordering::Release);
                }
                _ => {}
            }
        }

        // Fire everything due, repeatedly: a timer handler may arm
        // another timer already due.
        let mut fired = true;
        while fired {
            fired = false;
            let now_us = router.shared.now_us();
            for h in &mut hosted {
                while let Some(t) = h.wheel.pop_due(now_us) {
                    dispatch(h, Ev::Timer(t), &mut router, &snapshots);
                    fired = true;
                }
            }
        }

        // Sleep until the next timer or the next packet, whichever
        // comes first (capped so shutdown is noticed promptly).
        let now_us = router.shared.now_us();
        let mut next: Option<u64> = None;
        for h in &mut hosted {
            if let Some(d) = h.wheel.next_due() {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        let wait = match next {
            Some(d) if d <= now_us => StdDuration::ZERO,
            Some(d) => StdDuration::from_micros((d - now_us).min(20_000)),
            None => StdDuration::from_millis(20),
        };

        let first = if wait.is_zero() {
            rx.try_recv().ok()
        } else {
            match rx.recv_timeout(wait) {
                Ok(p) => Some(p),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return hosted,
            }
        };
        if let Some(first) = first {
            if down {
                // A dead server's inbox drains onto the floor: the
                // depth accounting stays honest, the packets are lost
                // (a crashed box answers nothing).
                discard_packet(&router, &first);
                while let Ok(p) = rx.try_recv() {
                    discard_packet(&router, &p);
                }
            } else {
                dispatch_packet(&mut hosted, first, &mut router, &snapshots);
                // Drain whatever else arrived while we worked.
                while let Ok(p) = rx.try_recv() {
                    dispatch_packet(&mut hosted, p, &mut router, &snapshots);
                }
            }
        }
    }
}

/// Drops a packet addressed to a crashed server, keeping the inbox
/// depth counter honest.
fn discard_packet<M: Mechanism<StampedValue>>(router: &Router<M>, pkt: &Packet<M>) {
    router.progress.inbox_depth[pkt.to.0 as usize].fetch_sub(1, Ordering::Relaxed);
}

/// Advances every scheduled crash through its
/// Pending → Killed → Respawning → Done stages as deadlines come due.
/// Kills and rebuilds happen on the owning worker thread (via the
/// phase cells); what happens *here* is the control-plane half: the
/// expected-down flag for the watchdog, and — once the worker reports
/// the rebuilt node running — the fresh `Up` incarnation and the
/// in-band [`Msg::Rejoin`] that re-arms its timers and lets gossip
/// spread the re-admission. No harness view synchronisation.
/// Returns whether every event has completed.
#[allow(clippy::too_many_arguments)]
fn drive_crash_schedule<M: Mechanism<StampedValue>>(
    crashes: &[CrashEvent],
    stages: &mut [CrashStage],
    started: Instant,
    plane: &CrashPlane,
    progress: &Progress,
    slots: &[SyncSender<Packet<M>>],
    view: &mut RingView<ReplicaId>,
) -> bool {
    let elapsed = started.elapsed();
    for (c, stage) in crashes.iter().zip(stages.iter_mut()) {
        match *stage {
            CrashStage::Pending if elapsed >= c.kill_after => {
                progress.set_expected_down(c.server, true);
                plane.phases[c.server].store(PHASE_KILL, Ordering::Release);
                *stage = CrashStage::Killed;
            }
            // Only order the respawn once the worker has actually
            // performed the kill (DOWN), so the two orders cannot
            // collapse into none.
            CrashStage::Killed
                if elapsed >= c.respawn_after
                    && plane.phases[c.server]
                        .compare_exchange(
                            PHASE_DOWN,
                            PHASE_RESPAWN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok() =>
            {
                *stage = CrashStage::Respawning;
            }
            CrashStage::Respawning
                if plane.phases[c.server].load(Ordering::Acquire) == PHASE_RUNNING =>
            {
                view.bump(&ReplicaId(c.server as u32), MemberStatus::Up);
                let rejoin = Packet {
                    from: NodeId(c.server as u32),
                    to: NodeId(c.server as u32),
                    msg: Msg::Rejoin { view: view.clone() },
                };
                deliver(progress, slots, rejoin);
                progress.set_expected_down(c.server, false);
                *stage = CrashStage::Done;
            }
            _ => {}
        }
    }
    stages.iter().all(|s| *s == CrashStage::Done)
}

fn dispatch_packet<M: Mechanism<StampedValue>>(
    hosted: &mut [Hosted<M>],
    pkt: Packet<M>,
    router: &mut Router<M>,
    snapshots: &Arc<Vec<Mutex<NodeSnapshot>>>,
) {
    router.progress.inbox_depth[pkt.to.0 as usize].fetch_sub(1, Ordering::Relaxed);
    let Some(h) = hosted.iter_mut().find(|h| h.id == pkt.to) else {
        return;
    };
    dispatch(
        h,
        Ev::Message {
            from: pkt.from,
            msg: pkt.msg,
        },
        router,
        snapshots,
    );
}

/// Runs one event through a hosted node and applies its effects: armed
/// timers to the wheel, cancelled timers out of it, outbound messages
/// into the fabric, fresh counters into the progress atomics and the
/// node's snapshot.
fn dispatch<M: Mechanism<StampedValue>>(
    h: &mut Hosted<M>,
    ev: Ev<M>,
    router: &mut Router<M>,
    snapshots: &Arc<Vec<Mutex<NodeSnapshot>>>,
) {
    let now = SimTime::from_micros(router.shared.now_us());
    let (mech, header_bytes) = match &h.proc_ {
        StoreProc::Server(s) => (s.mech().clone(), s.header_bytes()),
        StoreProc::Client(c) => (c.mech().clone(), c.header_bytes()),
    };
    let mut ctx = RtCtx::new(h.id, now, &mut h.rng, mech, header_bytes, &mut h.next_timer);
    match (&mut h.proc_, ev) {
        (StoreProc::Server(s), Ev::Start) => s.on_start(&mut ctx),
        (StoreProc::Server(s), Ev::Message { from, msg }) => s.on_message(&mut ctx, from, msg),
        (StoreProc::Server(s), Ev::Timer(t)) => s.on_timer(&mut ctx, t),
        (StoreProc::Client(c), Ev::Start) => c.on_start(&mut ctx),
        (StoreProc::Client(c), Ev::Message { from, msg }) => c.on_message(&mut ctx, from, msg),
        (StoreProc::Client(c), Ev::Timer(t)) => c.on_timer(&mut ctx, t),
    }
    let RtCtx {
        outbox,
        timer_sets,
        timer_cancels,
        ..
    } = ctx;
    for (due, t) in timer_sets {
        h.wheel.schedule(due, t);
    }
    for t in timer_cancels {
        h.wheel.cancel(t);
    }
    for (to, msg) in outbox {
        router.route(h.id, to, msg);
    }

    // Progress + snapshot bookkeeping.
    let id = h.id.0 as usize;
    router.progress.events[id].fetch_add(1, Ordering::Relaxed);
    router.progress.last_event_micros[id].store(now.as_micros().max(1), Ordering::Relaxed);
    let mut snap = snapshots[id].lock().expect("snapshot lock");
    snap.events += 1;
    match &h.proc_ {
        StoreProc::Server(s) => {
            snap.wire = s.wire_stats();
            snap.server = Some(s.stats());
        }
        StoreProc::Client(c) => {
            snap.wire = c.wire_stats();
            let stats = c.stats();
            let ops = stats.get_latency.count() + stats.put_latency.count();
            if ops > h.last_ops {
                router
                    .progress
                    .ops_ok
                    .fetch_add(ops - h.last_ops, Ordering::Relaxed);
                h.last_ops = ops;
            }
            snap.ops_ok = ops;
            snap.cycles_done = c.cycles_done();
            snap.done = c.is_done();
            if c.is_done() && !h.was_done {
                h.was_done = true;
                router.progress.done_clients.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Holds back latency-sampled packets until their due instant, then
/// delivers them. Runs on its own thread whenever the fault plan has a
/// delay window.
fn delayer_loop<M: Mechanism<StampedValue>>(
    rx: Receiver<(u64, Packet<M>)>,
    shared: Arc<Shared>,
    progress: Arc<Progress>,
    slots: Vec<SyncSender<Packet<M>>>,
) {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut parked: BTreeMap<u64, Packet<M>> = BTreeMap::new();
    let mut seq = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = shared.now_us();
        while let Some(s) = wheel.pop_due(now) {
            if let Some(p) = parked.remove(&s) {
                deliver(&progress, &slots, p);
            }
        }
        let wait_us = wheel
            .next_due()
            .map(|d| d.saturating_sub(now).min(10_000))
            .unwrap_or(10_000)
            .max(100);
        match rx.recv_timeout(StdDuration::from_micros(wait_us)) {
            Ok((due, pkt)) => {
                wheel.schedule(due, seq);
                parked.insert(seq, pkt);
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
