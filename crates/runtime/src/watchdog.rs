//! Stall watchdog: a supervisor thread that fails a runtime run fast —
//! with per-node diagnostics — instead of letting a deadlocked or wedged
//! fleet hang until the run budget expires.
//!
//! Progress is defined as *completed client operations* (GETs + PUTs
//! acknowledged to a client). While any client is still working, the
//! watchdog requires the fleet-wide op counter to move at least once per
//! `stall_budget`; if it does not, the watchdog snapshots every node's
//! inbox depth, event count and last-event timestamp into a
//! [`StallReport`], marks the run stalled and pulls the global shutdown
//! flag so worker threads exit promptly.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

/// Shared progress counters, written by worker threads after every
/// dispatch and read by the watchdog. All access is relaxed-atomic: the
/// watchdog needs liveness signals, not a consistent cut.
#[derive(Debug)]
pub struct Progress {
    /// Client operations completed fleet-wide (GET + PUT acks observed).
    pub ops_ok: AtomicU64,
    /// Clients that have finished their closed-loop cycles.
    pub done_clients: AtomicU64,
    /// Events dispatched per node (messages + timers + start).
    pub events: Vec<AtomicU64>,
    /// Monotonic µs timestamp of each node's most recent dispatch.
    pub last_event_micros: Vec<AtomicU64>,
    /// Current inbox depth per node (enqueued − dispatched).
    pub inbox_depth: Vec<AtomicI64>,
    /// Set by the watchdog when it declares a stall.
    pub stalled: AtomicBool,
    /// Nodes the harness has *deliberately* taken down (crash schedule):
    /// their silence is expected, and the watchdog's diagnostics must
    /// not present them as wedged.
    pub expected_down: Vec<AtomicBool>,
}

impl Progress {
    /// Zeroed counters for `nodes` hosted nodes.
    pub fn new(nodes: usize) -> Self {
        Progress {
            ops_ok: AtomicU64::new(0),
            done_clients: AtomicU64::new(0),
            events: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            last_event_micros: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            inbox_depth: (0..nodes).map(|_| AtomicI64::new(0)).collect(),
            stalled: AtomicBool::new(false),
            expected_down: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Marks node `i` as deliberately down (or back up): crash-schedule
    /// bookkeeping the watchdog folds into its diagnostics.
    pub fn set_expected_down(&self, i: usize, down: bool) {
        self.expected_down[i].store(down, Ordering::Relaxed);
    }
}

/// One node's liveness diagnostics at the moment a stall was declared.
#[derive(Clone, Debug)]
pub struct NodeDiag {
    /// Node index (servers first, then clients — fleet layout order).
    pub node: usize,
    /// Messages sitting unprocessed in the node's inbox.
    pub inbox_depth: i64,
    /// Total events the node has dispatched.
    pub events: u64,
    /// µs since the node last dispatched anything (u64::MAX = never).
    pub last_event_age_micros: u64,
    /// The harness deliberately took this node down (crash schedule):
    /// its silence is expected, not a wedge.
    pub expected_down: bool,
}

/// Why and where a run stalled: returned as the `Err` of
/// [`RuntimeFleet::run`](crate::fleet::RuntimeFleet::run).
#[derive(Clone, Debug)]
pub struct StallReport {
    /// How long the op counter sat still before the watchdog fired.
    pub waited: StdDuration,
    /// Fleet-wide ops completed when the stall was declared.
    pub ops_ok: u64,
    /// Clients done when the stall was declared.
    pub done_clients: u64,
    /// Per-node diagnostics, fleet layout order.
    pub nodes: Vec<NodeDiag>,
}

impl StallReport {
    /// Nodes the crash schedule had deliberately down when the stall
    /// was declared.
    #[must_use]
    pub fn expected_down(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|d| d.expected_down)
            .map(|d| d.node)
            .collect()
    }

    /// The nodes that actually look wedged: a silent node (never
    /// dispatched, or quiet for at least as long as the stall wait)
    /// that the harness did *not* take down on purpose. A
    /// deliberately-killed server never appears here — that is the
    /// regression the expected-down set exists to prevent.
    #[must_use]
    pub fn wedged_nodes(&self) -> Vec<usize> {
        let stale = self.waited.as_micros() as u64;
        self.nodes
            .iter()
            .filter(|d| !d.expected_down && d.last_event_age_micros >= stale)
            .map(|d| d.node)
            .collect()
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime stalled: no client op completed for {:?} ({} ops, {} clients done)",
            self.waited, self.ops_ok, self.done_clients
        )?;
        for d in &self.nodes {
            writeln!(
                f,
                "  node {:>3}: inbox={:<4} events={:<7} last_event={}",
                d.node,
                d.inbox_depth,
                d.events,
                match (d.expected_down, d.last_event_age_micros) {
                    (true, _) => "down (expected)".to_string(),
                    (false, u64::MAX) => "never".to_string(),
                    (false, age) => format!("{age}µs ago"),
                }
            )?;
        }
        Ok(())
    }
}

/// Supervises `progress` until all `total_clients` clients finish or a
/// stall is declared. Runs on its own thread; returns when the run
/// completes, stalls, or `shutdown` is pulled externally.
///
/// On stall: fills `report_slot`, sets `progress.stalled`, and pulls
/// `shutdown` so workers exit.
pub fn supervise(
    progress: Arc<Progress>,
    shutdown: Arc<AtomicBool>,
    report_slot: Arc<Mutex<Option<StallReport>>>,
    origin: Instant,
    total_clients: u64,
    stall_budget: StdDuration,
    poll: StdDuration,
) {
    let mut last_ops = progress.ops_ok.load(Ordering::Relaxed);
    let mut still_since = Instant::now();
    loop {
        std::thread::sleep(poll);
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if progress.done_clients.load(Ordering::Relaxed) >= total_clients {
            // Run finished; the main thread handles quiesce + shutdown.
            return;
        }
        let ops = progress.ops_ok.load(Ordering::Relaxed);
        if ops != last_ops {
            last_ops = ops;
            still_since = Instant::now();
            continue;
        }
        let waited = still_since.elapsed();
        if waited < stall_budget {
            continue;
        }
        let report = diagnose(&progress, origin, waited);
        *report_slot.lock().expect("watchdog slot") = Some(report);
        progress.stalled.store(true, Ordering::Relaxed);
        shutdown.store(true, Ordering::Relaxed);
        return;
    }
}

/// Snapshots the current per-node liveness diagnostics into a
/// [`StallReport`] claiming `waited` of stillness. Also used by the
/// fleet when the overall run budget expires.
pub fn diagnose(progress: &Progress, origin: Instant, waited: StdDuration) -> StallReport {
    let now_us = origin.elapsed().as_micros() as u64;
    let nodes = (0..progress.events.len())
        .map(|i| {
            let last = progress.last_event_micros[i].load(Ordering::Relaxed);
            NodeDiag {
                node: i,
                inbox_depth: progress.inbox_depth[i].load(Ordering::Relaxed),
                events: progress.events[i].load(Ordering::Relaxed),
                last_event_age_micros: if last == 0 {
                    u64::MAX
                } else {
                    now_us.saturating_sub(last)
                },
                expected_down: progress.expected_down[i].load(Ordering::Relaxed),
            }
        })
        .collect();
    StallReport {
        waited,
        ops_ok: progress.ops_ok.load(Ordering::Relaxed),
        done_clients: progress.done_clients.load(Ordering::Relaxed),
        nodes,
    }
}
