//! Same-instant timer ordering, shared across both drivers.
//!
//! `simnet::EventQueue` documents that entries pushed for the same
//! instant pop in push order (`(time, seq)` tie-break). The runtime's
//! [`TimerWheel`] must match, or protocol code that arms several timers
//! in one dispatch would observe different interleavings across
//! drivers. The property test here drives *both* structures with one
//! random schedule — duplicate instants deliberately likely — and
//! asserts identical pop orders.

use proptest::collection::vec;
use proptest::prelude::*;
use runtime::TimerWheel;
use simnet::queue::EventQueue;
use simnet::SimTime;

proptest! {
    /// One schedule in, identical total order out of both drivers.
    #[test]
    fn wheel_matches_event_queue(times in vec(0u64..8, 1..64)) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for (label, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_micros(t), label);
            wheel.schedule(t, label);
        }
        let mut q_order = Vec::new();
        while let Some((_, label)) = queue.pop() {
            q_order.push(label);
        }
        let mut w_order = Vec::new();
        while let Some(label) = wheel.pop_due(u64::MAX) {
            w_order.push(label);
        }
        prop_assert_eq!(q_order, w_order);
    }

    /// Cancellation only removes the cancelled items; survivors keep
    /// the queue-conformant order.
    #[test]
    fn cancelled_timers_never_fire(
        times in vec(0u64..8, 1..48),
        cancel_mask in vec(any::<bool>(), 48),
    ) {
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for (label, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_micros(t), label);
            wheel.schedule(t, label);
        }
        for (label, _) in times.iter().enumerate() {
            if cancel_mask[label] {
                wheel.cancel(label);
            }
        }
        let mut expect = Vec::new();
        while let Some((_, label)) = queue.pop() {
            if !cancel_mask[label] {
                expect.push(label);
            }
        }
        let mut got = Vec::new();
        while let Some(label) = wheel.pop_due(u64::MAX) {
            got.push(label);
        }
        prop_assert_eq!(expect, got);
    }
}

/// The contract in its smallest form: three timers armed for one
/// instant fire in arm order on both drivers.
#[test]
fn same_instant_fifo() {
    let mut queue: EventQueue<&str> = EventQueue::new();
    let mut wheel: TimerWheel<&str> = TimerWheel::new();
    for label in ["first", "second", "third"] {
        queue.push(SimTime::from_micros(5), label);
        wheel.schedule(5, label);
    }
    for expect in ["first", "second", "third"] {
        assert_eq!(queue.pop().map(|(_, l)| l), Some(expect));
        assert_eq!(wheel.pop_due(5), Some(expect));
    }
}

/// Nothing fires before its due instant.
#[test]
fn respects_due_time() {
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    wheel.schedule(100, 1);
    wheel.schedule(50, 2);
    assert_eq!(wheel.pop_due(49), None);
    assert_eq!(wheel.next_due(), Some(50));
    assert_eq!(wheel.pop_due(50), Some(2));
    assert_eq!(wheel.pop_due(99), None);
    assert_eq!(wheel.pop_due(100), Some(1));
}
