//! Crash-mid-burst on the *threaded* driver — the runtime mirror of the
//! simulator's `crash_burst` suite.
//!
//! A server is killed on its own worker thread in the middle of a write
//! burst under *group-sync* durability (`LogConfig::default()` — the
//! power cut loses the engine's un-synced record tail) while every
//! routed message risks duplication, random delay (reordering) and
//! stale replay ([`FaultPlan::hostile`]). The victim respawns from its
//! truncated log, re-admits itself in band, and the fleet must converge
//! unaided and pass the full conformance audit stack — which includes
//! the fleet-wide dot-uniqueness census over the live states, plus the
//! *historical* census over the durable log files: append-only logs
//! don't forget, so a re-minted dot is convicted even after sibling
//! domination has erased both bearers from every live state.
//!
//! Thread scheduling makes the crash instant nondeterministic, so the
//! guard-disabled regression (which needs an exactly-timed stale-replay
//! window) lives only in the simulator suite; here the value is that
//! the epoch guard holds on a *real* interleaving, not a scheduled one.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::config::ClientConfig;
use kvstore::harness::{assert_dot_unique_in_logs, audit_fleet};
use kvstore::StoreConfig;
use runtime::{CrashEvent, EngineFactory, FaultPlan, RuntimeConfig, RuntimeFleet};
use simnet::Duration;
use storage::LogConfig;

const SERVERS: usize = 3;
const VICTIM: usize = 1;

fn burst_config() -> RuntimeConfig {
    RuntimeConfig {
        servers: SERVERS,
        clients: 8,
        client_workers: 2,
        cycles_per_client: 30,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(25),
            gossip_interval: Duration::from_millis(25),
            handoff_interval: Duration::from_millis(30),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            // Few hot keys: post-restart coordinations land on keys whose
            // pre-crash dots escaped, which is where reuse would show.
            key_count: 4,
            think_time: Duration::from_millis(2),
            request_timeout: Duration::from_millis(40),
            ..ClientConfig::default()
        },
        faults: FaultPlan::hostile(),
        crashes: vec![CrashEvent {
            server: VICTIM,
            kill_after: StdDuration::from_millis(150),
            respawn_after: StdDuration::from_millis(600),
        }],
        stall_budget: StdDuration::from_secs(15),
        run_budget: StdDuration::from_secs(90),
        quiesce: StdDuration::from_secs(20),
        settle_window: StdDuration::from_millis(600),
        ..RuntimeConfig::default()
    }
}

/// Group-sync durability + hostile faults + a mid-burst power cut: the
/// victim respawns from a log missing its last write burst, and the
/// epoch guard must keep every dot unique anyway — across the live
/// states (via [`audit_fleet`]) and across everything any server ever
/// durably applied (via [`assert_dot_unique_in_logs`]).
#[test]
fn crash_mid_burst_under_hostile_faults_audits_clean() {
    let dir = storage::scratch_dir("rt-crash-burst");
    let mut fleet = RuntimeFleet::new_durable(
        0xB00B5,
        DvvMechanism,
        burst_config(),
        EngineFactory::log_in(&dir, LogConfig::default()),
    );
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("crash-burst run stalled:\n{stall}"),
    };
    assert!(report.all_done, "clients left unfinished");
    assert_eq!(
        fleet.server(VICTIM).data().engine_kind(),
        "log",
        "victim must be running on its rebuilt log engine"
    );
    assert!(
        fleet
            .server(0)
            .view()
            .members()
            .contains(&ReplicaId(VICTIM as u32)),
        "recovered server missing from the membership"
    );

    // The guard engaged across the respawn: the victim recovered a
    // durable reservation, bumped its incarnation epoch past genesis,
    // and floors minting above every dot that could have escaped.
    let (epoch, ceiling, floor) = fleet.server(VICTIM).dot_guard_state();
    assert!(epoch >= 1, "recovery must bump the dot epoch");
    assert!(floor > 0, "recovery must floor minting");
    assert!(ceiling >= floor, "reservation ceiling below its floor");

    // Historical census first (the harness converge appends merge
    // results to the logs — harmless copies, but audit the raw history).
    for slot in 0..SERVERS {
        fleet.server_mut(slot).sync_storage();
    }
    assert_dot_unique_in_logs(
        &DvvMechanism,
        &dir,
        0..SERVERS,
        "threaded crash-burst histories",
    );

    // Full conformance stack: one view, AAE equivalence, residuals,
    // live dot census, oracle-clean converge.
    audit_fleet(&mut fleet, "threaded crash-burst");
    std::fs::remove_dir_all(dir).ok();
}
