//! The stall watchdog must fire — fast, and with usable diagnostics —
//! when the fleet wedges, and must stay quiet on a healthy run.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::config::{ClientConfig, StoreConfig};
use runtime::{CrashEvent, FaultPlan, RuntimeConfig, RuntimeFleet};
use simnet::Duration;

/// A single-server fleet whose only server is deliberately wedged
/// (thread never starts the node, never drains its inbox): no client op
/// can ever complete, so the watchdog must declare a stall well before
/// the run budget, naming the dead server with a non-empty inbox.
#[test]
fn watchdog_fires_on_wedged_server() {
    let mut fleet = RuntimeFleet::new(
        7,
        DvvMechanism,
        RuntimeConfig {
            servers: 1,
            clients: 4,
            client_workers: 1,
            cycles_per_client: 100,
            store: StoreConfig {
                n: 1,
                r: 1,
                w: 1,
                ..StoreConfig::default()
            },
            client: ClientConfig {
                think_time: Duration::from_micros(100),
                request_timeout: Duration::from_millis(20),
                ..ClientConfig::default()
            },
            faults: FaultPlan {
                hang_servers: vec![0],
                ..FaultPlan::default()
            },
            stall_budget: StdDuration::from_millis(300),
            watchdog_poll: StdDuration::from_millis(25),
            run_budget: StdDuration::from_secs(30),
            quiesce: StdDuration::ZERO,
            ..RuntimeConfig::default()
        },
    );
    let stall = fleet.run().expect_err("wedged fleet must stall");
    assert_eq!(stall.ops_ok, 0, "no op can complete without the server");
    let server = &stall.nodes[0];
    assert_eq!(server.events, 0, "wedged server dispatched nothing");
    assert!(
        server.inbox_depth >= 1,
        "client requests should be piling up in the dead server's inbox: {stall}"
    );
    assert_eq!(
        server.last_event_age_micros,
        u64::MAX,
        "wedged server never dispatched, age must read 'never'"
    );
    // Clients, by contrast, were alive (issuing and timing out).
    assert!(
        stall.nodes[1..].iter().any(|d| d.events > 0),
        "clients should have dispatched events: {stall}"
    );
    let rendered = stall.to_string();
    assert!(
        rendered.contains("runtime stalled"),
        "report renders: {rendered}"
    );
}

/// Regression: a server the *crash schedule* deliberately killed must
/// not be presented as wedged. Server 0 is genuinely wedged (hung
/// worker) so the stall fires; server 1 is down on purpose (scheduled
/// kill, respawn far in the future). The report must mark server 1
/// expected-down, keep it out of `wedged_nodes()`, and still finger
/// server 0.
#[test]
fn watchdog_distinguishes_scheduled_kill_from_wedge() {
    let mut fleet = RuntimeFleet::new(
        19,
        DvvMechanism,
        RuntimeConfig {
            servers: 2,
            clients: 4,
            client_workers: 1,
            cycles_per_client: 100,
            store: StoreConfig {
                n: 2,
                r: 2,
                w: 2,
                ..StoreConfig::default()
            },
            client: ClientConfig {
                think_time: Duration::from_micros(100),
                request_timeout: Duration::from_millis(20),
                ..ClientConfig::default()
            },
            faults: FaultPlan {
                hang_servers: vec![0],
                ..FaultPlan::default()
            },
            crashes: vec![CrashEvent {
                server: 1,
                kill_after: StdDuration::from_millis(50),
                respawn_after: StdDuration::from_secs(60),
            }],
            stall_budget: StdDuration::from_millis(400),
            watchdog_poll: StdDuration::from_millis(25),
            run_budget: StdDuration::from_secs(30),
            quiesce: StdDuration::ZERO,
            ..RuntimeConfig::default()
        },
    );
    let stall = fleet
        .run()
        .expect_err("fleet with a wedged server must stall");
    assert!(
        stall.nodes[1].expected_down,
        "the scheduled kill was in force when the stall fired: {stall}"
    );
    assert!(
        !stall.nodes[0].expected_down,
        "the wedge was not scheduled: {stall}"
    );
    assert_eq!(
        stall.expected_down(),
        vec![1],
        "exactly the killed server is expected down"
    );
    let wedged = stall.wedged_nodes();
    assert!(
        wedged.contains(&0),
        "the genuinely wedged server is still fingered: {stall}"
    );
    assert!(
        !wedged.contains(&1),
        "a deliberately-killed server must not read as wedged: {stall}"
    );
    let rendered = stall.to_string();
    assert!(
        rendered.contains("down (expected)"),
        "report marks the scheduled kill: {rendered}"
    );
}

/// A healthy fleet finishes without the watchdog interfering.
#[test]
fn watchdog_stays_quiet_on_healthy_run() {
    let mut fleet = RuntimeFleet::new(
        11,
        DvvMechanism,
        RuntimeConfig {
            servers: 3,
            clients: 6,
            client_workers: 2,
            cycles_per_client: 4,
            stall_budget: StdDuration::from_secs(10),
            quiesce: StdDuration::from_millis(200),
            ..RuntimeConfig::default()
        },
    );
    let report = fleet.run().expect("healthy fleet completes");
    assert!(report.all_done);
    assert!(report.ops_ok > 0);
}
