//! Crash/recovery on the *threaded* driver: a scheduled [`CrashEvent`]
//! kills a server's node on its own worker thread mid-run (dropping
//! in-memory state and any unsynced engine buffer, like a power cut),
//! then respawns it from its storage engine and re-admits it in band
//! via `Msg::Rejoin` — no harness view synchronisation. The recovered
//! fleet must pass the same audit stack as a healthy conformance run:
//! one ring view, pairwise AAE equivalence, zero residual copies, and
//! an oracle-clean converge (no lost acked writes, no false
//! concurrency).

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvSetMechanism;
use dvv::ReplicaId;
use kvstore::config::ClientConfig;
use kvstore::harness::audit_fleet;
use kvstore::StoreConfig;
use runtime::{CrashEvent, EngineFactory, FaultPlan, RuntimeConfig, RuntimeFleet};
use simnet::Duration;
use storage::LogConfig;

const SERVERS: usize = 3;
const VICTIM: usize = 1;

fn recovery_config() -> RuntimeConfig {
    RuntimeConfig {
        servers: SERVERS,
        clients: 8,
        client_workers: 2,
        cycles_per_client: 30,
        store: StoreConfig {
            anti_entropy_interval: Duration::from_millis(25),
            gossip_interval: Duration::from_millis(25),
            handoff_interval: Duration::from_millis(30),
            ..StoreConfig::default()
        },
        client: ClientConfig {
            key_count: 12,
            think_time: Duration::from_millis(2),
            request_timeout: Duration::from_millis(40),
            ..ClientConfig::default()
        },
        faults: FaultPlan::default(),
        crashes: vec![CrashEvent {
            server: VICTIM,
            kill_after: StdDuration::from_millis(150),
            respawn_after: StdDuration::from_millis(600),
        }],
        stall_budget: StdDuration::from_secs(15),
        run_budget: StdDuration::from_secs(90),
        quiesce: StdDuration::from_secs(20),
        settle_window: StdDuration::from_millis(600),
        ..RuntimeConfig::default()
    }
}

/// The full post-run audit stack, shared by the durable and diskless
/// recovery scenarios: the generic [`audit_fleet`] stack (one ring
/// view, pairwise AAE equivalence — recovered node included — zero
/// residual copies, oracle-clean converge), plus the recovery-specific
/// check that the victim is a full member again in its peers' eyes.
fn audit(fleet: &mut RuntimeFleet<DvvSetMechanism>, label: &str) {
    assert!(
        fleet
            .server(0)
            .view()
            .members()
            .contains(&ReplicaId(VICTIM as u32)),
        "{label}: recovered server missing from the membership"
    );
    audit_fleet(fleet, label);
}

/// Durable fleet, write-through log engines: the victim is killed
/// mid-run and respawned *from its disk* — the rebuilt engine replays
/// every record it acked — and the fleet audits clean.
#[test]
fn scheduled_crash_respawns_from_disk_and_audits_clean() {
    let dir = storage::scratch_dir("rt-recovery-durable");
    let mut fleet = RuntimeFleet::new_durable(
        0xD15C,
        DvvSetMechanism,
        recovery_config(),
        EngineFactory::log_in(&dir, LogConfig::write_through()),
    );
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("durable recovery run stalled:\n{stall}"),
    };
    assert!(report.all_done, "clients left unfinished");
    assert_eq!(
        fleet.server(VICTIM).data().engine_kind(),
        "log",
        "victim must be running on its rebuilt log engine"
    );
    audit(&mut fleet, "durable");
    std::fs::remove_dir_all(dir).ok();
}

/// Diskless baseline: no engine factory, so the victim respawns
/// *empty* and anti-entropy refills it from its peers. Every acked
/// write had a quorum, so at least one live copy survives the crash
/// and the oracle still audits clean.
#[test]
fn diskless_crash_respawn_refills_from_peers() {
    let mut fleet = RuntimeFleet::new(0xD15C + 1, DvvSetMechanism, recovery_config());
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("diskless recovery run stalled:\n{stall}"),
    };
    assert!(report.all_done, "clients left unfinished");
    assert_eq!(
        fleet.server(VICTIM).data().engine_kind(),
        "mem",
        "diskless victim respawns on a fresh in-memory engine"
    );
    audit(&mut fleet, "diskless");
}
