//! Cross-backend conformance: the same seeded workload, run once on
//! the deterministic simulator and once on the threaded runtime, must
//! leave both fleets in AAE-equivalent, oracle-clean states.
//!
//! "Equivalent" here is *protocol-level*, not bit-level — the threaded
//! driver has real wall-clock interleavings — so the assertions are the
//! store's own convergence and safety audits:
//!
//! * every client finished its cycles;
//! * all servers gossiped to one ring view;
//! * each server pair's shared Merkle summaries agree leaf-for-leaf
//!   (the anti-entropy definition of "replicas converged");
//! * no server holds a key outside its preference list;
//! * after the harness converge, the oracle audit finds zero lost
//!   updates and zero false concurrency — on both drivers.
//!
//! `RUNTIME_CONFORMANCE_SEEDS` widens the seed sweep for soak lanes.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use dvv::ReplicaId;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use runtime::{FaultPlan, RuntimeConfig, RuntimeFleet};
use simnet::Duration;

const SERVERS: usize = 4;
const CLIENTS: usize = 12;
const CYCLES: u32 = 6;

fn store_config() -> StoreConfig {
    StoreConfig {
        anti_entropy_interval: Duration::from_millis(25),
        gossip_interval: Duration::from_millis(25),
        handoff_interval: Duration::from_millis(30),
        ..StoreConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        key_count: 16,
        think_time: Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        servers: SERVERS,
        clients: CLIENTS,
        client_workers: 3,
        cycles_per_client: CYCLES,
        store: store_config(),
        client: client_config(),
        faults: FaultPlan {
            drop_probability: 0.03,
            delay_micros: Some((100, 400)),
            hang_servers: vec![],
        },
        stall_budget: StdDuration::from_secs(10),
        run_budget: StdDuration::from_secs(60),
        // Settle budget, not a fixed sleep: the fleet exits early once
        // repair activity has been quiet for `settle_window`.
        quiesce: StdDuration::from_secs(12),
        settle_window: StdDuration::from_millis(600),
        ..RuntimeConfig::default()
    }
}

/// Seeds to sweep: one by default, more under `RUNTIME_CONFORMANCE_SEEDS`
/// (the nightly soak lane sets it).
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("RUNTIME_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    (0..n).map(|i| 0xC0DE + i * 101).collect()
}

/// Runs the seeded workload on the threaded runtime and applies the
/// full audit stack.
fn audit_runtime(seed: u64) {
    let mut fleet = RuntimeFleet::new(seed, DvvMechanism, runtime_config());
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("seed {seed}: runtime stalled:\n{stall}"),
    };
    assert!(report.all_done, "seed {seed}: clients left unfinished");
    assert_eq!(
        report.ops_ok,
        fleet.latency_report().get.count() + fleet.latency_report().put.count(),
        "seed {seed}: live op counter diverged from client histograms"
    );

    // One ring view everywhere.
    let digest0 = fleet.server(0).view_digest();
    for i in 1..SERVERS {
        assert_eq!(
            fleet.server(i).view_digest(),
            digest0,
            "seed {seed}: server {i} view digest diverged"
        );
    }

    // AAE equivalence: each pair's shared summaries agree leaf-for-leaf.
    for i in 0..SERVERS {
        for j in (i + 1)..SERVERS {
            let a = fleet.server(i).rebuild_shared_summary(ReplicaId(j as u32));
            let b = fleet.server(j).rebuild_shared_summary(ReplicaId(i as u32));
            if a.leaves() != b.leaves() {
                let al: std::collections::BTreeMap<_, _> = a.leaves().into_iter().collect();
                let bl: std::collections::BTreeMap<_, _> = b.leaves().into_iter().collect();
                let mut detail = String::new();
                for (k, h) in &al {
                    if bl.get(k) != Some(h) {
                        detail.push_str(&format!(
                            "\n  key {:?}: {i}={:?} vs {j}={:?}",
                            String::from_utf8_lossy(k),
                            fleet.server(i).data().get(k),
                            fleet.server(j).data().get(k),
                        ));
                    }
                }
                for k in bl.keys() {
                    if !al.contains_key(k) {
                        detail.push_str(&format!(
                            "\n  key {:?}: missing on {i}",
                            String::from_utf8_lossy(k)
                        ));
                    }
                }
                let diag: Vec<String> = (0..SERVERS)
                    .map(|s| {
                        let st = fleet.server(s).stats();
                        format!(
                            "server {s}: rounds={} divergent={}",
                            st.aae_rounds, st.aae_divergent
                        )
                    })
                    .collect();
                panic!(
                    "seed {seed}: servers {i}/{j} not AAE-equivalent after quiesce\n{}\ndiffering keys:{detail}",
                    diag.join("\n")
                );
            }
        }
    }

    // No data outside ownership.
    let residuals = fleet.residual_copies();
    assert!(
        residuals.is_empty(),
        "seed {seed}: residual copies after quiesce: {residuals:?}"
    );

    // Oracle-clean after harness converge, like the simulated suites.
    fleet.converge();
    let anomalies = fleet.anomaly_report();
    assert_eq!(
        anomalies.lost_updates, 0,
        "seed {seed}: runtime lost updates: {anomalies:?}"
    );
    assert_eq!(
        anomalies.false_concurrency, 0,
        "seed {seed}: runtime false concurrency: {anomalies:?}"
    );
    assert!(anomalies.acked_writes > 0, "seed {seed}: no writes acked");

    // The wire ledger folded from live snapshots matches the
    // authoritative post-run fold.
    assert_eq!(
        fleet.stats().wire_report(),
        fleet.wire_report(),
        "seed {seed}: live wire fold diverged from node ledgers"
    );
}

/// Runs the same seeded workload shape on the simulator and applies the
/// same oracle audit — the baseline the runtime must match.
fn audit_sim(seed: u64) {
    let mut cluster = Cluster::new(
        seed,
        DvvMechanism,
        ClusterConfig {
            servers: SERVERS,
            clients: CLIENTS,
            cycles_per_client: CYCLES,
            store: store_config(),
            client: client_config(),
            ..ClusterConfig::default()
        },
    );
    cluster.run();
    cluster.run_for(Duration::from_millis(1500));
    cluster.converge();
    let anomalies = cluster.anomaly_report();
    assert_eq!(
        anomalies.lost_updates, 0,
        "seed {seed}: simulator lost updates: {anomalies:?}"
    );
    assert_eq!(
        anomalies.false_concurrency, 0,
        "seed {seed}: simulator false concurrency: {anomalies:?}"
    );
    assert!(anomalies.acked_writes > 0, "seed {seed}: no writes acked");
}

#[test]
fn threaded_runtime_matches_simulator_audits() {
    for seed in seeds() {
        audit_sim(seed);
        audit_runtime(seed);
    }
}
