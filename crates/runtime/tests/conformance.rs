//! Cross-backend conformance: the same seeded workload, run once on
//! the deterministic simulator and once on the threaded runtime, must
//! leave both fleets in AAE-equivalent, oracle-clean states.
//!
//! "Equivalent" here is *protocol-level*, not bit-level — the threaded
//! driver has real wall-clock interleavings — so the assertions are the
//! store's own convergence and safety audits, applied through the one
//! driver-agnostic surface both fleets implement
//! ([`kvstore::harness::FleetHarness`]): [`audit_fleet`] checks one
//! ring view, pairwise AAE leaf equivalence, zero residual copies, and
//! an oracle-clean converge — the same function, both drivers.
//!
//! `RUNTIME_CONFORMANCE_SEEDS` widens the seed sweep for soak lanes.

use std::time::Duration as StdDuration;

use dvv::mechanisms::DvvMechanism;
use kvstore::cluster::{Cluster, ClusterConfig};
use kvstore::config::{ClientConfig, StoreConfig};
use kvstore::harness::{audit_fleet, FleetHarness};
use runtime::{FaultPlan, RuntimeConfig, RuntimeFleet};
use simnet::Duration;

const SERVERS: usize = 4;
const CLIENTS: usize = 12;
const CYCLES: u32 = 6;

fn store_config() -> StoreConfig {
    StoreConfig {
        anti_entropy_interval: Duration::from_millis(25),
        gossip_interval: Duration::from_millis(25),
        handoff_interval: Duration::from_millis(30),
        ..StoreConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        key_count: 16,
        think_time: Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        servers: SERVERS,
        clients: CLIENTS,
        client_workers: 3,
        cycles_per_client: CYCLES,
        store: store_config(),
        client: client_config(),
        faults: FaultPlan {
            drop_probability: 0.03,
            delay_micros: Some((100, 400)),
            ..FaultPlan::default()
        },
        stall_budget: StdDuration::from_secs(10),
        run_budget: StdDuration::from_secs(60),
        // Settle budget, not a fixed sleep: the fleet exits early once
        // repair activity has been quiet for `settle_window`.
        quiesce: StdDuration::from_secs(12),
        settle_window: StdDuration::from_millis(600),
        ..RuntimeConfig::default()
    }
}

/// Seeds to sweep: one by default, more under `RUNTIME_CONFORMANCE_SEEDS`
/// (the nightly soak lane sets it).
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("RUNTIME_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    (0..n).map(|i| 0xC0DE + i * 101).collect()
}

/// Runs the seeded workload on the threaded runtime and applies the
/// full audit stack.
fn audit_runtime(seed: u64) {
    let mut fleet = RuntimeFleet::new(seed, DvvMechanism, runtime_config());
    let report = match fleet.run() {
        Ok(r) => r,
        Err(stall) => panic!("seed {seed}: runtime stalled:\n{stall}"),
    };
    assert!(report.all_done, "seed {seed}: clients left unfinished");
    assert_eq!(
        report.ops_ok,
        fleet.latency_report().get.count() + fleet.latency_report().put.count(),
        "seed {seed}: live op counter diverged from client histograms"
    );

    audit_fleet(&mut fleet, &format!("seed {seed} (runtime)"));

    // The wire ledger folded from live snapshots matches the
    // authoritative post-run fold.
    assert_eq!(
        fleet.stats().wire_report(),
        FleetHarness::wire_report(&fleet),
        "seed {seed}: live wire fold diverged from node ledgers"
    );
}

/// Runs the same seeded workload shape on the simulator and applies the
/// same audit stack — the baseline the runtime must match.
fn audit_sim(seed: u64) {
    let mut cluster = Cluster::new(
        seed,
        DvvMechanism,
        ClusterConfig {
            servers: SERVERS,
            clients: CLIENTS,
            cycles_per_client: CYCLES,
            store: store_config(),
            client: client_config(),
            ..ClusterConfig::default()
        },
    );
    cluster.run();
    cluster.run_for(Duration::from_millis(1500));
    audit_fleet(&mut cluster, &format!("seed {seed} (simulator)"));
}

#[test]
fn threaded_runtime_matches_simulator_audits() {
    for seed in seeds() {
        audit_sim(seed);
        audit_runtime(seed);
    }
}
