//! [`DvvSet`]: the compact *dotted version vector set* — one clock for an
//! entire sibling set.
//!
//! Where [`crate::server`] tags every sibling with its own
//! [`Dvv`](crate::dotted::Dvv), a `DvvSet` factors the common causal
//! information out: per server it stores one counter `n` and the list of
//! values whose dots `(server, n), (server, n-1), …` are still live. All
//! causal information is positional, so the whole sibling set costs one
//! version-vector's worth of metadata *total* — the extension the tech
//! report develops and that shipped in Riak as `dvvset.erl`.

use core::fmt;
use std::collections::BTreeMap;

use crate::actor::Actor;
use crate::dot::Dot;
use crate::version_vector::VersionVector;

/// Per-actor entry: the highest known counter and the values of the live
/// (still-concurrent) dots, newest first.
///
/// Entry `(n, [v0, v1, …, v(k-1)])` means: dots `(a, 1) … (a, n)` are all
/// in the causal history; of those, dot `(a, n-j)` is live with value `vj`
/// for `j < k`; dots `(a, m)` with `m ≤ n-k` are known and obsolete.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Entry<V> {
    counter: u64,
    /// Values newest-first: `values[j]` belongs to dot `(actor, counter - j)`.
    values: Vec<V>,
}

impl<V> Entry<V> {
    /// Lowest counter that still has a live value, i.e. live counters are
    /// `low()+1 ..= counter`.
    fn low(&self) -> u64 {
        self.counter - self.values.len() as u64
    }
}

/// A dotted version vector *set*: the causal state of a whole sibling set
/// in one compact clock.
///
/// # Examples
///
/// ```
/// use dvv::DvvSet;
/// use dvv::VersionVector;
///
/// let mut s: DvvSet<&str, &str> = DvvSet::new();
/// // two clients write concurrently after reading the empty store:
/// s.update(&VersionVector::new(), "A", "v1");
/// s.update(&VersionVector::new(), "A", "v2");
/// assert_eq!(s.values().count(), 2);
///
/// // a third client reads everything and overwrites:
/// let ctx = s.context();
/// s.update(&ctx, "A", "v3");
/// assert_eq!(s.values().collect::<Vec<_>>(), vec![&"v3"]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DvvSet<A: Ord, V> {
    entries: BTreeMap<A, Entry<V>>,
}

impl<A: Ord, V> Default for DvvSet<A, V> {
    fn default() -> Self {
        DvvSet {
            entries: BTreeMap::new(),
        }
    }
}

impl<A: Actor, V> DvvSet<A, V> {
    /// Creates an empty clock (no knowledge, no values).
    #[must_use]
    pub fn new() -> Self {
        DvvSet {
            entries: BTreeMap::new(),
        }
    }

    /// The causal *context* of the sibling set: a version vector with, for
    /// each server, the highest counter this clock knows. Clients receive
    /// this on GET and echo it on PUT.
    #[must_use]
    pub fn context(&self) -> VersionVector<A> {
        self.entries
            .iter()
            .map(|(a, e)| (a.clone(), e.counter))
            .collect()
    }

    /// Iterates over the live values, newest dots first within each server,
    /// servers in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().flat_map(|e| e.values.iter())
    }

    /// Iterates over `(dot, value)` pairs for the live versions.
    pub fn dotted_values(&self) -> impl Iterator<Item = (Dot<A>, &V)> {
        self.entries.iter().flat_map(|(a, e)| {
            e.values
                .iter()
                .enumerate()
                .map(move |(j, v)| (Dot::new(a.clone(), e.counter - j as u64), v))
        })
    }

    /// Number of live (concurrent) values — the sibling count.
    #[must_use]
    pub fn sibling_count(&self) -> usize {
        self.entries.values().map(|e| e.values.len()).sum()
    }

    /// Whether the clock carries no knowledge at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of per-server entries (the metadata, not the values).
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether `dot` is in the causal history (live or obsolete).
    #[must_use]
    pub fn contains(&self, dot: &Dot<A>) -> bool {
        self.entries
            .get(dot.actor())
            .is_some_and(|e| dot.counter() <= e.counter)
    }

    /// Coordinates a client write at `server` with read context `ctx`:
    /// discards the siblings the context obsoletes, then adds the new value
    /// with a fresh dot. Returns that dot.
    ///
    /// Equivalent to the tech report's `update` (and `dvvset:update/3`),
    /// with the discard and event steps fused.
    pub fn update(&mut self, ctx: &VersionVector<A>, server: A, value: V) -> Dot<A> {
        self.discard(ctx);
        self.absorb(ctx);
        self.event(server, value)
    }

    /// Folds the context's causal knowledge into the clock without touching
    /// live values. In the Erlang reference (`dvvset.erl`) this happens
    /// implicitly because the new version carries the context's entries;
    /// keeping that knowledge is what lets a later [`DvvSet::sync`] at
    /// another replica recognise remotely-obsoleted values, and it
    /// guarantees fresh dots never collide with dots named in a context.
    ///
    /// Must run after [`DvvSet::discard`] with the same context: any live
    /// value whose dot the context covers has been removed by then, so
    /// raising a counter never re-tags a live value.
    fn absorb(&mut self, ctx: &VersionVector<A>) {
        for (actor, n) in ctx.iter() {
            let e = self.entries.entry(actor.clone()).or_insert(Entry {
                counter: 0,
                values: Vec::new(),
            });
            if n > e.counter {
                debug_assert!(
                    e.values.is_empty(),
                    "discard must have removed values covered by the context"
                );
                e.counter = n;
            }
        }
    }

    /// Removes every live value whose dot is covered by `ctx`, keeping the
    /// causal knowledge. (The *discard* half of a write.)
    pub fn discard(&mut self, ctx: &VersionVector<A>) {
        for (actor, e) in &mut self.entries {
            let seen = ctx.get(actor);
            if seen > e.low() {
                let keep = e.counter.saturating_sub(seen) as usize;
                e.values.truncate(keep);
            }
        }
        // Entries with no values are kept: they still carry causal knowledge.
    }

    /// Adds a new event at `server` holding `value`. (The *event* half of a
    /// write; does not discard anything.)
    pub fn event(&mut self, server: A, value: V) -> Dot<A> {
        let e = self.entries.entry(server.clone()).or_insert(Entry {
            counter: 0,
            values: Vec::new(),
        });
        e.counter += 1;
        e.values.insert(0, value);
        Dot::new(server, e.counter)
    }

    /// (crate-internal) installs a raw entry; used when rebuilding a clock
    /// from its binary encoding. `values` are newest-first and must be no
    /// more numerous than `counter`.
    pub(crate) fn insert_entry(&mut self, actor: A, counter: u64, values: Vec<V>) {
        debug_assert!(values.len() as u64 <= counter);
        self.entries.insert(actor, Entry { counter, values });
    }

    /// Whether this clock's knowledge dominates `other`'s (every event
    /// known there is known here). O(n) in the number of entries.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        other
            .entries
            .iter()
            .all(|(a, e)| self.entries.get(a).is_some_and(|m| m.counter >= e.counter))
    }
}

impl<A: Actor, V: Clone> DvvSet<A, V> {
    /// Merges two replicas' clocks (anti-entropy / replicated put).
    ///
    /// Per server, a live value survives iff the other side either also
    /// holds it live or has never seen its dot; values the other side has
    /// seen *and discarded* are dropped. Commutative, associative and
    /// idempotent.
    #[must_use]
    pub fn sync(&self, other: &Self) -> Self {
        let mut out = BTreeMap::new();
        let actors: Vec<&A> = {
            let mut v: Vec<&A> = self.entries.keys().collect();
            for a in other.entries.keys() {
                if !self.entries.contains_key(a) {
                    v.push(a);
                }
            }
            v
        };
        for actor in actors {
            let empty = Entry {
                counter: 0,
                values: Vec::new(),
            };
            let e1 = self.entries.get(actor).unwrap_or(&empty);
            let e2 = other.entries.get(actor).unwrap_or(&empty);
            let counter = e1.counter.max(e2.counter);
            let low = e1.low().max(e2.low());
            let mut values = Vec::with_capacity((counter - low) as usize);
            // newest first: counters counter, counter-1, …, low+1
            let mut m = counter;
            while m > low {
                let v = if m > e2.counter {
                    // only side 1 can hold it (m ≤ e1.counter since m ≤ counter)
                    e1.values[(e1.counter - m) as usize].clone()
                } else if m > e1.counter {
                    e2.values[(e2.counter - m) as usize].clone()
                } else {
                    // both know the dot; both hold it live (m > both lows)
                    e1.values[(e1.counter - m) as usize].clone()
                };
                values.push(v);
                m -= 1;
            }
            out.insert(actor.clone(), Entry { counter, values });
        }
        DvvSet { entries: out }
    }

    /// In-place [`DvvSet::sync`].
    pub fn sync_into(&mut self, other: &Self) {
        *self = self.sync(other);
    }
}

impl<A: Actor + fmt::Display, V: fmt::Display> fmt::Display for DvvSet<A, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}:{}", e.counter)?;
            write!(f, "[")?;
            for (j, v) in e.values.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = DvvSet<&'static str, &'static str>;

    #[test]
    fn empty_set() {
        let s: S = DvvSet::new();
        assert!(s.is_empty());
        assert_eq!(s.sibling_count(), 0);
        assert_eq!(s.actor_count(), 0);
        assert!(s.context().is_empty());
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn first_write_gets_dot_one() {
        let mut s: S = DvvSet::new();
        let d = s.update(&VersionVector::new(), "A", "v1");
        assert_eq!(d, Dot::new("A", 1));
        assert_eq!(s.sibling_count(), 1);
        assert_eq!(s.context().get(&"A"), 1);
    }

    #[test]
    fn concurrent_blind_writes_coexist() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1");
        s.update(&VersionVector::new(), "A", "v2");
        assert_eq!(s.sibling_count(), 2);
        let vals: Vec<_> = s.values().collect();
        assert_eq!(vals, vec![&"v2", &"v1"], "newest first");
    }

    #[test]
    fn informed_write_discards_what_it_saw() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1");
        s.update(&VersionVector::new(), "A", "v2");
        let ctx = s.context();
        let d = s.update(&ctx, "A", "v3");
        assert_eq!(d, Dot::new("A", 3));
        assert_eq!(s.sibling_count(), 1);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![&"v3"]);
        // knowledge preserved
        assert!(s.contains(&Dot::new("A", 1)));
        assert!(s.contains(&Dot::new("A", 2)));
    }

    #[test]
    fn partial_context_discards_only_covered_suffix() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1"); // (A,1)
        s.update(&VersionVector::new(), "A", "v2"); // (A,2)
        let mut ctx = VersionVector::new();
        ctx.set("A", 1); // saw only v1
        s.update(&ctx, "A", "v3"); // (A,3)
        assert_eq!(s.sibling_count(), 2, "v2 survives, v1 discarded");
        let dots: Vec<_> = s.dotted_values().map(|(d, _)| d).collect();
        assert_eq!(dots, vec![Dot::new("A", 3), Dot::new("A", 2)]);
    }

    #[test]
    fn dotted_values_positions() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1");
        s.update(&VersionVector::new(), "B", "v2");
        let pairs: Vec<_> = s.dotted_values().collect();
        assert_eq!(
            pairs,
            vec![(Dot::new("A", 1), &"v1"), (Dot::new("B", 1), &"v2")]
        );
    }

    #[test]
    fn contains_covers_obsolete_dots() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1");
        let ctx = s.context();
        s.update(&ctx, "A", "v2");
        assert!(s.contains(&Dot::new("A", 1)), "discarded but known");
        assert!(s.contains(&Dot::new("A", 2)));
        assert!(!s.contains(&Dot::new("A", 3)));
        assert!(!s.contains(&Dot::new("B", 1)));
    }

    #[test]
    fn sync_identical_is_idempotent() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v1");
        s.update(&VersionVector::new(), "A", "v2");
        let merged = s.sync(&s);
        assert_eq!(merged, s);
    }

    #[test]
    fn sync_keeps_concurrent_from_both_sides() {
        let mut s1: S = DvvSet::new();
        s1.update(&VersionVector::new(), "A", "va");
        let mut s2: S = DvvSet::new();
        s2.update(&VersionVector::new(), "B", "vb");
        let m = s1.sync(&s2);
        assert_eq!(m.sibling_count(), 2);
        assert_eq!(m, s2.sync(&s1), "commutative");
    }

    #[test]
    fn sync_drops_remotely_discarded_values() {
        // s1 holds v1 live; s2 saw v1 and overwrote it with v2.
        let mut s1: S = DvvSet::new();
        s1.update(&VersionVector::new(), "A", "v1");
        let mut s2 = s1.clone();
        let ctx = s2.context();
        s2.update(&ctx, "A", "v2");
        let m = s1.sync(&s2);
        assert_eq!(m.sibling_count(), 1);
        assert_eq!(m.values().collect::<Vec<_>>(), vec![&"v2"]);
        assert_eq!(m, s2.sync(&s1));
    }

    #[test]
    fn sync_with_knowledge_only_entry_kills_value() {
        // s2 knows (A,1..5) with nothing live; s1 holds (A,3) live → dies.
        let mut s1: S = DvvSet::new();
        s1.entries.insert(
            "A",
            Entry {
                counter: 3,
                values: vec!["v3"],
            },
        );
        let mut s2: S = DvvSet::new();
        s2.entries.insert(
            "A",
            Entry {
                counter: 5,
                values: vec![],
            },
        );
        let m = s1.sync(&s2);
        assert_eq!(m.sibling_count(), 0);
        assert_eq!(m.context().get(&"A"), 5);
    }

    #[test]
    fn sync_associative_on_three_replicas() {
        let mut s1: S = DvvSet::new();
        s1.update(&VersionVector::new(), "A", "va");
        let mut s2: S = DvvSet::new();
        s2.update(&VersionVector::new(), "B", "vb");
        let mut s3 = s1.sync(&s2);
        let ctx = s3.context();
        s3.update(&ctx, "C", "vc");
        let left = s1.sync(&s2).sync(&s3);
        let right = s1.sync(&s2.sync(&s3));
        assert_eq!(left, right);
    }

    #[test]
    fn update_after_sync_collapses_all() {
        let mut s1: S = DvvSet::new();
        s1.update(&VersionVector::new(), "A", "va");
        let mut s2: S = DvvSet::new();
        s2.update(&VersionVector::new(), "B", "vb");
        let mut m = s1.sync(&s2);
        let ctx = m.context();
        m.update(&ctx, "A", "vc");
        assert_eq!(m.values().collect::<Vec<_>>(), vec![&"vc"]);
        assert_eq!(m.context().get(&"A"), 2);
        assert_eq!(m.context().get(&"B"), 1);
    }

    #[test]
    fn dominates_compares_knowledge() {
        let mut s1: S = DvvSet::new();
        s1.update(&VersionVector::new(), "A", "v1");
        let mut s2 = s1.clone();
        let ctx = s2.context();
        s2.update(&ctx, "A", "v2");
        assert!(s2.dominates(&s1));
        assert!(!s1.dominates(&s2));
        assert!(s1.dominates(&s1));
    }

    #[test]
    fn metadata_bounded_by_servers_not_clients() {
        // 100 distinct "clients" (blind writes) through 2 servers: the clock
        // keeps 2 entries, never 100 — claim 3 of the paper.
        let mut s: S = DvvSet::new();
        for i in 0..100u64 {
            let server = if i % 2 == 0 { "A" } else { "B" };
            // each client read the state at some earlier point; worst case blind:
            s.update(&VersionVector::new(), server, "v");
        }
        assert_eq!(s.actor_count(), 2);
    }

    #[test]
    fn display_shows_counters_and_values() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "x");
        assert_eq!(s.to_string(), "{A:1[x]}");
    }

    #[test]
    fn sync_empty_is_identity() {
        let mut s: S = DvvSet::new();
        s.update(&VersionVector::new(), "A", "v");
        let e: S = DvvSet::new();
        assert_eq!(s.sync(&e), s);
        assert_eq!(e.sync(&s), s);
    }
}
