//! Small identifier newtypes shared between the clock mechanisms and the
//! key-value store.
//!
//! The DVV design assigns dots at **replica servers** ([`ReplicaId`]) while
//! the classic Riak baseline assigns version-vector entries to **clients**
//! ([`ClientId`]). [`WriterId`] unifies the two for mechanisms that can be
//! parameterised either way.

use core::fmt;

/// Identifier of a replica server (a storage node that coordinates writes).
///
/// # Examples
///
/// ```
/// use dvv::ReplicaId;
/// let a = ReplicaId(0);
/// let b = ReplicaId(1);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "s0");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for ReplicaId {
    fn from(v: u32) -> Self {
        ReplicaId(v)
    }
}

/// Identifier of a client session (an entity issuing reads and writes).
///
/// # Examples
///
/// ```
/// use dvv::ClientId;
/// assert_eq!(ClientId(42).to_string(), "c42");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u64> for ClientId {
    fn from(v: u64) -> Self {
        ClientId(v)
    }
}

/// An event owner that is either a replica server or a client.
///
/// Mechanisms that can assign clock entries to either kind of principal
/// (e.g. the causal-history ground truth) use this unified id.
///
/// # Examples
///
/// ```
/// use dvv::{WriterId, ReplicaId, ClientId};
/// let s = WriterId::from(ReplicaId(3));
/// let c = WriterId::from(ClientId(9));
/// assert_ne!(s, c);
/// assert_eq!(s.to_string(), "s3");
/// assert_eq!(c.to_string(), "c9");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WriterId {
    /// A replica server.
    Replica(ReplicaId),
    /// A client session.
    Client(ClientId),
}

impl fmt::Display for WriterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriterId::Replica(r) => write!(f, "{r}"),
            WriterId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl From<ReplicaId> for WriterId {
    fn from(r: ReplicaId) -> Self {
        WriterId::Replica(r)
    }
}

impl From<ClientId> for WriterId {
    fn from(c: ClientId) -> Self {
        WriterId::Client(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_display_and_order() {
        let ids: Vec<ReplicaId> = (0..4).map(ReplicaId).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids[2].to_string(), "s2");
        assert_eq!(ReplicaId::from(7u32), ReplicaId(7));
    }

    #[test]
    fn client_id_display_and_order() {
        assert!(ClientId(1) < ClientId(2));
        assert_eq!(ClientId::from(5u64), ClientId(5));
        assert_eq!(ClientId(5).to_string(), "c5");
    }

    #[test]
    fn writer_id_orders_replicas_before_clients() {
        let r = WriterId::from(ReplicaId(u32::MAX));
        let c = WriterId::from(ClientId(0));
        assert!(r < c, "enum discriminant order: replicas sort first");
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(ReplicaId::default(), ReplicaId(0));
        assert_eq!(ClientId::default(), ClientId(0));
    }
}
