//! # dvv — Dotted Version Vectors and companion causality-tracking mechanisms
//!
//! This crate is a from-scratch Rust implementation of the logical clocks
//! described in *“Brief Announcement: Efficient Causality Tracking in
//! Distributed Storage Systems With Dotted Version Vectors”* (Preguiça,
//! Baquero, Almeida, Fonte, Gonçalves — PODC 2012) and the companion
//! technical report (arXiv:1011.5808).
//!
//! The central idea of the paper is to keep a version's **identifier** (a
//! [`Dot`] — one globally-unique event) *separate* from its **causal past**
//! (a plain [`VersionVector`]). The resulting clock, the
//! [`Dvv`], can
//!
//! * verify causality between two versions in **O(1)** (one map lookup,
//!   instead of the O(n) entry-wise comparison needed by version vectors),
//!   and
//! * precisely track concurrency among versions written by an unbounded
//!   number of clients while using **one entry per replica server**.
//!
//! ## Module map
//!
//! | Module | Contents |
//! |---|---|
//! | [`dot`] | [`Dot`]: a unique event identifier `(actor, counter)` |
//! | [`version_vector`] | [`VersionVector`]: the classic causal-past summary |
//! | [`causal_history`] | [`CausalHistory`]: the exact set-of-events model used as ground truth |
//! | [`order`] | [`CausalOrder`]: four-way result of a causality comparison |
//! | [`dotted`] | [`Dvv`]: the paper's contribution |
//! | [`dvvset`] | [`DvvSet`]: the compact sibling-set representation |
//! | [`server`] | server-side `update` / `sync` algorithms over sibling sets |
//! | [`vve`] | version vectors with exceptions (WinFS-style comparator) |
//! | [`encode`] | compact binary encoding used for honest metadata-size accounting |
//! | [`mechanisms`] | pluggable per-key causality mechanisms used by the store (DVV, DVVSet, VV-per-client ± pruning, VV-per-server, causal histories, Lamport/LWW, ordered VV) |
//! | [`ids`] | small id newtypes ([`ReplicaId`], [`ClientId`], …) shared with the store |
//!
//! ## Quick example
//!
//! ```
//! use dvv::{Dot, VersionVector, CausalOrder};
//! use dvv::dotted::Dvv;
//!
//! // Server A accepts two writes from clients that both read an empty store:
//! let v1 = Dvv::new(Dot::new("A", 1), VersionVector::new());
//! let mut ctx = VersionVector::new();
//! ctx.set("A", 1);
//! let v2 = Dvv::new(Dot::new("A", 2), ctx); // saw v1
//! // v2 causally dominates v1 — verified with a single lookup:
//! assert_eq!(v1.causal_cmp(&v2), CausalOrder::Before);
//!
//! // A concurrent write that did NOT see v2:
//! let v3 = Dvv::new(Dot::new("A", 3), {
//!     let mut c = VersionVector::new();
//!     c.set("A", 1);
//!     c
//! });
//! assert_eq!(v2.causal_cmp(&v3), CausalOrder::Concurrent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actor;
pub mod causal_history;
pub mod dot;
pub mod dotted;
pub mod dvvset;
pub mod encode;
pub mod error;
pub mod ids;
pub mod mechanisms;
pub mod order;
pub mod server;
pub mod version_vector;
pub mod vve;

pub use actor::Actor;
pub use causal_history::CausalHistory;
pub use dot::Dot;
pub use dotted::Dvv;
pub use dvvset::DvvSet;
pub use error::DecodeError;
pub use ids::{ClientId, ReplicaId, WriterId};
pub use order::CausalOrder;
pub use version_vector::VersionVector;
