//! [`CausalOrder`]: the four possible outcomes of a causality comparison.

use core::fmt;

/// Result of comparing two versions (or clocks) under the causality partial
/// order.
///
/// Unlike [`core::cmp::Ordering`], a causal comparison has a fourth outcome:
/// two versions may be [`Concurrent`](CausalOrder::Concurrent) — neither
/// happened before the other. Because of that fourth case, the clock types
/// in this crate deliberately do **not** implement [`PartialOrd`]; they
/// expose an explicit `causal_cmp` method returning this enum instead.
///
/// # Examples
///
/// ```
/// use dvv::CausalOrder;
/// assert!(CausalOrder::Before.is_before());
/// assert!(CausalOrder::Concurrent.is_concurrent());
/// assert_eq!(CausalOrder::Before.reverse(), CausalOrder::After);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CausalOrder {
    /// The two versions are the same event (identical causal histories).
    Equal,
    /// The left version causally precedes (happened before) the right.
    Before,
    /// The left version causally succeeds (happened after) the right.
    After,
    /// Neither version precedes the other.
    Concurrent,
}

impl CausalOrder {
    /// Returns `true` if the comparison found the two versions equal.
    #[must_use]
    pub fn is_equal(self) -> bool {
        self == CausalOrder::Equal
    }

    /// Returns `true` if the left version happened strictly before the right.
    #[must_use]
    pub fn is_before(self) -> bool {
        self == CausalOrder::Before
    }

    /// Returns `true` if the left version happened strictly after the right.
    #[must_use]
    pub fn is_after(self) -> bool {
        self == CausalOrder::After
    }

    /// Returns `true` if the versions are concurrent.
    #[must_use]
    pub fn is_concurrent(self) -> bool {
        self == CausalOrder::Concurrent
    }

    /// Returns `true` if the left version is dominated by the right
    /// (strictly before, or equal).
    #[must_use]
    pub fn is_dominated(self) -> bool {
        matches!(self, CausalOrder::Before | CausalOrder::Equal)
    }

    /// Returns `true` if the left version dominates the right
    /// (strictly after, or equal).
    #[must_use]
    pub fn dominates(self) -> bool {
        matches!(self, CausalOrder::After | CausalOrder::Equal)
    }

    /// The comparison with the operands swapped.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::CausalOrder;
    /// assert_eq!(CausalOrder::Concurrent.reverse(), CausalOrder::Concurrent);
    /// assert_eq!(CausalOrder::After.reverse(), CausalOrder::Before);
    /// ```
    #[must_use]
    pub fn reverse(self) -> CausalOrder {
        match self {
            CausalOrder::Before => CausalOrder::After,
            CausalOrder::After => CausalOrder::Before,
            other => other,
        }
    }

    /// Builds a [`CausalOrder`] from the two dominance predicates
    /// `left ⊆ right` and `right ⊆ left` (set-inclusion of causal
    /// histories, per Schwarz & Mattern).
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::CausalOrder;
    /// assert_eq!(CausalOrder::from_dominance(true, true), CausalOrder::Equal);
    /// assert_eq!(CausalOrder::from_dominance(true, false), CausalOrder::Before);
    /// assert_eq!(CausalOrder::from_dominance(false, true), CausalOrder::After);
    /// assert_eq!(CausalOrder::from_dominance(false, false), CausalOrder::Concurrent);
    /// ```
    #[must_use]
    pub fn from_dominance(left_included: bool, right_included: bool) -> CausalOrder {
        match (left_included, right_included) {
            (true, true) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (false, false) => CausalOrder::Concurrent,
        }
    }

    /// Converts to a [`core::cmp::Ordering`] when the versions are ordered,
    /// or `None` when they are concurrent.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::CausalOrder;
    /// use core::cmp::Ordering;
    /// assert_eq!(CausalOrder::Before.to_ordering(), Some(Ordering::Less));
    /// assert_eq!(CausalOrder::Concurrent.to_ordering(), None);
    /// ```
    #[must_use]
    pub fn to_ordering(self) -> Option<core::cmp::Ordering> {
        match self {
            CausalOrder::Equal => Some(core::cmp::Ordering::Equal),
            CausalOrder::Before => Some(core::cmp::Ordering::Less),
            CausalOrder::After => Some(core::cmp::Ordering::Greater),
            CausalOrder::Concurrent => None,
        }
    }
}

impl fmt::Display for CausalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CausalOrder::Equal => "=",
            CausalOrder::Before => "<",
            CausalOrder::After => ">",
            CausalOrder::Concurrent => "||",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::CausalOrder::*;
    use super::*;

    #[test]
    fn predicates_cover_all_variants() {
        assert!(Equal.is_equal() && !Equal.is_before() && !Equal.is_concurrent());
        assert!(Before.is_before() && Before.is_dominated() && !Before.dominates());
        assert!(After.is_after() && After.dominates() && !After.is_dominated());
        assert!(
            Concurrent.is_concurrent() && !Concurrent.dominates() && !Concurrent.is_dominated()
        );
        assert!(Equal.dominates() && Equal.is_dominated());
    }

    #[test]
    fn reverse_is_involutive() {
        for o in [Equal, Before, After, Concurrent] {
            assert_eq!(o.reverse().reverse(), o);
        }
    }

    #[test]
    fn from_dominance_matches_set_inclusion_semantics() {
        assert_eq!(CausalOrder::from_dominance(true, true), Equal);
        assert_eq!(CausalOrder::from_dominance(true, false), Before);
        assert_eq!(CausalOrder::from_dominance(false, true), After);
        assert_eq!(CausalOrder::from_dominance(false, false), Concurrent);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Concurrent.to_string(), "||");
        assert_eq!(Before.to_string(), "<");
        assert_eq!(After.to_string(), ">");
        assert_eq!(Equal.to_string(), "=");
    }

    #[test]
    fn to_ordering_roundtrip() {
        use core::cmp::Ordering;
        assert_eq!(Equal.to_ordering(), Some(Ordering::Equal));
        assert_eq!(After.to_ordering(), Some(Ordering::Greater));
        assert_eq!(Concurrent.to_ordering(), None);
    }
}
