//! [`Vve`]: version vectors with exceptions (WinFS-style), a related-work
//! comparator.
//!
//! The paper's related-work section contrasts DVVs with WinFS's *version
//! vectors with exceptions* (Malkhi & Terry, 2007): a VVE records, per
//! actor, a base counter plus an explicit set of missing counters below the
//! base, so it can represent **any** (non-contiguous) causal history — at
//! the cost of unbounded exception lists under sustained concurrency. In
//! most multi-version stores a client can only replace all versions it has
//! seen, making a DVV with a single dot sufficient; this module exists to
//! demonstrate that trade-off empirically.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::actor::Actor;
use crate::dot::Dot;
use crate::order::CausalOrder;
use crate::version_vector::VersionVector;

/// Per-actor state: everything up to `base` is included, except the
/// counters listed in `exceptions` (all of which are `≤ base`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ActorState {
    base: u64,
    exceptions: BTreeSet<u64>,
}

/// A version vector with exceptions: an exact representation of an
/// arbitrary causal history.
///
/// # Examples
///
/// ```
/// use dvv::vve::Vve;
/// use dvv::Dot;
///
/// let mut h = Vve::new();
/// h.add(Dot::new("A", 1));
/// h.add(Dot::new("A", 3)); // gap at (A,2)
/// assert!(h.contains(&Dot::new("A", 1)));
/// assert!(!h.contains(&Dot::new("A", 2)));
/// assert!(h.contains(&Dot::new("A", 3)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vve<A: Ord> {
    entries: BTreeMap<A, ActorState>,
}

impl<A: Actor> Vve<A> {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Vve {
            entries: BTreeMap::new(),
        }
    }

    /// Whether `dot` is in the history.
    #[must_use]
    pub fn contains(&self, dot: &Dot<A>) -> bool {
        self.entries
            .get(dot.actor())
            .is_some_and(|st| dot.counter() <= st.base && !st.exceptions.contains(&dot.counter()))
    }

    /// Adds one event, extending the base or filling an exception as
    /// appropriate. Returns `true` if the event was new.
    pub fn add(&mut self, dot: Dot<A>) -> bool {
        let (actor, counter) = dot.into_parts();
        let st = self.entries.entry(actor).or_default();
        if counter <= st.base {
            st.exceptions.remove(&counter)
        } else {
            for missing in st.base + 1..counter {
                st.exceptions.insert(missing);
            }
            st.base = counter;
            true
        }
    }

    /// Set union with another history.
    pub fn union(&mut self, other: &Self) {
        for (actor, theirs) in &other.entries {
            let st = self.entries.entry(actor.clone()).or_default();
            if theirs.base > st.base {
                // counters in (st.base, theirs.base] that *they* are missing
                // are missing from the union too; ours above base were all
                // missing before.
                for c in st.base + 1..=theirs.base {
                    if theirs.exceptions.contains(&c) {
                        st.exceptions.insert(c);
                    }
                }
                st.base = theirs.base;
            }
            // Below min(base, theirs.base): missing iff missing from both.
            st.exceptions
                .retain(|c| *c > theirs.base || theirs.exceptions.contains(c));
        }
    }

    /// Returns the union without mutating either operand.
    #[must_use]
    pub fn united(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.union(other);
        out
    }

    /// Whether `self ⊆ other` as sets of events.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.entries.iter().all(|(actor, st)| {
            let theirs = match other.entries.get(actor) {
                Some(t) => t,
                None => return st.base == st.exceptions.len() as u64,
            };
            // every counter ≤ st.base not excepted here must be present there
            if st.base <= theirs.base {
                // missing-from-them within our range must also be missing here
                theirs
                    .exceptions
                    .iter()
                    .take_while(|c| **c <= st.base)
                    .all(|c| st.exceptions.contains(c))
            } else {
                // we include events above their base unless excepted: all of
                // (theirs.base, st.base] must be excepted here…
                (theirs.base + 1..=st.base).all(|c| st.exceptions.contains(&c))
                    && theirs.exceptions.iter().all(|c| st.exceptions.contains(c))
            }
        })
    }

    /// Four-way causal comparison by set inclusion.
    #[must_use]
    pub fn causal_cmp(&self, other: &Self) -> CausalOrder {
        CausalOrder::from_dominance(self.is_subset(other), other.is_subset(self))
    }

    /// Total number of exceptions across all actors — the metadata overhead
    /// a plain VV does not have.
    #[must_use]
    pub fn exception_count(&self) -> usize {
        self.entries.values().map(|st| st.exceptions.len()).sum()
    }

    /// Number of per-actor entries.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries
            .values()
            .all(|st| st.base == st.exceptions.len() as u64)
    }

    /// The contiguous-prefix approximation (drops exception information).
    #[must_use]
    pub fn to_version_vector(&self) -> VersionVector<A> {
        self.entries
            .iter()
            .map(|(a, st)| (a.clone(), st.base))
            .collect()
    }

    /// Builds the exact history of a version vector (no exceptions).
    #[must_use]
    pub fn from_version_vector(vv: &VersionVector<A>) -> Self {
        let mut out = Vve::new();
        for (actor, counter) in vv.iter() {
            out.entries.insert(
                actor.clone(),
                ActorState {
                    base: counter,
                    exceptions: BTreeSet::new(),
                },
            );
        }
        out
    }

    /// (crate-internal) marks `dot` as an exception (missing event). Used
    /// when rebuilding from a binary encoding. Returns `false` if the dot's
    /// counter is above the actor's base (not representable as exception).
    pub(crate) fn except(&mut self, dot: &Dot<A>) -> bool {
        match self.entries.get_mut(dot.actor()) {
            Some(st) if dot.counter() <= st.base => {
                st.exceptions.insert(dot.counter());
                true
            }
            _ => false,
        }
    }

    /// Iterates over every event in the history (test/oracle use; linear in
    /// the event count).
    pub fn iter_dots(&self) -> impl Iterator<Item = Dot<A>> + '_ {
        self.entries.iter().flat_map(|(a, st)| {
            (1..=st.base)
                .filter(|c| !st.exceptions.contains(c))
                .map(|c| Dot::new(a.clone(), c))
        })
    }
}

impl<A: Actor> FromIterator<Dot<A>> for Vve<A> {
    fn from_iter<I: IntoIterator<Item = Dot<A>>>(iter: I) -> Self {
        let mut v = Vve::new();
        for d in iter {
            v.add(d);
        }
        v
    }
}

impl<A: Actor + fmt::Display> fmt::Display for Vve<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, st)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}:{}", st.base)?;
            if !st.exceptions.is_empty() {
                write!(f, "\\{{")?;
                for (j, c) in st.exceptions.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "}}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal_history::CausalHistory;
    use crate::order::CausalOrder::*;

    fn vve(dots: &[(&'static str, u64)]) -> Vve<&'static str> {
        dots.iter().map(|&(a, c)| Dot::new(a, c)).collect()
    }

    fn ch(dots: &[(&'static str, u64)]) -> CausalHistory<&'static str> {
        dots.iter().map(|&(a, c)| Dot::new(a, c)).collect()
    }

    #[test]
    fn empty() {
        let v: Vve<&str> = Vve::new();
        assert!(v.is_empty());
        assert_eq!(v.exception_count(), 0);
        assert!(!v.contains(&Dot::new("A", 1)));
    }

    #[test]
    fn add_contiguous_has_no_exceptions() {
        let v = vve(&[("A", 1), ("A", 2), ("A", 3)]);
        assert_eq!(v.exception_count(), 0);
        assert!(v.contains(&Dot::new("A", 3)));
        assert!(!v.contains(&Dot::new("A", 4)));
    }

    #[test]
    fn add_with_gap_records_exceptions() {
        let v = vve(&[("A", 1), ("A", 4)]);
        assert_eq!(v.exception_count(), 2); // missing 2 and 3
        assert!(!v.contains(&Dot::new("A", 2)));
        assert!(!v.contains(&Dot::new("A", 3)));
        assert!(v.contains(&Dot::new("A", 4)));
    }

    #[test]
    fn filling_a_gap_removes_the_exception() {
        let mut v = vve(&[("A", 1), ("A", 3)]);
        assert_eq!(v.exception_count(), 1);
        assert!(v.add(Dot::new("A", 2)));
        assert!(!v.add(Dot::new("A", 2)), "second add is a no-op");
        assert_eq!(v.exception_count(), 0);
    }

    #[test]
    fn union_matches_set_union_against_reference() {
        type Dots = &'static [(&'static str, u64)];
        let cases: &[(Dots, Dots)] = &[
            (&[("A", 1), ("A", 3)], &[("A", 2)]),
            (&[("A", 2)], &[("B", 1), ("A", 5)]),
            (&[("A", 1), ("B", 3)], &[("A", 4), ("B", 1)]),
            (&[], &[("A", 2)]),
        ];
        for (l, r) in cases {
            let u = vve(l).united(&vve(r));
            let expected: CausalHistory<&str> = ch(l).united(&ch(r));
            let got: CausalHistory<&str> = u.iter_dots().collect();
            assert_eq!(got, expected, "union mismatch for {l:?} ∪ {r:?}");
        }
    }

    #[test]
    fn subset_and_causal_cmp_match_reference() {
        let fixtures: &[&[(&'static str, u64)]] = &[
            &[],
            &[("A", 1)],
            &[("A", 1), ("A", 2)],
            &[("A", 1), ("A", 3)],
            &[("A", 1), ("A", 2), ("B", 1)],
            &[("B", 1)],
            &[("A", 3)],
        ];
        for l in fixtures {
            for r in fixtures {
                let fast = vve(l).causal_cmp(&vve(r));
                let exact = ch(l).causal_cmp(&ch(r));
                assert_eq!(fast, exact, "cmp mismatch for {l:?} vs {r:?}");
            }
        }
    }

    #[test]
    fn paper_gapped_history_is_representable() {
        // {A1, A3} — the history a plain VV cannot express (Figure 1b).
        let v = vve(&[("A", 1), ("A", 3)]);
        let w = vve(&[("A", 1), ("A", 2)]);
        assert_eq!(v.causal_cmp(&w), Concurrent);
    }

    #[test]
    fn vv_roundtrip() {
        let mut vv = VersionVector::new();
        vv.set("A", 3);
        vv.set("B", 1);
        let v = Vve::from_version_vector(&vv);
        assert_eq!(v.exception_count(), 0);
        assert_eq!(v.to_version_vector(), vv);
    }

    #[test]
    fn to_version_vector_overapproximates() {
        let v = vve(&[("A", 1), ("A", 3)]);
        assert_eq!(v.to_version_vector().get(&"A"), 3);
    }

    #[test]
    fn display_shows_exceptions() {
        let v = vve(&[("A", 1), ("A", 3)]);
        assert_eq!(v.to_string(), "[A:3\\{2}]");
        assert_eq!(vve(&[("A", 2)]).to_string(), "[A:2\\{1}]");
    }

    #[test]
    fn is_empty_tolerates_all_excepted_entries() {
        // an entry whose events were all exceptions represents no events
        let mut v: Vve<&str> = Vve::new();
        v.add(Dot::new("A", 2)); // {2}, exception {1}

        // remove the only event by constructing the pathological state via union
        // with an empty history is identity; emptiness here is just structural:
        assert!(!v.is_empty());
    }
}
