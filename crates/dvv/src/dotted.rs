//! [`Dvv`]: the dotted version vector — the paper's contribution.

use core::fmt;

use crate::actor::Actor;
use crate::causal_history::CausalHistory;
use crate::dot::Dot;
use crate::order::CausalOrder;
use crate::version_vector::VersionVector;

/// A dotted version vector: the pair `(dot, vv)` where the [`Dot`] is the
/// globally unique identifier of *this* version and the [`VersionVector`]
/// is its causal past.
///
/// The represented causal history is
/// `C[[((i,n), v)]] = {i_n} ∪ ⋃_j { j_m | 1 ≤ m ≤ v[j] }` — the dot itself
/// plus everything the vector summarises. Note the dot is **not** required
/// to be contiguous with the vector: after concurrent client writes through
/// the same server, a version may be `(A,3)[A:1]`, whose history `{A1, A3}`
/// no plain version vector can express (Figure 1b/1c of the paper).
///
/// # O(1) comparison
///
/// `a < b iff na ≤ vb[ia]` — version `a` precedes `b` exactly when `a`'s
/// dot is inside `b`'s causal past: one map lookup.
///
/// # Examples
///
/// ```
/// use dvv::{Dot, VersionVector, CausalOrder};
/// use dvv::dotted::Dvv;
///
/// // The paper's Figure 1c concurrency: (A,3)[A:1] || (A,2)[A:1]
/// let mut past = VersionVector::new();
/// past.set("A", 1);
/// let v2 = Dvv::new(Dot::new("A", 2), past.clone());
/// let v3 = Dvv::new(Dot::new("A", 3), past);
/// assert_eq!(v3.causal_cmp(&v2), CausalOrder::Concurrent);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dvv<A: Ord> {
    dot: Dot<A>,
    vv: VersionVector<A>,
}

impl<A: Actor> Dvv<A> {
    /// Creates a dotted version vector from a version identifier and its
    /// causal past.
    ///
    /// The past may or may not already include earlier events by the dot's
    /// actor; it must simply not include the dot itself.
    ///
    /// # Panics
    ///
    /// Panics if `vv` already contains `dot` — that would make the version
    /// its own causal ancestor.
    #[must_use]
    pub fn new(dot: Dot<A>, vv: VersionVector<A>) -> Self {
        assert!(
            !vv.contains(&dot),
            "a version's causal past must not contain its own identifier"
        );
        Dvv { dot, vv }
    }

    /// The unique identifier of this version.
    #[must_use]
    pub fn dot(&self) -> &Dot<A> {
        &self.dot
    }

    /// The causal past of this version (excluding the dot itself).
    #[must_use]
    pub fn past(&self) -> &VersionVector<A> {
        &self.vv
    }

    /// O(1) test: does this version causally precede `other`?
    ///
    /// True exactly when this version's dot is inside `other`'s causal
    /// past — a single map lookup, independent of the number of actors.
    #[must_use]
    pub fn precedes(&self, other: &Self) -> bool {
        other.vv.contains(&self.dot)
    }

    /// O(1) test: are the two versions concurrent?
    #[must_use]
    pub fn concurrent(&self, other: &Self) -> bool {
        self.causal_cmp(other) == CausalOrder::Concurrent
    }

    /// Four-way causal comparison in O(1).
    ///
    /// Two versions are the same iff their dots are equal (dots are
    /// globally unique); otherwise each direction is one containment test.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::{Dot, VersionVector, CausalOrder};
    /// use dvv::dotted::Dvv;
    /// let v1 = Dvv::new(Dot::new("A", 1), VersionVector::new());
    /// let mut past = VersionVector::new();
    /// past.set("A", 1);
    /// let v2 = Dvv::new(Dot::new("B", 1), past);
    /// assert_eq!(v1.causal_cmp(&v2), CausalOrder::Before);
    /// ```
    #[must_use]
    pub fn causal_cmp(&self, other: &Self) -> CausalOrder {
        if self.dot == other.dot {
            CausalOrder::Equal
        } else {
            CausalOrder::from_dominance(self.precedes(other), other.precedes(self))
        }
    }

    /// Whether `dot` is in the represented history (the version id or its
    /// past).
    #[must_use]
    pub fn contains(&self, dot: &Dot<A>) -> bool {
        self.dot == *dot || self.vv.contains(dot)
    }

    /// The full history as a version vector, *if* it is expressible as one
    /// — i.e. the dot extends its past contiguously. Returns `None` when
    /// the history has a gap (e.g. `(A,3)[A:1]`).
    #[must_use]
    pub fn to_compact_vv(&self) -> Option<VersionVector<A>> {
        let before = self.vv.get(self.dot.actor());
        (self.dot.counter() == before + 1).then(|| {
            let mut vv = self.vv.clone();
            vv.record(self.dot.clone());
            vv
        })
    }

    /// The join of the version id and its past: the least version vector
    /// that includes the whole history. Over-approximates when the history
    /// is gapped; exact otherwise. This is what a reader's *context*
    /// accumulates.
    #[must_use]
    pub fn join_vv(&self) -> VersionVector<A> {
        let mut vv = self.vv.clone();
        vv.record(self.dot.clone());
        vv
    }

    /// The exact causal history represented by this clock (materialised;
    /// linear in the event count — test/oracle use only).
    #[must_use]
    pub fn to_causal_history(&self) -> CausalHistory<A> {
        let mut h = CausalHistory::from_version_vector(&self.vv);
        h.insert(self.dot.clone());
        h
    }

    /// Destructures into `(dot, past)`.
    #[must_use]
    pub fn into_parts(self) -> (Dot<A>, VersionVector<A>) {
        (self.dot, self.vv)
    }
}

impl<A: Actor + fmt::Display> fmt::Display for Dvv<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dot, self.vv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::CausalOrder::*;

    fn vv(entries: &[(&'static str, u64)]) -> VersionVector<&'static str> {
        entries.iter().copied().collect()
    }

    fn dvv(actor: &'static str, n: u64, past: &[(&'static str, u64)]) -> Dvv<&'static str> {
        Dvv::new(Dot::new(actor, n), vv(past))
    }

    #[test]
    fn accessors_and_parts() {
        let d = dvv("A", 3, &[("A", 1), ("B", 2)]);
        assert_eq!(d.dot(), &Dot::new("A", 3));
        assert_eq!(d.past().get(&"B"), 2);
        let (dot, past) = d.into_parts();
        assert_eq!(dot, Dot::new("A", 3));
        assert_eq!(past.get(&"A"), 1);
    }

    #[test]
    #[should_panic(expected = "own identifier")]
    fn self_containing_past_rejected() {
        let _ = dvv("A", 1, &[("A", 1)]);
    }

    #[test]
    fn paper_figure_1c_trace() {
        // v1 = (A,1)[] ; v2 = (A,2)[A:1] ; v3 = (A,3)[A:1] ; final (A,4)[A:3,B:1]
        let v1 = dvv("A", 1, &[]);
        let v2 = dvv("A", 2, &[("A", 1)]);
        let v3 = dvv("A", 3, &[("A", 1)]);
        let v4 = dvv("A", 4, &[("A", 3), ("B", 1)]);

        assert_eq!(v1.causal_cmp(&v2), Before);
        assert_eq!(v2.causal_cmp(&v3), Concurrent, "the paper's headline case");
        assert_eq!(v3.causal_cmp(&v2), Concurrent);
        // The final write saw both concurrent versions:
        assert_eq!(v2.causal_cmp(&v4), Before);
        assert_eq!(v3.causal_cmp(&v4), Before);
    }

    #[test]
    fn equal_iff_same_dot() {
        let a = dvv("A", 2, &[("A", 1)]);
        let b = dvv("A", 2, &[("A", 1)]);
        assert_eq!(a.causal_cmp(&b), Equal);
    }

    #[test]
    fn precedes_is_one_lookup_semantics() {
        let a = dvv("A", 1, &[]);
        let b = dvv("B", 1, &[("A", 1)]);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn contains_covers_dot_and_past() {
        let d = dvv("A", 3, &[("A", 1), ("B", 1)]);
        assert!(d.contains(&Dot::new("A", 3)));
        assert!(d.contains(&Dot::new("A", 1)));
        assert!(d.contains(&Dot::new("B", 1)));
        assert!(
            !d.contains(&Dot::new("A", 2)),
            "gap: (A,2) not in {{A1,A3,B1}}"
        );
    }

    #[test]
    fn compact_vv_only_when_contiguous() {
        assert_eq!(
            dvv("A", 2, &[("A", 1)]).to_compact_vv(),
            Some(vv(&[("A", 2)]))
        );
        assert_eq!(dvv("A", 3, &[("A", 1)]).to_compact_vv(), None);
    }

    #[test]
    fn join_vv_records_the_dot() {
        let d = dvv("A", 3, &[("A", 1), ("B", 1)]);
        assert_eq!(d.join_vv(), vv(&[("A", 3), ("B", 1)]));
    }

    #[test]
    fn causal_history_matches_definition() {
        // C[[(A,3)[A:1]]] = {A1, A3}
        let d = dvv("A", 3, &[("A", 1)]);
        let h = d.to_causal_history();
        assert_eq!(h.len(), 2);
        assert!(h.contains(&Dot::new("A", 1)));
        assert!(h.contains(&Dot::new("A", 3)));
        assert!(!h.contains(&Dot::new("A", 2)));
    }

    #[test]
    fn dvv_comparison_agrees_with_history_model_on_fixture() {
        let fixtures = [
            dvv("A", 1, &[]),
            dvv("A", 2, &[("A", 1)]),
            dvv("A", 3, &[("A", 1)]),
            dvv("B", 1, &[("A", 2)]),
            dvv("A", 4, &[("A", 3), ("B", 1)]),
        ];
        for x in &fixtures {
            for y in &fixtures {
                let fast = x.causal_cmp(y);
                let exact = x.to_causal_history().causal_cmp(&y.to_causal_history());
                assert_eq!(fast, exact, "mismatch for {x} vs {y}");
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(dvv("A", 3, &[("A", 1)]).to_string(), "(A,3)[A:1]");
    }
}
