//! Error types for the `dvv` crate.

use core::fmt;

/// Error returned when decoding a clock from its binary encoding fails.
///
/// # Examples
///
/// ```
/// use dvv::encode::{Decoder, Encode};
/// let mut d = Decoder::new(&[0x80]); // truncated varint
/// assert!(u64::decode(&mut d).is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A varint was longer than the maximum 10 bytes for a `u64`.
    VarintOverflow,
    /// A length prefix or counter had a value that violates an invariant
    /// (e.g. a zero dot counter).
    InvalidValue {
        /// Description of the violated invariant.
        reason: &'static str,
    },
    /// Bytes claimed to be UTF-8 were not.
    InvalidUtf8,
    /// Decoding finished but input bytes remain (strict decoding only).
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::InvalidValue { reason } => write!(f, "invalid value: {reason}"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = DecodeError::UnexpectedEnd { context: "dot" };
        assert_eq!(e.to_string(), "unexpected end of input while decoding dot");
        assert_eq!(
            DecodeError::VarintOverflow.to_string(),
            "varint exceeds 64 bits"
        );
        assert_eq!(
            DecodeError::TrailingBytes { remaining: 3 }.to_string(),
            "3 trailing bytes after value"
        );
        assert_eq!(
            DecodeError::InvalidUtf8.to_string(),
            "invalid UTF-8 in string"
        );
        assert_eq!(
            DecodeError::InvalidValue { reason: "zero dot" }.to_string(),
            "invalid value: zero dot"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<DecodeError>();
    }
}
