//! [`Dot`]: a globally unique event identifier.

use core::fmt;

use crate::actor::Actor;

/// A globally unique identifier of one event: a pair `(actor, counter)`.
///
/// Dots are the atoms of causal histories. The paper's key observation is
/// that a version's *identity* is always a single dot, and keeping that dot
/// separate from the causal past is what lets a [`Dvv`](crate::dotted::Dvv)
/// verify causality in O(1).
///
/// Counters start at 1: the first event an actor creates is `(a, 1)`,
/// matching the paper's convention that a version vector entry `v[a] = n`
/// summarises the dots `(a, 1) … (a, n)`.
///
/// # Examples
///
/// ```
/// use dvv::Dot;
/// let d = Dot::new("A", 3);
/// assert_eq!(d.actor(), &"A");
/// assert_eq!(d.counter(), 3);
/// assert_eq!(d.to_string(), "(A,3)");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dot<A> {
    actor: A,
    counter: u64,
}

impl<A: Actor> Dot<A> {
    /// Creates the dot `(actor, counter)`.
    ///
    /// # Panics
    ///
    /// Panics if `counter` is zero — counters are 1-based, and a zero
    /// counter would silently denote “no event”, a classic off-by-one trap.
    #[must_use]
    pub fn new(actor: A, counter: u64) -> Self {
        assert!(counter > 0, "dot counters are 1-based; got 0");
        Dot { actor, counter }
    }

    /// The actor that created this event.
    #[must_use]
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// The per-actor sequence number of this event (1-based).
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The next event by the same actor: `(a, n) → (a, n+1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dvv::Dot;
    /// assert_eq!(Dot::new("A", 1).advance(), Dot::new("A", 2));
    /// ```
    #[must_use]
    pub fn advance(&self) -> Self {
        Dot {
            actor: self.actor.clone(),
            counter: self.counter + 1,
        }
    }

    /// Destructures into `(actor, counter)`.
    #[must_use]
    pub fn into_parts(self) -> (A, u64) {
        (self.actor, self.counter)
    }
}

impl<A: Actor> From<(A, u64)> for Dot<A> {
    fn from((actor, counter): (A, u64)) -> Self {
        Dot::new(actor, counter)
    }
}

impl<A: Actor + fmt::Display> fmt::Display for Dot<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.actor, self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dot::new("B", 7);
        assert_eq!(d.actor(), &"B");
        assert_eq!(d.counter(), 7);
        assert_eq!(d.into_parts(), ("B", 7));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_counter_panics() {
        let _ = Dot::new("A", 0);
    }

    #[test]
    fn advance_increments_counter_only() {
        let d = Dot::new("A", 1).advance().advance();
        assert_eq!(d, Dot::new("A", 3));
    }

    #[test]
    fn ordering_is_actor_then_counter() {
        // The derived total order is used for canonical storage only,
        // never as a causal order.
        let mut dots = vec![Dot::new("B", 1), Dot::new("A", 2), Dot::new("A", 1)];
        dots.sort();
        assert_eq!(
            dots,
            vec![Dot::new("A", 1), Dot::new("A", 2), Dot::new("B", 1)]
        );
    }

    #[test]
    fn from_tuple() {
        let d: Dot<&str> = ("A", 4).into();
        assert_eq!(d, Dot::new("A", 4));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Dot::new("A", 3).to_string(), "(A,3)");
    }
}
