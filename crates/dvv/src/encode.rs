//! Compact binary encoding for clocks — the measurement instrument behind
//! the paper's *metadata size* claims.
//!
//! The evaluation compares how much causal metadata each mechanism ships on
//! the wire and stores per key. To keep that comparison honest and
//! dependency-free, every clock type implements [`Encode`]: a simple
//! LEB128-varint format (counters and lengths are varints, actors encode
//! themselves). [`Encode::encoded_len`] gives the exact size in bytes
//! without allocating.
//!
//! # Examples
//!
//! ```
//! use dvv::encode::{Encode, Decoder};
//! use dvv::VersionVector;
//!
//! let mut vv = VersionVector::new();
//! vv.set(3u32, 100);
//! let bytes = dvv::encode::to_bytes(&vv);
//! assert_eq!(bytes.len(), vv.encoded_len());
//! let back: VersionVector<u32> = dvv::encode::from_bytes(&bytes)?;
//! assert_eq!(back, vv);
//! # Ok::<(), dvv::DecodeError>(())
//! ```

use crate::actor::Actor;
use crate::causal_history::CausalHistory;
use crate::dot::Dot;
use crate::dotted::Dvv;
use crate::dvvset::DvvSet;
use crate::error::DecodeError;
use crate::ids::{ClientId, ReplicaId, WriterId};
use crate::server::{self, Tagged};
use crate::version_vector::VersionVector;
use crate::vve::Vve;

/// A cursor over input bytes for decoding.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder reading from `input`.
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] if the input is exhausted.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = self
            .input
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::UnexpectedEnd { context: "byte" })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd { context: "bytes" });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] on truncation,
    /// [`DecodeError::VarintOverflow`] past 10 bytes.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self
                .byte()
                .map_err(|_| DecodeError::UnexpectedEnd { context: "varint" })?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::VarintOverflow);
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::VarintOverflow);
            }
        }
    }
}

/// Appends a LEB128 varint to `buf`.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] writes for `v`.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

/// Types with a canonical compact binary encoding.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, and
/// [`Encode::encoded_len`] must equal the number of bytes
/// [`Encode::encode`] appends.
pub trait Encode: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Exact size of the encoding in bytes.
    fn encoded_len(&self) -> usize;

    /// Reads a value back from `d`.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Encodes `value` into a fresh buffer.
#[must_use]
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    buf
}

/// Decodes a value from `bytes`, requiring all input to be consumed.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input, or
/// [`DecodeError::TrailingBytes`] if input remains after the value.
pub fn from_bytes<T: Encode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut d = Decoder::new(bytes);
    let v = T::decode(&mut d)?;
    if d.remaining() > 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: d.remaining(),
        });
    }
    Ok(v)
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }

    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.varint()
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(*self));
    }

    fn encoded_len(&self) -> usize {
        varint_len(u64::from(*self))
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let v = d.varint()?;
        u32::try_from(v).map_err(|_| DecodeError::InvalidValue {
            reason: "u32 out of range",
        })
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.varint()? as usize;
        let bytes = d.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self);
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.varint()? as usize;
        Ok(d.bytes(len)?.to_vec())
    }
}

impl Encode for ReplicaId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ReplicaId(u32::decode(d)?))
    }
}

impl Encode for ClientId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ClientId(u64::decode(d)?))
    }
}

impl Encode for WriterId {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WriterId::Replica(r) => {
                buf.push(0);
                r.encode(buf);
            }
            WriterId::Client(c) => {
                buf.push(1);
                c.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WriterId::Replica(r) => r.encoded_len(),
            WriterId::Client(c) => c.encoded_len(),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.byte()? {
            0 => Ok(WriterId::Replica(ReplicaId::decode(d)?)),
            1 => Ok(WriterId::Client(ClientId::decode(d)?)),
            _ => Err(DecodeError::InvalidValue {
                reason: "unknown writer-id tag",
            }),
        }
    }
}

impl<A: Actor + Encode> Encode for Dot<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.actor().encode(buf);
        put_varint(buf, self.counter());
    }

    fn encoded_len(&self) -> usize {
        self.actor().encoded_len() + varint_len(self.counter())
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let actor = A::decode(d)?;
        let counter = d.varint()?;
        if counter == 0 {
            return Err(DecodeError::InvalidValue {
                reason: "dot counter must be non-zero",
            });
        }
        Ok(Dot::new(actor, counter))
    }
}

impl<A: Actor + Encode> Encode for VersionVector<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for (a, c) in self.iter() {
            a.encode(buf);
            put_varint(buf, c);
        }
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64)
            + self
                .iter()
                .map(|(a, c)| a.encoded_len() + varint_len(c))
                .sum::<usize>()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.varint()? as usize;
        let mut vv = VersionVector::new();
        for _ in 0..n {
            let a = A::decode(d)?;
            let c = d.varint()?;
            if c == 0 {
                return Err(DecodeError::InvalidValue {
                    reason: "version vector entries must be non-zero",
                });
            }
            vv.set(a, c);
        }
        Ok(vv)
    }
}

impl<A: Actor + Encode> Encode for Dvv<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.dot().encode(buf);
        self.past().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.dot().encoded_len() + self.past().encoded_len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let dot = Dot::decode(d)?;
        let vv = VersionVector::decode(d)?;
        if vv.contains(&dot) {
            return Err(DecodeError::InvalidValue {
                reason: "dvv past contains its own dot",
            });
        }
        Ok(Dvv::new(dot, vv))
    }
}

impl<A: Actor + Encode> Encode for CausalHistory<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for dot in self.iter() {
            dot.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.varint()? as usize;
        let mut h = CausalHistory::new();
        for _ in 0..n {
            h.insert(Dot::decode(d)?);
        }
        Ok(h)
    }
}

impl<A: Actor + Encode, V: Encode + Clone> Encode for DvvSet<A, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        // context entries, then per live value: (dot, value)
        self.context().encode(buf);
        put_varint(buf, self.sibling_count() as u64);
        for (dot, v) in self.dotted_values() {
            dot.encode(buf);
            v.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        self.context().encoded_len()
            + varint_len(self.sibling_count() as u64)
            + self
                .dotted_values()
                .map(|(dot, v)| dot.encoded_len() + v.encoded_len())
                .sum::<usize>()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let ctx = VersionVector::<A>::decode(d)?;
        let n = d.varint()? as usize;
        // never trust a length prefix for pre-allocation: a malformed input
        // could claim exabytes. Each pair consumes at least 3 input bytes.
        let mut pairs = Vec::with_capacity(n.min(d.remaining() / 3 + 1));
        for _ in 0..n {
            let dot = Dot::<A>::decode(d)?;
            let v = V::decode(d)?;
            pairs.push((dot, v));
        }
        rebuild_dvvset(&ctx, pairs)
    }
}

/// Reconstructs a [`DvvSet`] from its context and live `(dot, value)`
/// pairs. Fails if the pairs are inconsistent with the context (a live dot
/// above the known counter, a gap, or duplicate dots).
fn rebuild_dvvset<A: Actor, V>(
    ctx: &VersionVector<A>,
    pairs: Vec<(Dot<A>, V)>,
) -> Result<DvvSet<A, V>, DecodeError> {
    let mut by_actor: std::collections::BTreeMap<A, Vec<(u64, V)>> =
        std::collections::BTreeMap::new();
    for (dot, v) in pairs {
        let (a, c) = dot.into_parts();
        by_actor.entry(a).or_default().push((c, v));
    }
    let mut out = DvvSet::new();
    for (actor, counter) in ctx.iter() {
        // Live dots per actor must be the topmost counters, contiguous from
        // the context's counter downward (newest first after sorting).
        let mut items = by_actor.remove(actor).unwrap_or_default();
        items.sort_by(|(a, _), (b, _)| b.cmp(a));
        let contiguous_topmost = items
            .iter()
            .enumerate()
            .all(|(i, (c, _))| *c == counter - i as u64 && *c > 0);
        if !contiguous_topmost || items.len() as u64 > counter {
            return Err(DecodeError::InvalidValue {
                reason: "dvvset live dots must be the topmost contiguous counters",
            });
        }
        let values: Vec<V> = items.into_iter().map(|(_, v)| v).collect();
        out.insert_entry(actor.clone(), counter, values);
    }
    if !by_actor.is_empty() {
        return Err(DecodeError::InvalidValue {
            reason: "dvvset live dot for an actor missing from the context",
        });
    }
    Ok(out)
}

impl<A: Actor + Encode, V: Encode + Clone> Encode for Tagged<A, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.clock.encode(buf);
        self.value.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.clock.encoded_len() + self.value.encoded_len()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let clock = Dvv::<A>::decode(d)?;
        let value = V::decode(d)?;
        Ok(Tagged { clock, value })
    }
}

// `DvvMechanism`'s state (one Dvv-tagged sibling per live value), as the
// storage engines persist it. A count prefix keeps the list
// self-delimiting inside a larger record.
impl<A: Actor + Encode, V: Encode + Clone> Encode for Vec<Tagged<A, V>> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for t in self {
            t.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.varint()? as usize;
        let mut out: Vec<Tagged<A, V>> = Vec::with_capacity(n.min(d.remaining() / 3 + 1));
        for _ in 0..n {
            let t = Tagged::<A, V>::decode(d)?;
            if out.iter().any(|s| s.clock.dot() == t.clock.dot()) {
                return Err(DecodeError::InvalidValue {
                    reason: "duplicate sibling dot in dvv state",
                });
            }
            out.push(t);
        }
        // Canonical dot order is a protocol invariant (AAE fingerprints
        // hash the state); restore it rather than trusting the input.
        server::canonicalize(&mut out);
        Ok(out)
    }
}

impl<A: Actor + Encode> Encode for Vve<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        let base = self.to_version_vector();
        base.encode(buf);
        let exceptions: Vec<Dot<A>> = collect_exceptions(self);
        put_varint(buf, exceptions.len() as u64);
        for e in &exceptions {
            e.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        let base = self.to_version_vector();
        let exceptions: Vec<Dot<A>> = collect_exceptions(self);
        base.encoded_len()
            + varint_len(exceptions.len() as u64)
            + exceptions.iter().map(Encode::encoded_len).sum::<usize>()
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let base = VersionVector::<A>::decode(d)?;
        let n = d.varint()? as usize;
        let mut v = Vve::from_version_vector(&base);
        for _ in 0..n {
            let e = Dot::<A>::decode(d)?;
            if !v.except(&e) {
                return Err(DecodeError::InvalidValue {
                    reason: "vve exception above the actor's base counter",
                });
            }
        }
        Ok(v)
    }
}

fn collect_exceptions<A: Actor>(v: &Vve<A>) -> Vec<Dot<A>> {
    let base = v.to_version_vector();
    let mut out = Vec::new();
    for (actor, counter) in base.iter() {
        for c in 1..=counter {
            let dot = Dot::new(actor.clone(), c);
            if !v.contains(&dot) {
                out.push(dot);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Delta codecs
//
// The wire protocols above ship *values*; the codecs below ship *runs*:
// sorted id sequences as gap deltas, counter sequences as zigzag deltas,
// hash sequences bit-packed at the run's maximum significant width, and
// sorted key sets as shared-prefix deltas. Runs of correlated values
// (adjacent replica ids, adjacent counters, keys under a common prefix)
// collapse to a byte or two per element where the plain encodings spend
// ten.

/// Maps a signed delta onto small unsigned values: 0, -1, 1, -2, …
/// become 0, 1, 2, 3, …, keeping varints short for deltas near zero.
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Number of significant bits in `v` (0 for 0).
#[must_use]
pub fn bit_width(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Bytes a bit-packed run of `count` values at `width` bits occupies.
#[must_use]
pub fn bitpacked_len(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Packs fixed-width values into a byte stream, LSB first.
#[derive(Debug)]
pub struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    cur: u128,
    filled: u32,
}

impl<'a> BitWriter<'a> {
    /// Starts a packed run appended to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            cur: 0,
            filled: 0,
        }
    }

    /// Appends the low `width` bits of `value` (`width ≤ 64`).
    pub fn write(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        let masked = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        self.cur |= u128::from(masked) << self.filled;
        self.filled += width;
        while self.filled >= 8 {
            self.out.push((self.cur & 0xff) as u8);
            self.cur >>= 8;
            self.filled -= 8;
        }
    }

    /// Flushes the final partial byte (zero-padded high bits).
    pub fn finish(self) {
        if self.filled > 0 {
            self.out.push((self.cur & 0xff) as u8);
        }
    }
}

/// Reads back a [`BitWriter`] run from a [`Decoder`]. Dropping the
/// reader discards any padding bits in the last consumed byte.
#[derive(Debug)]
pub struct BitReader<'d, 'a> {
    d: &'d mut Decoder<'a>,
    cur: u128,
    avail: u32,
}

impl<'d, 'a> BitReader<'d, 'a> {
    /// Starts reading a packed run at the decoder's position.
    pub fn new(d: &'d mut Decoder<'a>) -> Self {
        BitReader {
            d,
            cur: 0,
            avail: 0,
        }
    }

    /// Reads the next `width`-bit value (`width ≤ 64`).
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] if the input is exhausted.
    pub fn read(&mut self, width: u32) -> Result<u64, DecodeError> {
        debug_assert!(width <= 64);
        while self.avail < width {
            self.cur |= u128::from(self.d.byte()?) << self.avail;
            self.avail += 8;
        }
        let mask: u128 = if width == 0 { 0 } else { (1u128 << width) - 1 };
        let v = (self.cur & mask) as u64;
        self.cur >>= width;
        self.avail -= width;
        Ok(v)
    }
}

/// Appends a strictly increasing id sequence as gap deltas: the count,
/// the first id verbatim, then `id[i] − id[i−1] − 1` per element.
///
/// # Panics
///
/// Debug-asserts that `ids` is strictly increasing.
pub fn put_sorted_ids(buf: &mut Vec<u8>, ids: &[u64]) {
    put_varint(buf, ids.len() as u64);
    let mut prev = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        if i == 0 {
            put_varint(buf, id);
        } else {
            debug_assert!(id > prev, "ids must be strictly increasing");
            put_varint(buf, id - prev - 1);
        }
        prev = id;
    }
}

/// Exact size of [`put_sorted_ids`]'s output.
#[must_use]
pub fn sorted_ids_len(ids: &[u64]) -> usize {
    let mut n = varint_len(ids.len() as u64);
    let mut prev = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        n += if i == 0 {
            varint_len(id)
        } else {
            varint_len(id - prev - 1)
        };
        prev = id;
    }
    n
}

/// Reads back a [`put_sorted_ids`] sequence.
///
/// # Errors
///
/// [`DecodeError::UnexpectedEnd`] on truncation,
/// [`DecodeError::InvalidValue`] if a reconstructed id overflows `u64`.
pub fn get_sorted_ids(d: &mut Decoder<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = d.varint()? as usize;
    let mut out = Vec::with_capacity(n.min(d.remaining() + 1));
    let mut prev = 0u64;
    for i in 0..n {
        let v = d.varint()?;
        let id = if i == 0 {
            v
        } else {
            prev.checked_add(v)
                .and_then(|x| x.checked_add(1))
                .ok_or(DecodeError::InvalidValue {
                    reason: "sorted-id delta overflows u64",
                })?
        };
        out.push(id);
        prev = id;
    }
    Ok(out)
}

/// Appends sorted `(id, value)` pairs: ids as gap deltas, values as a
/// one-byte bit width followed by a bit-packed run at that width — the
/// pcodec chunk-metadata shape. An empty slice writes only the count.
pub fn put_id_value_pairs(buf: &mut Vec<u8>, pairs: &[(u64, u64)]) {
    let ids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
    put_sorted_ids(buf, &ids);
    if pairs.is_empty() {
        return;
    }
    let width = pairs.iter().map(|p| bit_width(p.1)).max().unwrap_or(0);
    buf.push(width as u8);
    let mut w = BitWriter::new(buf);
    for &(_, v) in pairs {
        w.write(v, width);
    }
    w.finish();
}

/// Exact size of [`put_id_value_pairs`]'s output.
#[must_use]
pub fn id_value_pairs_len(pairs: &[(u64, u64)]) -> usize {
    let ids: Vec<u64> = pairs.iter().map(|p| p.0).collect();
    let mut n = sorted_ids_len(&ids);
    if !pairs.is_empty() {
        let width = pairs.iter().map(|p| bit_width(p.1)).max().unwrap_or(0);
        n += 1 + bitpacked_len(pairs.len(), width);
    }
    n
}

/// Reads back a [`put_id_value_pairs`] sequence.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn get_id_value_pairs(d: &mut Decoder<'_>) -> Result<Vec<(u64, u64)>, DecodeError> {
    let ids = get_sorted_ids(d)?;
    if ids.is_empty() {
        return Ok(Vec::new());
    }
    let width = u32::from(d.byte()?);
    if width > 64 {
        return Err(DecodeError::InvalidValue {
            reason: "bit width above 64",
        });
    }
    let mut r = BitReader::new(d);
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        out.push((id, r.read(width)?));
    }
    Ok(out)
}

/// Appends a delta encoding of a version vector over [`ReplicaId`]
/// actors: actor ids as sorted gap deltas, counters as a raw first value
/// followed by zigzag-varint deltas (replicas of one key tend to hold
/// nearby counters, so deltas stay within a byte or two).
pub fn put_vv_delta(buf: &mut Vec<u8>, vv: &VersionVector<ReplicaId>) {
    let ids: Vec<u64> = vv.iter().map(|(a, _)| u64::from(a.0)).collect();
    put_sorted_ids(buf, &ids);
    let mut prev: Option<u64> = None;
    for (_, c) in vv.iter() {
        match prev {
            None => put_varint(buf, c),
            Some(p) => put_varint(buf, zigzag(c.wrapping_sub(p) as i64)),
        }
        prev = Some(c);
    }
}

/// Exact size of [`put_vv_delta`]'s output.
#[must_use]
pub fn vv_delta_len(vv: &VersionVector<ReplicaId>) -> usize {
    let ids: Vec<u64> = vv.iter().map(|(a, _)| u64::from(a.0)).collect();
    let mut n = sorted_ids_len(&ids);
    let mut prev: Option<u64> = None;
    for (_, c) in vv.iter() {
        n += match prev {
            None => varint_len(c),
            Some(p) => varint_len(zigzag(c.wrapping_sub(p) as i64)),
        };
        prev = Some(c);
    }
    n
}

/// Reads back a [`put_vv_delta`] version vector.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input; zero counters are rejected as
/// in the plain [`Encode`] decoder.
pub fn get_vv_delta(d: &mut Decoder<'_>) -> Result<VersionVector<ReplicaId>, DecodeError> {
    let ids = get_sorted_ids(d)?;
    let mut vv = VersionVector::new();
    let mut prev: Option<u64> = None;
    for id in ids {
        let raw = d.varint()?;
        let c = match prev {
            None => raw,
            Some(p) => p.wrapping_add(unzigzag(raw) as u64),
        };
        if c == 0 {
            return Err(DecodeError::InvalidValue {
                reason: "version vector entries must be non-zero",
            });
        }
        let a = u32::try_from(id).map_err(|_| DecodeError::InvalidValue {
            reason: "replica id out of range",
        })?;
        vv.set(ReplicaId(a), c);
        prev = Some(c);
    }
    Ok(vv)
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Appends a Merkle leaf set — `(key, hash)` pairs — with keys as
/// shared-prefix deltas against the previous key (prefix length +
/// suffix) and hashes bit-packed at the run's maximum width. Any key
/// order round-trips; sorted keys compress best.
pub fn put_leaf_set(buf: &mut Vec<u8>, leaves: &[(Vec<u8>, u64)]) {
    put_varint(buf, leaves.len() as u64);
    let mut prev: &[u8] = &[];
    for (k, _) in leaves {
        let lcp = common_prefix(prev, k);
        put_varint(buf, lcp as u64);
        put_varint(buf, (k.len() - lcp) as u64);
        buf.extend_from_slice(&k[lcp..]);
        prev = k;
    }
    if leaves.is_empty() {
        return;
    }
    let width = leaves.iter().map(|(_, h)| bit_width(*h)).max().unwrap_or(0);
    buf.push(width as u8);
    let mut w = BitWriter::new(buf);
    for &(_, h) in leaves {
        w.write(h, width);
    }
    w.finish();
}

/// Exact size of [`put_leaf_set`]'s output.
#[must_use]
pub fn leaf_set_len(leaves: &[(Vec<u8>, u64)]) -> usize {
    let mut n = varint_len(leaves.len() as u64);
    let mut prev: &[u8] = &[];
    for (k, _) in leaves {
        let lcp = common_prefix(prev, k);
        n += varint_len(lcp as u64) + varint_len((k.len() - lcp) as u64) + (k.len() - lcp);
        prev = k;
    }
    if !leaves.is_empty() {
        let width = leaves.iter().map(|(_, h)| bit_width(*h)).max().unwrap_or(0);
        n += 1 + bitpacked_len(leaves.len(), width);
    }
    n
}

/// Reads back a [`put_leaf_set`] leaf set.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input, including a prefix length
/// exceeding the previous key.
pub fn get_leaf_set(d: &mut Decoder<'_>) -> Result<Vec<(Vec<u8>, u64)>, DecodeError> {
    let n = d.varint()? as usize;
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(n.min(d.remaining() / 2 + 1));
    let mut prev: Vec<u8> = Vec::new();
    for _ in 0..n {
        let lcp = d.varint()? as usize;
        if lcp > prev.len() {
            return Err(DecodeError::InvalidValue {
                reason: "leaf key prefix longer than previous key",
            });
        }
        let suffix_len = d.varint()? as usize;
        let suffix = d.bytes(suffix_len)?;
        let mut k = prev[..lcp].to_vec();
        k.extend_from_slice(suffix);
        keys.push(k.clone());
        prev = k;
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let width = u32::from(d.byte()?);
    if width > 64 {
        return Err(DecodeError::InvalidValue {
            reason: "bit width above 64",
        });
    }
    let mut r = BitReader::new(d);
    keys.into_iter().map(|k| Ok((k, r.read(width)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len mismatch for {v}");
            let mut d = Decoder::new(&buf);
            assert_eq!(d.varint().unwrap(), v);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        let eleven = [0xffu8; 11];
        let mut d = Decoder::new(&eleven);
        assert_eq!(d.varint(), Err(DecodeError::VarintOverflow));
        // 10 bytes encoding something ≥ 2^64
        let too_big = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut d = Decoder::new(&too_big);
        assert_eq!(d.varint(), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn truncated_input_errors() {
        let mut d = Decoder::new(&[0x80]);
        assert!(matches!(d.varint(), Err(DecodeError::UnexpectedEnd { .. })));
        let mut d = Decoder::new(&[]);
        assert!(d.byte().is_err());
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.bytes(3).is_err());
    }

    #[test]
    fn primitive_roundtrips() {
        let s = String::from("hello");
        let back: String = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);

        let v: Vec<u8> = vec![1, 2, 3];
        let back: Vec<u8> = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back, v);

        let r = ReplicaId(300);
        let back: ReplicaId = from_bytes(&to_bytes(&r)).unwrap();
        assert_eq!(back, r);

        let c = ClientId(1 << 40);
        let back: ClientId = from_bytes(&to_bytes(&c)).unwrap();
        assert_eq!(back, c);

        for w in [WriterId::from(ReplicaId(1)), WriterId::from(ClientId(2))] {
            let back: WriterId = from_bytes(&to_bytes(&w)).unwrap();
            assert_eq!(back, w);
        }
    }

    #[test]
    fn writer_id_bad_tag_rejected() {
        let r: Result<WriterId, _> = from_bytes(&[9, 0]);
        assert!(matches!(r, Err(DecodeError::InvalidValue { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&ReplicaId(1));
        bytes.push(0);
        let r: Result<ReplicaId, _> = from_bytes(&bytes);
        assert_eq!(r, Err(DecodeError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn dot_roundtrip_and_zero_counter_rejected() {
        let d = Dot::new(ReplicaId(2), 77);
        let back: Dot<ReplicaId> = from_bytes(&to_bytes(&d)).unwrap();
        assert_eq!(back, d);

        let bad = to_bytes(&ReplicaId(2))
            .into_iter()
            .chain([0u8])
            .collect::<Vec<_>>();
        let r: Result<Dot<ReplicaId>, _> = from_bytes(&bad);
        assert!(matches!(r, Err(DecodeError::InvalidValue { .. })));
    }

    #[test]
    fn version_vector_roundtrip() {
        let mut vv: VersionVector<ReplicaId> = VersionVector::new();
        vv.set(ReplicaId(0), 5);
        vv.set(ReplicaId(9), 1_000_000);
        let bytes = to_bytes(&vv);
        assert_eq!(bytes.len(), vv.encoded_len());
        let back: VersionVector<ReplicaId> = from_bytes(&bytes).unwrap();
        assert_eq!(back, vv);
    }

    #[test]
    fn dvv_roundtrip_and_invalid_past_rejected() {
        let mut past: VersionVector<ReplicaId> = VersionVector::new();
        past.set(ReplicaId(0), 1);
        let d = Dvv::new(Dot::new(ReplicaId(0), 3), past);
        let bytes = to_bytes(&d);
        assert_eq!(bytes.len(), d.encoded_len());
        let back: Dvv<ReplicaId> = from_bytes(&bytes).unwrap();
        assert_eq!(back, d);

        // handcraft: dot (0,1) with past containing (0,1)
        let mut bad = Vec::new();
        ReplicaId(0).encode(&mut bad);
        put_varint(&mut bad, 1); // dot counter
        put_varint(&mut bad, 1); // one vv entry
        ReplicaId(0).encode(&mut bad);
        put_varint(&mut bad, 1); // counter covering the dot
        let r: Result<Dvv<ReplicaId>, _> = from_bytes(&bad);
        assert!(matches!(r, Err(DecodeError::InvalidValue { .. })));
    }

    #[test]
    fn causal_history_roundtrip() {
        let h: CausalHistory<ReplicaId> = [
            Dot::new(ReplicaId(0), 1),
            Dot::new(ReplicaId(0), 3),
            Dot::new(ReplicaId(1), 2),
        ]
        .into_iter()
        .collect();
        let bytes = to_bytes(&h);
        assert_eq!(bytes.len(), h.encoded_len());
        let back: CausalHistory<ReplicaId> = from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn dvvset_roundtrip_simple() {
        let mut s: DvvSet<ReplicaId, Vec<u8>> = DvvSet::new();
        s.update(&VersionVector::new(), ReplicaId(0), vec![1]);
        s.update(&VersionVector::new(), ReplicaId(0), vec![2]);
        s.update(&VersionVector::new(), ReplicaId(1), vec![3]);
        let bytes = to_bytes(&s);
        assert_eq!(bytes.len(), s.encoded_len());
        let back: DvvSet<ReplicaId, Vec<u8>> = from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn dvvset_roundtrip_with_obsolete_knowledge() {
        let mut s: DvvSet<ReplicaId, Vec<u8>> = DvvSet::new();
        s.update(&VersionVector::new(), ReplicaId(0), vec![1]);
        let ctx = s.context();
        s.update(&ctx, ReplicaId(0), vec![2]); // (0,1) obsolete, (0,2) live
        let back: DvvSet<ReplicaId, Vec<u8>> = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
        assert!(back.contains(&Dot::new(ReplicaId(0), 1)));
    }

    #[test]
    fn vve_roundtrip_with_exceptions() {
        let v: Vve<ReplicaId> = [
            Dot::new(ReplicaId(0), 1),
            Dot::new(ReplicaId(0), 4),
            Dot::new(ReplicaId(1), 1),
        ]
        .into_iter()
        .collect();
        let bytes = to_bytes(&v);
        assert_eq!(bytes.len(), v.encoded_len());
        let back: Vve<ReplicaId> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn zigzag_is_involutive_at_extremes() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn bitpack_roundtrips_boundary_widths() {
        for width in [0u32, 1, 2, 7, 8, 9, 31, 63, 64] {
            let max = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..13).map(|i| max.saturating_sub(i) & max).collect();
            let mut buf = Vec::new();
            let mut w = BitWriter::new(&mut buf);
            for &v in &values {
                w.write(v, width);
            }
            w.finish();
            assert_eq!(buf.len(), bitpacked_len(values.len(), width));
            let mut d = Decoder::new(&buf);
            let mut r = BitReader::new(&mut d);
            for &v in &values {
                assert_eq!(r.read(width).unwrap(), v, "width {width}");
            }
        }
    }

    #[test]
    fn bitreader_truncation_errors() {
        let mut d = Decoder::new(&[0xff]);
        let mut r = BitReader::new(&mut d);
        assert_eq!(r.read(8).unwrap(), 0xff);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn sorted_ids_roundtrip_and_gap_compression() {
        for ids in [vec![], vec![0], vec![5, 6, 7, 9, 1000], vec![u64::MAX]] {
            let mut buf = Vec::new();
            put_sorted_ids(&mut buf, &ids);
            assert_eq!(buf.len(), sorted_ids_len(&ids));
            let mut d = Decoder::new(&buf);
            assert_eq!(get_sorted_ids(&mut d).unwrap(), ids);
            assert_eq!(d.remaining(), 0);
        }
        // dense runs cost one byte per element after the first
        let dense: Vec<u64> = (1000..1100).collect();
        assert_eq!(sorted_ids_len(&dense), 1 + 2 + 99);
    }

    #[test]
    fn sorted_ids_decode_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // count
        put_varint(&mut buf, u64::MAX); // first id
        put_varint(&mut buf, 0); // gap → MAX + 1 overflows
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            get_sorted_ids(&mut d),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn id_value_pairs_roundtrip() {
        for pairs in [
            vec![],
            vec![(3u64, 0u64)],
            vec![(0, u64::MAX), (7, 1), (8, 0xdead_beef)],
            vec![(1, 0), (2, 0), (9, 0)], // all-zero values: width 0, no payload
        ] {
            let mut buf = Vec::new();
            put_id_value_pairs(&mut buf, &pairs);
            assert_eq!(buf.len(), id_value_pairs_len(&pairs));
            let mut d = Decoder::new(&buf);
            assert_eq!(get_id_value_pairs(&mut d).unwrap(), pairs);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn id_value_pairs_zero_width_has_no_packed_payload() {
        let pairs = vec![(1u64, 0u64), (2, 0), (3, 0)];
        // count + first + 2 gaps + width byte, no packed payload
        assert_eq!(id_value_pairs_len(&pairs), 5);
    }

    #[test]
    fn vv_delta_roundtrip_and_compression() {
        let mut vv: VersionVector<ReplicaId> = VersionVector::new();
        for i in 0..8u32 {
            vv.set(ReplicaId(i), 1000 + u64::from(i % 3));
        }
        let mut buf = Vec::new();
        put_vv_delta(&mut buf, &vv);
        assert_eq!(buf.len(), vv_delta_len(&vv));
        let mut d = Decoder::new(&buf);
        assert_eq!(get_vv_delta(&mut d).unwrap(), vv);
        assert_eq!(d.remaining(), 0);
        assert!(
            vv_delta_len(&vv) < vv.encoded_len(),
            "delta form must beat the plain encoding on dense nearby counters: {} vs {}",
            vv_delta_len(&vv),
            vv.encoded_len()
        );

        let empty = VersionVector::<ReplicaId>::new();
        let mut buf = Vec::new();
        put_vv_delta(&mut buf, &empty);
        let mut d = Decoder::new(&buf);
        assert_eq!(get_vv_delta(&mut d).unwrap(), empty);
    }

    #[test]
    fn vv_delta_rejects_zero_counters() {
        let mut buf = Vec::new();
        put_sorted_ids(&mut buf, &[0]);
        put_varint(&mut buf, 0); // zero counter
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            get_vv_delta(&mut d),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn leaf_set_roundtrip_and_prefix_compression() {
        let leaves: Vec<(Vec<u8>, u64)> = (0..50)
            .map(|i| (format!("user:{i:04}").into_bytes(), 0xabc0 + i as u64))
            .collect();
        let mut buf = Vec::new();
        put_leaf_set(&mut buf, &leaves);
        assert_eq!(buf.len(), leaf_set_len(&leaves));
        let mut d = Decoder::new(&buf);
        assert_eq!(get_leaf_set(&mut d).unwrap(), leaves);
        assert_eq!(d.remaining(), 0);
        // flat cost would be ≥ (9-byte key + 8-byte hash) each
        assert!(
            leaf_set_len(&leaves) < leaves.len() * 17 / 2,
            "prefix+bitpack must at least halve the flat cost, got {}",
            leaf_set_len(&leaves)
        );

        let empty: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut buf = Vec::new();
        put_leaf_set(&mut buf, &empty);
        assert_eq!(buf, vec![0]);
        let mut d = Decoder::new(&buf);
        assert_eq!(get_leaf_set(&mut d).unwrap(), empty);
    }

    #[test]
    fn leaf_set_rejects_bad_prefix_len() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // one leaf
        put_varint(&mut buf, 3); // lcp 3 against an empty previous key
        put_varint(&mut buf, 0);
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            get_leaf_set(&mut d),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn dvv_is_smaller_than_equivalent_causal_history() {
        // Size claim sanity: a long history costs O(1) entries as a DVV.
        let mut past: VersionVector<ReplicaId> = VersionVector::new();
        past.set(ReplicaId(0), 1000);
        let d = Dvv::new(Dot::new(ReplicaId(0), 1001), past);
        let h = d.to_causal_history();
        assert!(d.encoded_len() < h.encoded_len() / 50);
    }
}
